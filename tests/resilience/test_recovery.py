"""Recovery paths: repair epochs, checkpoints, DRAM retry, dead lanes."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import (
    FunctionalGraphPulse,
    GraphPulseAccelerator,
    run_sliced,
)
from repro.graph import erdos_renyi_graph
from repro.resilience import (
    CheckpointManager,
    FaultPlan,
    ResilienceConfig,
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(120, 700, seed=11)


@pytest.fixture(scope="module")
def pagerank_reference(graph):
    return FunctionalGraphPulse(graph, algorithms.make_pagerank_delta()).run().values


class TestRepairEpochs:
    def test_scripted_drop_is_repaired(self, graph, pagerank_reference):
        # drop the 5th inserted event: silent mass loss only the
        # quiescent invariant sweep can see
        config = ResilienceConfig(
            fault_plan=FaultPlan(scripted={"drop": {5: -1}})
        )
        result = FunctionalGraphPulse(
            graph, algorithms.make_pagerank_delta(), resilience=config
        ).run()
        summary = result.resilience
        assert summary["faults"]["by_kind"] == {"drop": 1}
        assert summary["repair"]["epochs"] >= 1
        assert summary["repair"]["reinjected_events"] > 0
        error = np.max(np.abs(result.values - pagerank_reference))
        assert error <= 1e-6

    def test_scripted_bitflip_detected_by_parity(self, graph, pagerank_reference):
        config = ResilienceConfig(
            fault_plan=FaultPlan(scripted={"bitflip": {3: 52}})
        )
        result = FunctionalGraphPulse(
            graph, algorithms.make_pagerank_delta(), resilience=config
        ).run()
        summary = result.resilience
        assert summary["faults"]["by_kind"] == {"bitflip": 1}
        # single-bit model: the parity check discards the payload
        assert summary["detections"].get("parity", 0) == 1
        error = np.max(np.abs(result.values - pagerank_reference))
        assert error <= 1e-6

    def test_recovery_overhead_is_reported(self, graph):
        config = ResilienceConfig(
            fault_plan=FaultPlan.uniform(1e-3, seed=5, kinds=("drop",))
        )
        result = FunctionalGraphPulse(
            graph, algorithms.make_pagerank_delta(), resilience=config
        ).run()
        summary = result.resilience
        if summary["faults"]["total"]:
            assert summary["recovery_overhead"] > 0


class TestCheckpointManager:
    def test_capture_cadence_and_keep_depth(self):
        manager = CheckpointManager(5, keep=2)
        state = np.zeros(4)
        for round_index in range(1, 21):
            if manager.due(round_index):
                manager.take(round_index, float(round_index), state, [], 0)
        assert manager.taken == 4  # rounds 5, 10, 15, 20
        assert len(manager.checkpoints) == 2  # keep depth enforced
        assert manager.latest.round_index == 20

    def test_disabled_interval_never_due(self):
        manager = CheckpointManager(None)
        assert not any(manager.due(r) for r in range(1, 100))

    def test_rollback_counts_and_preserves_checkpoint(self):
        manager = CheckpointManager(1)
        manager.take(1, 1.0, np.arange(3.0), ["snap"], 2)
        first = manager.rollback()
        second = manager.rollback()
        assert first is second  # same restart point stays available
        assert manager.rollbacks == 2
        assert np.array_equal(first.state, np.arange(3.0))

    def test_rollback_without_checkpoint_returns_none(self):
        manager = CheckpointManager(None)
        assert manager.rollback() is None

    def test_checkpoint_state_is_a_private_copy(self):
        manager = CheckpointManager(1)
        state = np.arange(3.0)
        manager.take(1, 1.0, state, [], 0)
        state[0] = 99.0
        assert manager.latest.state[0] == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CheckpointManager(0)
        with pytest.raises(ValueError):
            CheckpointManager(5, keep=0)


class TestCheckpointedRuns:
    def test_checkpointing_does_not_perturb_results(self, graph, pagerank_reference):
        config = ResilienceConfig(checkpoint_interval=5)
        result = FunctionalGraphPulse(
            graph, algorithms.make_pagerank_delta(), resilience=config
        ).run()
        assert np.array_equal(result.values, pagerank_reference)
        assert result.resilience["checkpoints"]["taken"] > 0
        assert result.resilience["checkpoints"]["rollbacks"] == 0


class TestDramRetry:
    def test_transient_dram_errors_are_retried_exactly(self, graph):
        spec = algorithms.make_pagerank_delta()
        clean = GraphPulseAccelerator(graph, spec).run()
        config = ResilienceConfig(
            fault_plan=FaultPlan.uniform(1e-2, seed=9, kinds=("dram",))
        )
        faulty = GraphPulseAccelerator(graph, spec, resilience=config).run()
        summary = faulty.resilience
        assert summary["faults"]["by_kind"].get("dram", 0) > 0
        assert summary["dram_retries"] > 0
        # CRC + retry recovers every burst: values bit-identical (the
        # backoff penalty may hide entirely inside round-boundary slack)
        assert np.array_equal(faulty.values, clean.values)
        assert faulty.converged


class TestDeadLanes:
    def test_mid_run_lane_death_degrades_gracefully(self, graph):
        spec = algorithms.make_pagerank_delta()
        clean = GraphPulseAccelerator(graph, spec).run()
        config = ResilienceConfig(
            fault_plan=FaultPlan(dead_lanes={2: 3000, 5: 0})
        )
        degraded = GraphPulseAccelerator(graph, spec, resilience=config).run()
        summary = degraded.resilience
        assert sorted(summary["degraded_lanes"]) == [2, 5]
        # remaining lanes complete the identical computation (the
        # dispatch reshuffle can shift the cycle count either way)
        assert np.array_equal(degraded.values, clean.values)
        assert degraded.converged


class TestSpillLoss:
    def test_lost_spill_events_are_repaired(self, graph, pagerank_reference):
        config = ResilienceConfig(
            fault_plan=FaultPlan.uniform(1e-3, seed=13, kinds=("spill",))
        )
        result = run_sliced(
            graph,
            algorithms.make_pagerank_delta(threshold=1e-9),
            num_slices=3,
            resilience=config,
        )
        summary = result.resilience
        assert summary["faults"]["by_kind"].get("spill", 0) > 0
        reference = run_sliced(
            graph, algorithms.make_pagerank_delta(threshold=1e-9), num_slices=3
        )
        error = np.max(np.abs(result.values - reference.values))
        assert error <= 1e-6
