"""Fault plan / injector determinism and the per-site fault models."""

import numpy as np
import pytest

from repro.core.event import Event
from repro.resilience import FAULT_KINDS, FaultInjector, FaultPlan


def _drain_decisions(injector, kind, n=500):
    return [injector.decide(kind)[0] for _ in range(n)]


class TestFaultPlan:
    def test_uniform_covers_requested_kinds(self):
        plan = FaultPlan.uniform(0.25, kinds=("drop", "dram"))
        assert plan.rate("drop") == 0.25
        assert plan.rate("dram") == 0.25
        assert plan.rate("bitflip") == 0.0
        assert plan.any_event_faults

    def test_zero_rate_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.any_event_faults
        injector = FaultInjector(plan)
        assert not any(_drain_decisions(injector, "drop", 200))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(rates={"meteor": 0.1})

    def test_rate_bounds_rejected(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(rates={"drop": 1.5})

    def test_parity_coverage_bounds(self):
        with pytest.raises(ValueError, match="parity_coverage"):
            FaultPlan(parity_coverage=-0.1)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan.uniform(0.05, seed=42)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for kind in FAULT_KINDS:
            assert _drain_decisions(a, kind) == _drain_decisions(b, kind)

    def test_kind_streams_are_independent(self):
        # consuming drop opportunities must not perturb bitflip draws
        plan = FaultPlan.uniform(0.05, seed=7)
        pure = FaultInjector(plan)
        mixed = FaultInjector(plan)
        _drain_decisions(mixed, "drop", 100)
        assert _drain_decisions(pure, "bitflip") == _drain_decisions(
            mixed, "bitflip"
        )

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan.uniform(0.05, seed=1))
        b = FaultInjector(FaultPlan.uniform(0.05, seed=2))
        assert _drain_decisions(a, "drop", 2000) != _drain_decisions(
            b, "drop", 2000
        )


class TestScripted:
    def test_scripted_drop_fires_at_exact_opportunity(self):
        plan = FaultPlan(scripted={"drop": {3: -1}})
        injector = FaultInjector(plan)
        decisions = _drain_decisions(injector, "drop", 10)
        assert decisions == [False] * 3 + [True] + [False] * 6

    def test_on_insert_drop_and_duplicate(self):
        event = Event(vertex=4, delta=0.5)
        dropper = FaultInjector(FaultPlan(scripted={"drop": {0: -1}}))
        assert dropper.on_insert(event, at=0.0) == []
        assert dropper.counts == {"drop": 1}

        doubler = FaultInjector(FaultPlan(scripted={"duplicate": {0: -1}}))
        out = doubler.on_insert(event, at=0.0)
        assert len(out) == 2
        assert all(e.vertex == 4 and e.delta == 0.5 for e in out)

    def test_scripted_bitflip_corrupts_payload(self):
        # bit 52 of the mantissa-exponent boundary changes the value
        injector = FaultInjector(FaultPlan(scripted={"bitflip": {0: 52}}))
        event = Event(vertex=1, delta=1.0)
        (out,) = injector.on_insert(event, at=0.0)
        assert out.delta != 1.0
        assert np.isfinite(out.delta)
        assert injector.counts == {"bitflip": 1}

    def test_records_carry_site_metadata(self):
        injector = FaultInjector(FaultPlan(scripted={"drop": {0: -1}}))
        injector.on_insert(Event(vertex=9, delta=1.0), at=12.5)
        (record,) = injector.records
        assert record.kind == "drop"
        assert record.vertex == 9
        assert record.at == 12.5
