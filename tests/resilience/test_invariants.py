"""Quiescent invariant checks: detection and repair plan construction."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import FunctionalGraphPulse
from repro.graph import erdos_renyi_graph
from repro.resilience import compute_repairs, state_invalid


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(80, 400, seed=3)


@pytest.fixture(scope="module")
def pagerank_quiescent(graph):
    spec = algorithms.make_pagerank_delta()
    result = FunctionalGraphPulse(graph, spec).run()
    return spec, result.values


class TestAdditiveInvariant:
    def test_clean_state_yields_no_detections(self, graph, pagerank_quiescent):
        spec, values = pagerank_quiescent
        plan = compute_repairs(
            spec, graph, values.copy(), tolerance=spec.residual_tolerance * 50
        )
        assert plan.detected == []
        assert plan.is_clean

    def test_corruption_detected_and_repaired(self, graph, pagerank_quiescent):
        spec, values = pagerank_quiescent
        state = values.copy()
        state[17] += 0.5  # silent corruption well above any residual band
        plan = compute_repairs(spec, graph, state, tolerance=1e-6)
        assert plan.detected  # the perturbation is visible downstream
        # draining the injections through the engine restores the values
        injected = dict(plan.injections)
        assert injected  # repair has work to do
        for vertex, delta in plan.injections:
            state[vertex] += delta
        # one repair epoch moves the state onto the local fixed point;
        # corrupted vertex 17 itself must be pulled back
        assert abs(state[17] - values[17]) < 0.5

    def test_nan_state_reset_and_detected(self, graph, pagerank_quiescent):
        spec, values = pagerank_quiescent
        state = values.copy()
        state[3] = float("nan")
        plan = compute_repairs(spec, graph, state, tolerance=1e-6)
        assert 3 in plan.resets
        assert 3 in plan.detected
        assert not np.isnan(state).any()  # quarantined in place


class TestMonotonicInvariant:
    def test_lost_update_reinjects_target(self, graph):
        root = int(np.argmax(graph.out_degrees()))
        spec = algorithms.make_bfs(root=root)
        values = FunctionalGraphPulse(graph, spec).run().values
        state = values.copy()
        victim = int(
            np.flatnonzero(np.isfinite(values) & (values > values.min()))[0]
        )
        state[victim] = np.inf  # a dropped event left the level unset
        plan = compute_repairs(spec, graph, state, tolerance=0.0)
        assert victim in plan.detected
        injected = dict(plan.injections)
        assert injected[victim] == values[victim]

    def test_impossible_state_reset(self, graph):
        root = int(np.argmax(graph.out_degrees()))
        spec = algorithms.make_bfs(root=root)
        values = FunctionalGraphPulse(graph, spec).run().values
        state = values.copy()
        victim = int(np.flatnonzero(np.isfinite(values) & (values > 1))[0])
        state[victim] = 0.5  # better than any in-neighbour can justify
        plan = compute_repairs(spec, graph, state, tolerance=0.0)
        assert victim in plan.resets


class TestStateInvalid:
    def test_nan_and_overflow_flagged(self):
        assert state_invalid(float("nan"), 0.0, 1e30)
        assert state_invalid(2e30, 0.0, 1e30)
        assert not state_invalid(1.0, 0.0, 1e30)

    def test_infinite_identity_is_legal(self):
        # SSSP's "unreached" state is +inf and must not be quarantined
        assert not state_invalid(float("inf"), float("inf"), 1e30)
