"""Campaign runner: every fault kind recovers at the target rate."""

import numpy as np
import pytest

from repro.graph import erdos_renyi_graph
from repro.resilience import FAULT_KINDS, run_campaign
from repro.resilience.campaign import format_report


@pytest.fixture(scope="module")
def campaign():
    graphs = {"er": erdos_renyi_graph(120, 700, seed=7)}
    return run_campaign(graphs, rate=1e-3, seed=0)


class TestRecoveryAtTargetRate:
    def test_every_cell_converges_and_recovers(self, campaign):
        failures = [
            f"{r.algorithm}/{r.kind}: error={r.error} failure={r.failure}"
            for r in campaign.reports
            if not (r.converged and r.recovered)
        ]
        assert not failures, failures
        assert campaign.convergence_rate == 1.0
        assert campaign.recovery_rate == 1.0

    def test_all_kinds_and_algorithms_covered(self, campaign):
        cells = {(r.algorithm, r.kind) for r in campaign.reports}
        assert cells == {
            (a, k)
            for a in ("pagerank", "sssp", "bfs", "cc")
            for k in FAULT_KINDS
        }

    def test_kind_binds_to_its_engine_layer(self, campaign):
        for report in campaign.reports:
            if report.kind == "dram":
                assert report.engine == "cycle"
            elif report.kind == "spill":
                assert report.engine == "sliced"
            else:
                assert report.engine == "functional"

    def test_numeric_error_within_acceptance(self, campaign):
        for report in campaign.reports:
            if report.algorithm == "pagerank":
                assert report.error <= 1e-6
            else:  # sssp/bfs/cc compare exactly
                assert report.error == 0.0

    def test_faults_were_actually_injected(self, campaign):
        assert campaign.total_faults > 0
        by_kind = {}
        for report in campaign.reports:
            by_kind[report.kind] = by_kind.get(report.kind, 0) + report.faults
        # additive workloads generate enough traffic that each per-event
        # kind must land at least one fault at rate 1e-3
        for kind in ("drop", "duplicate", "bitflip"):
            assert by_kind[kind] > 0, kind

    def test_serialization_round_trips(self, campaign):
        payload = campaign.to_dict()
        assert payload["convergence_rate"] == 1.0
        assert len(payload["runs"]) == len(campaign.reports)
        assert all("algorithm" in run for run in payload["runs"])

    def test_format_report_table(self, campaign):
        text = format_report(campaign)
        assert "recovery 100%" in text
        assert "recovered" in text
        assert "FAILED" not in text


class TestFaultFreeCampaign:
    def test_zero_rate_reports_zero_faults(self):
        graphs = {"er": erdos_renyi_graph(60, 300, seed=3)}
        campaign = run_campaign(
            graphs, rate=0.0, kinds=("drop",), algorithms=("pagerank",)
        )
        (report,) = campaign.reports
        assert report.converged and report.recovered
        assert report.faults == 0
        assert report.error == 0.0
