"""Fault-free determinism: resilience on == resilience off, byte for byte.

The acceptance bar for the subsystem: enabling detection + recovery with
no faults planned must not change a single bit of any engine's output,
and repeated runs must serialize to byte-identical JSON summaries and
Chrome traces (PR/SSSP/BFS/CC on two generator graphs).
"""

import json

import numpy as np
import pytest

from repro.core import FunctionalGraphPulse
from repro.obs import Tracer, export
from repro.obs import trace as obs_trace
from repro.resilience import ResilienceConfig
from repro.resilience.campaign import _prepare_workload
from repro.graph import erdos_renyi_graph, rmat_graph

ALGORITHMS = ("pagerank", "sssp", "bfs", "cc")

GRAPHS = {
    "er": lambda: erdos_renyi_graph(150, 900, seed=11),
    "rmat": lambda: rmat_graph(128, 768, seed=4),
}


def _run(graph, spec, resilience):
    return FunctionalGraphPulse(graph, spec, resilience=resilience).run()


def _run_summary_json(graph, spec):
    result = _run(graph, spec, ResilienceConfig())
    payload = {
        "rounds": result.num_rounds,
        "events_processed": result.total_events_processed,
        "values": result.values.tolist(),
        "resilience": result.resilience,
    }
    return json.dumps(payload, sort_keys=True).encode()


def _run_trace_bytes(graph, spec, path):
    tracer = Tracer(categories=["round", "resil"])
    with obs_trace.tracing(tracer):
        _run(graph, spec, ResilienceConfig())
    export.write_chrome_trace(tracer, path)
    return path.read_bytes()


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestFaultFreeDeterminism:
    def test_resilience_off_vs_on_bit_identical(self, graph_name, algorithm):
        graph = GRAPHS[graph_name]()
        prepared, spec = _prepare_workload(algorithm, graph)
        baseline = _run(prepared, spec, None)
        guarded = _run(prepared, spec, ResilienceConfig())
        assert np.array_equal(baseline.values, guarded.values)
        assert baseline.num_rounds == guarded.num_rounds
        assert (
            baseline.total_events_processed
            == guarded.total_events_processed
        )
        # nothing fired: no faults, no repairs, no rollbacks
        summary = guarded.resilience
        assert summary["faults"]["total"] == 0
        assert summary["repair"]["epochs"] == 0
        assert summary["checkpoints"]["rollbacks"] == 0

    def test_repeated_json_summaries_byte_identical(self, graph_name, algorithm):
        graph = GRAPHS[graph_name]()
        prepared, spec = _prepare_workload(algorithm, graph)
        first = _run_summary_json(prepared, spec)
        second = _run_summary_json(prepared, spec)
        assert first == second

    def test_repeated_traces_byte_identical(self, graph_name, algorithm, tmp_path):
        graph = GRAPHS[graph_name]()
        prepared, spec = _prepare_workload(algorithm, graph)
        first = _run_trace_bytes(prepared, spec, tmp_path / "a.json")
        second = _run_trace_bytes(prepared, spec, tmp_path / "b.json")
        assert first  # the trace actually recorded something
        assert first == second
