"""CLI surface of the resilience subsystem: flags, errors, campaign verb."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_resilience_defaults(self):
        args = build_parser().parse_args(["resilience"])
        assert args.rate == 1e-3
        assert args.engine == "functional"
        assert args.dataset is None

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "pagerank", "--fault-kinds", "meteor"]
            )

    def test_bad_dead_lane_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "pagerank", "--dead-lane", "two:soon"]
            )

    def test_dead_lane_cycle_defaults_to_zero(self):
        args = build_parser().parse_args(
            ["run", "pagerank", "--dead-lane", "3"]
        )
        assert args.dead_lane == [(3, 0)]


class TestRunWithFaults:
    def test_faulty_sliced_run_reports_resilience(self, capsys):
        code = main(
            [
                "run", "pagerank", "--dataset", "WG", "--scale", "0.03",
                "--engine", "sliced", "--fault-rate", "1e-3", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "sliced"
        assert "resilience" in payload["result"]
        assert payload["result"]["resilience"]["faults"]["total"] >= 0

    def test_resilience_flag_alone_enables_harness(self, capsys):
        code = main(
            [
                "run", "bfs", "--dataset", "WG", "--scale", "0.03",
                "--resilience", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["resilience"]["faults"]["total"] == 0

    def test_fault_flags_rejected_on_baseline_engines(self, capsys):
        code = main(
            [
                "run", "pagerank", "--dataset", "WG", "--scale", "0.03",
                "--engine", "bsp", "--fault-rate", "1e-3",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "bsp" in err


class TestQueueCapacityErrors:
    ARGS = [
        "run", "pagerank", "--dataset", "WG", "--scale", "0.03",
        "--engine", "sliced", "--num-slices", "2",
        "--queue-capacity", "40", "--no-auto-slice",
    ]

    def test_clean_nonzero_exit_with_hint(self, capsys):
        assert main(self.ARGS) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "--num-slices" in captured.err  # actionable hint
        assert "Traceback" not in captured.err

    def test_json_structured_error(self, capsys):
        assert main(self.ARGS + ["--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        error = payload["error"]
        assert error["type"] == "QueueCapacityError"
        assert error["capacity"] == 40
        assert error["required_slices"] > 2
        assert "--num-slices" in error["suggestion"]

    def test_auto_slice_recovers(self, capsys):
        args = [a for a in self.ARGS if a != "--no-auto-slice"]
        assert main(args + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["converged"]


class TestCampaignVerb:
    def test_small_campaign_passes(self, capsys):
        code = main(
            [
                "resilience", "--vertices", "80", "--edges", "400",
                "--algorithms", "pagerank,bfs", "--kinds", "drop,bitflip",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CAMPAIGN OK" in out
        assert "recovery 100%" in out

    def test_campaign_json_payload(self, capsys):
        code = main(
            [
                "resilience", "--vertices", "80", "--edges", "400",
                "--algorithms", "bfs", "--kinds", "drop", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["recovery_rate"] == 1.0
        assert payload["runs"]

    def test_bad_algorithm_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["resilience", "--algorithms", "quicksort"]
            )


class TestResumeObservability:
    """`repro resume` takes the same --trace/--metrics flags as run."""

    def _durable_run(self, tmp_path, capsys):
        # SIGKILL the victim mid-run (subprocess harness) so the resume
        # tail has real rounds for the trace/metrics flags to observe
        from repro.resilience.crash import _run_cli

        run_dir = tmp_path / "run"
        proc = _run_cli(
            ["run", "pagerank", "--dataset", "WG", "--scale", "0.03",
             "--checkpoint-dir", str(run_dir), "--checkpoint-interval", "4"],
            extra_env={"REPRO_CRASH_AT_ROUND": "9"},
        )
        assert proc.returncode != 0  # the victim must have died
        capsys.readouterr()
        return run_dir

    def test_resume_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs import load_chrome_trace, read_metrics_jsonl

        run_dir = self._durable_run(tmp_path, capsys)
        trace_path = tmp_path / "resume.trace.json"
        metrics_path = tmp_path / "resume.metrics.jsonl"
        assert main(
            ["resume", str(run_dir), "--trace", str(trace_path),
             "--metrics", str(metrics_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["path"] == str(trace_path)
        trace = load_chrome_trace(str(trace_path))
        names = {r.get("name") for r in trace["traceEvents"]}
        # the resumed tail traces its rounds and the resume span itself
        assert "round" in names
        assert "resume" in names
        records = read_metrics_jsonl(str(metrics_path))
        stats = [r for r in records if r.get("type") == "stats"]
        assert len(stats) == 1
        assert stats[0]["engine"] == "functional"
        assert payload["metrics"]["lines"] == len(records)

    def test_resume_trace_categories_filter(self, tmp_path, capsys):
        from repro.obs import load_chrome_trace

        run_dir = self._durable_run(tmp_path, capsys)
        trace_path = tmp_path / "filtered.trace.json"
        assert main(
            ["resume", str(run_dir), "--trace", str(trace_path),
             "--trace-categories", "round"]
        ) == 0
        trace = load_chrome_trace(str(trace_path))
        non_meta = [r for r in trace["traceEvents"] if r["ph"] != "M"]
        assert non_meta
        assert {r["name"] for r in non_meta} == {"round"}

    def test_resume_without_flags_unchanged(self, tmp_path, capsys):
        run_dir = self._durable_run(tmp_path, capsys)
        assert main(["resume", str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "trace" not in payload
        assert "metrics" not in payload
