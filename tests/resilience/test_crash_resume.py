"""Crash injection against real processes: SIGKILL, resume, compare.

The durability layer's acceptance test.  Each case runs the CLI in a
subprocess, kills it with SIGKILL from inside the engine at a chosen
round (``REPRO_CRASH_AT_ROUND``), resumes via ``repro resume``, and
asserts the resumed run's final vertex state is byte-identical to an
uninterrupted reference and reports the same convergence round.  The
graceful-interrupt path (SIGINT -> exit 130 + resumable JSON) and the
typed failure paths (corrupt checkpoint, foreign directory -> exit 2)
are exercised the same way.
"""

import json
import signal

import pytest

from repro.resilience.crash import run_crash_trial
from repro.resilience.crash import _run_cli as run_cli  # test-only import

# every engine the durability layer covers, with pagerank (long,
# dense rounds) and sssp (monotone min-plus) per the acceptance bar
CRASH_MATRIX = [
    ("pagerank", "functional", 23),
    ("pagerank", "cycle", 12),
    ("pagerank", "sliced", 7),
    ("sssp", "functional", 2),
    ("sssp", "cycle", 3),
    ("sssp", "sliced", 3),
]


@pytest.mark.parametrize("algorithm,engine,crash_round", CRASH_MATRIX)
def test_sigkill_then_resume_is_bit_identical(
    tmp_path, algorithm, engine, crash_round
):
    trial = run_crash_trial(
        algorithm,
        engine,
        crash_round=crash_round,
        checkpoint_interval=2,
        work_dir=tmp_path,
    )
    assert trial.error is None, trial.error
    assert trial.crashed, (
        f"victim survived to convergence before round {crash_round}; "
        f"pick an earlier crash round"
    )
    assert trial.resume_returncode == 0
    assert trial.bit_identical
    assert trial.rounds_match, (
        f"reference converged at {trial.reference_rounds}, "
        f"resumed at {trial.resumed_rounds}"
    )


def test_sigint_is_graceful_and_resumable(tmp_path):
    run_dir = tmp_path / "run"
    proc = run_cli(
        [
            "run",
            "pagerank",
            "--dataset",
            "WG",
            "--scale",
            "0.05",
            "--checkpoint-dir",
            str(run_dir),
            "--checkpoint-interval",
            "3",
            "--json",
            "-",
        ],
        extra_env={"REPRO_SIGINT_AT_ROUND": "10"},
    )
    assert proc.returncode == 130
    assert "Traceback" not in proc.stderr
    payload = json.loads(proc.stdout)["interrupted"]
    assert payload["round_index"] == 10
    assert payload["checkpoint"] is not None
    assert payload["resume"] == f"repro resume {run_dir}"

    reference = tmp_path / "reference.npy"
    proc = run_cli(
        [
            "run",
            "pagerank",
            "--dataset",
            "WG",
            "--scale",
            "0.05",
            "--dump-values",
            str(reference),
        ]
    )
    assert proc.returncode == 0
    resumed = tmp_path / "resumed.npy"
    proc = run_cli(
        ["resume", str(run_dir), "--dump-values", str(resumed)]
    )
    assert proc.returncode == 0
    assert reference.read_bytes() == resumed.read_bytes()


def test_crash_before_first_checkpoint_restarts_cleanly(tmp_path):
    """A kill before any checkpoint flushes must resume from scratch —
    including on the sliced engine, whose journal must be reset rather
    than replayed on top of the fresh run."""
    trial = run_crash_trial(
        "pagerank",
        "sliced",
        crash_round=1,
        checkpoint_interval=50,  # never due before the crash
        work_dir=tmp_path,
    )
    assert trial.error is None, trial.error
    assert trial.crashed
    assert trial.resumed_from_checkpoint is None
    assert trial.bit_identical and trial.rounds_match


def test_resume_of_corrupt_checkpoint_exits_2_without_fallback(tmp_path):
    """--no-fallback preserves the strict contract: a corrupt newest
    checkpoint is a typed exit-2 failure, not a silent generation hop
    (the default fallback path is proven in test_storagefaults.py)."""
    run_dir = tmp_path / "run"
    proc = run_cli(
        [
            "run",
            "pagerank",
            "--dataset",
            "WG",
            "--scale",
            "0.05",
            "--checkpoint-dir",
            str(run_dir),
            "--checkpoint-interval",
            "3",
        ],
        extra_env={"REPRO_CRASH_AT_ROUND": "10"},
    )
    assert proc.returncode == -signal.SIGKILL
    victim = sorted(run_dir.glob("*.ckpt"))[-1]
    data = bytearray(victim.read_bytes())
    data[len(data) // 2] ^= 0xFF
    victim.write_bytes(bytes(data))
    proc = run_cli(["resume", str(run_dir), "--no-fallback", "--json", "-"])
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert json.loads(proc.stdout)["error"]["type"] == "CheckpointCorruptError"


def test_storage_fault_trial_falls_back_and_recovers(tmp_path):
    """The crash-campaign cell with a post-mortem fault: kill, corrupt
    the newest checkpoint, and verify the resume walks back one
    generation yet still reaches bit-identical final state."""
    trial = run_crash_trial(
        "pagerank",
        "sliced",
        crash_round=7,
        checkpoint_interval=2,
        work_dir=tmp_path,
        storage_fault="ckpt-bitrot",
        fault_seed=11,
    )
    assert trial.error is None, trial.error
    assert trial.crashed
    assert trial.fault_detail is not None
    assert trial.fallback
    assert trial.checkpoints_skipped == 1
    assert trial.bit_identical and trial.rounds_match
    assert trial.recovered


def test_resume_of_non_run_directory_exits_2(tmp_path):
    proc = run_cli(["resume", str(tmp_path / "nothing-here"), "--json", "-"])
    assert proc.returncode == 2
    assert json.loads(proc.stdout)["error"]["type"] == "ManifestMismatchError"


def test_checkpoint_dir_refuses_existing_run(tmp_path):
    run_dir = tmp_path / "run"
    args = [
        "run",
        "pagerank",
        "--dataset",
        "WG",
        "--scale",
        "0.05",
        "--checkpoint-dir",
        str(run_dir),
    ]
    assert run_cli(args).returncode == 0
    proc = run_cli(args)
    assert proc.returncode == 2
    assert "repro resume" in proc.stderr
