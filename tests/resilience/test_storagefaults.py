"""The storage-fault chaos layer and the recovery it exists to prove.

Three layers of coverage:

* the injector itself — seeded determinism, the shim protocol, the
  bounded ``retry_transient`` idiom (RES-002's sanctioned shape);
* live-fire chaos: faults injected at the ``ioutil`` choke points while
  a durable run is writing, proving transient errors are absorbed by
  bounded retries and staged corruption is caught by checksums;
* the generation-fallback ladder: post-mortem corruption of the newest
  checkpoint generation(s) must land ``resume_run`` on the newest
  *verifiable* generation (or a clean from-scratch re-run) with final
  vertex state bit-identical to the fault-free reference, on every
  resumable engine family (functional state+queue, sliced journaled).

The subprocess flavor of the same scenarios (kill + corrupt + CLI
resume) lives in ``test_crash_resume.py``; the retention policy and
``repro gc`` invariants are here too.
"""

import errno
import json
import os

import numpy as np
import pytest

from repro import ioutil
from repro.analysis import prepare_workload
from repro.cli import main
from repro.core import (
    FunctionalGraphPulse,
    build_sliced,
    validate_resume_payload,
)
from repro.errors import CheckpointCorruptError, OutOfSpaceError, ReproError
from repro.resilience import (
    ResilienceConfig,
    SpillJournal,
    gc_run_dir,
    resume_run,
)
from repro.resilience.durable import DurableCheckpointStore
from repro.resilience.storagefaults import (
    RETRY_ATTEMPTS,
    StorageFaultInjector,
    StorageFaultOp,
    StorageFaultPlan,
    corrupt_file,
    inject_storage_fault,
    injecting,
    install_from_env,
    retry_transient,
    uninstall,
)


@pytest.fixture(autouse=True)
def no_leaked_shim():
    """Every test starts and ends with fault-free IO."""
    assert ioutil.io_shim() is None
    yield
    uninstall()


# ----------------------------------------------------------------------
# retry_transient: the bounded-retry idiom
# ----------------------------------------------------------------------


class TestRetryTransient:
    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "injected")
            return "done"

        delays = []
        assert (
            retry_transient(flaky, sleep=delays.append) == "done"
        )
        assert len(calls) == 3
        # exponential backoff: each wait doubles
        assert delays == [0.002, 0.004]

    def test_non_transient_propagates_immediately(self):
        calls = []

        def lease_race():
            calls.append(1)
            raise FileExistsError(errno.EEXIST, "lease held")

        with pytest.raises(FileExistsError):
            retry_transient(lease_race, sleep=lambda _: None)
        assert len(calls) == 1  # a lost lease race must not be retried

    def test_missing_file_propagates_immediately(self):
        def gone():
            raise FileNotFoundError(errno.ENOENT, "gone")

        with pytest.raises(FileNotFoundError):
            retry_transient(gone, sleep=lambda _: None)

    def test_exhaustion_raises_with_budget_in_message(self):
        calls = []

        def flaky_disk():
            calls.append(1)
            raise OSError(errno.EIO, "io error")

        with pytest.raises(OSError, match="still failing after"):
            retry_transient(
                flaky_disk, sleep=lambda _: None, description="test write"
            )
        assert len(calls) == RETRY_ATTEMPTS

    def test_persistent_enospc_raises_typed_out_of_space(self):
        calls = []

        def full_disk():
            calls.append(1)
            raise OSError(errno.ENOSPC, "full", "/some/artifact")

        with pytest.raises(OutOfSpaceError) as excinfo:
            retry_transient(
                full_disk, sleep=lambda _: None, description="test write"
            )
        assert len(calls) == RETRY_ATTEMPTS
        exc = excinfo.value
        assert exc.errno == errno.ENOSPC
        assert exc.context["attempts"] == RETRY_ATTEMPTS
        assert exc.context["path"] == "/some/artifact"
        # the typed error still satisfies legacy OSError handlers …
        assert isinstance(exc, OSError)
        # … and an outer retry must not re-retry what an inner retry
        # already classified as persistent
        with pytest.raises(OutOfSpaceError):
            retry_transient(
                lambda: retry_transient(full_disk, sleep=lambda _: None),
                sleep=lambda _: None,
            )

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            retry_transient(lambda: None, attempts=0)


# ----------------------------------------------------------------------
# Plans and the injector
# ----------------------------------------------------------------------


class TestFaultPlans:
    def test_op_json_roundtrip(self):
        op = StorageFaultOp(
            kind="torn", path_glob="*.ckpt", op_index=2, offset=17
        )
        assert StorageFaultOp.from_json(op.to_json()) == op

    def test_plan_json_roundtrip(self):
        plan = StorageFaultPlan(
            ops=(
                StorageFaultOp(kind="bitrot", path_glob="*.ckpt"),
                StorageFaultOp(kind="eio", times=3),
            ),
            seed=11,
        )
        assert StorageFaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown storage fault"):
            StorageFaultOp(kind="gamma-ray")

    def test_unknown_op_key_rejected(self):
        with pytest.raises(ReproError, match="unknown key"):
            StorageFaultOp.from_json({"kind": "torn", "sverity": 1})

    def test_install_from_env_rejects_bad_json(self):
        with pytest.raises(ReproError, match="not valid JSON"):
            install_from_env({"REPRO_STORAGE_FAULTS": "{nope"})

    def test_install_from_env_installs_and_absent_is_noop(self):
        assert install_from_env({}) is None
        plan = StorageFaultPlan(ops=(StorageFaultOp(kind="bitrot"),))
        injector = install_from_env(
            {"REPRO_STORAGE_FAULTS": json.dumps(plan.to_json())}
        )
        assert ioutil.io_shim() is injector
        assert injector.plan == plan


class TestInjectorDeterminism:
    def test_same_seed_same_damage(self):
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="bitrot", nbytes=3),), seed=9
        )
        payload = bytes(range(256)) * 4
        first = StorageFaultInjector(plan).on_append("journal.bin", payload)
        second = StorageFaultInjector(plan).on_append("journal.bin", payload)
        assert first == second
        assert first != payload

    def test_different_seed_different_offset(self):
        payload = bytes(range(256)) * 4
        damaged = {
            StorageFaultInjector(
                StorageFaultPlan(
                    ops=(StorageFaultOp(kind="torn"),), seed=seed
                )
            ).on_append("j", payload)
            for seed in range(8)
        }
        assert len(damaged) > 1  # seeds actually steer the offset

    def test_op_index_counts_matching_operations(self):
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="torn", path_glob="*.ckpt", op_index=1),)
        )
        injector = StorageFaultInjector(plan)
        untouched = injector.on_append("a.ckpt", b"xxxx")
        torn = injector.on_append("b.ckpt", b"yyyy")
        assert untouched == b"xxxx"
        assert len(torn) < 4
        assert [r["path"] for r in injector.injected] == ["b.ckpt"]

    def test_non_matching_glob_never_fires(self):
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="bitrot", path_glob="*.ckpt"),)
        )
        injector = StorageFaultInjector(plan)
        assert injector.on_append("journal.bin", b"data") == b"data"
        assert injector.injected == []


# ----------------------------------------------------------------------
# Live-fire chaos against a durable run
# ----------------------------------------------------------------------


def durable_config(run_dir, engine_options=None, interval=3, resume=False):
    return ResilienceConfig(
        checkpoint_interval=interval,
        checkpoint_dir=str(run_dir),
        run_meta={
            "workload": {
                "algorithm": "pagerank",
                "dataset": "WG",
                "scale": 0.05,
            },
            "engine_options": engine_options or {},
        },
        resume=resume,
    )


@pytest.fixture(scope="module")
def workload():
    return prepare_workload("WG", "pagerank", scale=0.05)


class TestLiveFireChaos:
    def test_staged_checkpoint_bitrot_is_caught_by_crc(
        self, tmp_path, workload
    ):
        """bitrot on the publish hook damages the staged temp file; the
        rename still happens, and the CRC catches it on load."""
        graph, spec = workload
        run_dir = tmp_path / "run"
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="bitrot", path_glob="*.ckpt"),), seed=1
        )
        with injecting(plan) as injector:
            FunctionalGraphPulse(
                graph, spec, resilience=durable_config(run_dir)
            ).run()
        assert [r["site"] for r in injector.injected] == ["publish"]
        store = DurableCheckpointStore(run_dir)
        store.open()
        damaged_seq = None
        for entry in store.manifest["checkpoints"]:
            try:
                store.load(entry["seq"])
            except CheckpointCorruptError:
                damaged_seq = entry["seq"]
        # the corrupted generation may have been pruned by later ones;
        # either way the fault fired and any survivor is detectable
        if damaged_seq is None:
            target = os.path.basename(injector.injected[0]["path"])
            assert target not in {
                e["file"] for e in store.manifest["checkpoints"]
            }

    def test_transient_publish_errors_are_absorbed(self, tmp_path, workload):
        """eio on checkpoint publishes: bounded retry rides it out and
        the run completes with an intact generation chain."""
        graph, spec = workload
        run_dir = tmp_path / "run"
        plan = StorageFaultPlan(
            ops=(
                StorageFaultOp(
                    kind="eio",
                    path_glob="*.ckpt",
                    times=RETRY_ATTEMPTS - 1,
                ),
            )
        )
        with injecting(plan) as injector:
            result = FunctionalGraphPulse(
                graph, spec, resilience=durable_config(run_dir)
            ).run()
        assert result.converged
        assert len(injector.injected) == RETRY_ATTEMPTS - 1
        store = DurableCheckpointStore(run_dir)
        store.open()
        for entry in store.manifest["checkpoints"]:
            store.load(entry["seq"])  # every retained generation verifies

    def test_transient_journal_errors_never_duplicate_records(
        self, tmp_path
    ):
        """enospc fired on the first two commit attempts: the retry
        re-attempts the whole batch, so replay sees each record once."""
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=1)
        journal.spill(0, vertex=3, generation=1, delta=0.5)
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="enospc", times=2),)
        )
        with injecting(plan) as injector:
            journal.commit(0)
        journal.close()
        assert len(injector.injected) == 2
        buffers, _ = SpillJournal.replay(path, 1, 0, lambda a, b: a + b)
        assert buffers[0] == {3: (0.5, 1)}  # applied exactly once

    def test_persistent_journal_failure_exhausts_budget(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="eio", times=RETRY_ATTEMPTS + 2),)
        )
        with injecting(plan):
            with pytest.raises(OSError, match="still failing after"):
                journal.commit(0)
        journal.close()

    def test_torn_journal_append_is_discarded_on_replay(self, tmp_path):
        """A torn commit batch: framing stops at the last good commit."""
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.spill(0, vertex=2, generation=0, delta=2.0)
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="torn"),), seed=4
        )
        with injecting(plan):
            journal.commit(1)
        journal.close()
        scan = SpillJournal.scan(path, 1, 0, lambda a, b: a + b)
        assert scan.buffers[0] == {1: (1.0, 0)}
        assert scan.last_commit == 0


# ----------------------------------------------------------------------
# The generation-fallback ladder
# ----------------------------------------------------------------------


def run_durable_functional(tmp_path, workload):
    graph, spec = workload
    reference = FunctionalGraphPulse(graph, spec).run()
    run_dir = tmp_path / "func"
    FunctionalGraphPulse(
        graph, spec, resilience=durable_config(run_dir)
    ).run()
    return run_dir, reference.values


def run_durable_sliced(tmp_path, workload):
    graph, spec = workload
    options = {"num_slices": 2, "queue_capacity": None, "auto_slice": True}
    reference = build_sliced(graph, spec, num_slices=2).run()
    run_dir = tmp_path / "sliced"
    build_sliced(
        graph,
        spec,
        num_slices=2,
        resilience=durable_config(run_dir, options),
    ).run()
    return run_dir, reference.values


FALLBACK_ENGINES = [
    ("functional", run_durable_functional),
    ("sliced", run_durable_sliced),
]


class TestGenerationFallback:
    @pytest.mark.parametrize("engine,setup", FALLBACK_ENGINES)
    def test_corrupt_newest_falls_back_bit_identically(
        self, tmp_path, workload, engine, setup
    ):
        run_dir, reference = setup(tmp_path, workload)
        detail = inject_storage_fault(run_dir, kind="ckpt-bitrot", seed=2)
        assert detail is not None and detail["target"] == "checkpoint"
        outcome = resume_run(run_dir)
        assert outcome.engine == engine
        assert outcome.provenance["fallback"] is True
        assert not outcome.provenance["from_scratch"]
        skipped = outcome.provenance["checkpoints_skipped"]
        assert [s["seq"] for s in skipped] == [detail["seq"]]
        assert outcome.restored is not None
        assert outcome.restored.seq < detail["seq"]
        assert outcome.result.values.tobytes() == reference.tobytes()
        # the corrupt generation was demoted on disk; the resumed run
        # may have re-used its sequence number for a fresh checkpoint,
        # so the invariant is: every manifest entry now verifies
        store = DurableCheckpointStore(run_dir)
        store.open()
        for entry in store.manifest["checkpoints"]:
            store.load(entry["seq"])

    @pytest.mark.parametrize("engine,setup", FALLBACK_ENGINES)
    def test_all_generations_corrupt_runs_from_scratch(
        self, tmp_path, workload, engine, setup
    ):
        run_dir, reference = setup(tmp_path, workload)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        for entry in manifest["checkpoints"]:
            corrupt_file(run_dir / entry["file"], kind="bitrot", seed=3)
        outcome = resume_run(run_dir)
        assert outcome.restored is None
        assert outcome.provenance["from_scratch"] is True
        assert len(outcome.provenance["checkpoints_skipped"]) == len(
            manifest["checkpoints"]
        )
        assert outcome.result.values.tobytes() == reference.tobytes()

    def test_torn_checkpoint_falls_back_too(self, tmp_path, workload):
        run_dir, reference = run_durable_sliced(tmp_path, workload)
        detail = inject_storage_fault(run_dir, kind="ckpt-torn", seed=7)
        assert detail is not None
        outcome = resume_run(run_dir)
        assert outcome.provenance["fallback"] is True
        assert outcome.result.values.tobytes() == reference.tobytes()

    def test_journal_tail_garbage_is_survived(self, tmp_path, workload):
        run_dir, reference = run_durable_sliced(tmp_path, workload)
        detail = inject_storage_fault(run_dir, kind="journal-tail", seed=5)
        assert detail is not None and detail["target"] == "journal"
        outcome = resume_run(run_dir)
        assert outcome.provenance["fallback"] is False
        journal = outcome.provenance["journal"]
        assert journal is not None and journal["bytes_discarded"] > 0
        assert outcome.result.values.tobytes() == reference.tobytes()

    def test_no_fallback_keeps_strict_corruption_contract(
        self, tmp_path, workload
    ):
        run_dir, _ = run_durable_functional(tmp_path, workload)
        inject_storage_fault(run_dir, kind="ckpt-bitrot", seed=2)
        with pytest.raises(CheckpointCorruptError):
            resume_run(run_dir, fallback=False)

    def test_fault_free_resume_reports_no_fallback(
        self, tmp_path, workload
    ):
        run_dir, reference = run_durable_functional(tmp_path, workload)
        outcome = resume_run(run_dir)
        assert outcome.provenance["fallback"] is False
        assert outcome.provenance["checkpoints_skipped"] == []
        assert outcome.provenance["generation"] == outcome.restored.seq
        assert outcome.result.values.tobytes() == reference.tobytes()


# ----------------------------------------------------------------------
# Recovery provenance through the CLI (+ schema)
# ----------------------------------------------------------------------


class TestResumeProvenancePayload:
    def test_cli_resume_payload_validates_and_names_the_generation(
        self, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        ref_values = tmp_path / "ref.npy"
        assert (
            main(
                [
                    "run",
                    "pagerank",
                    "--dataset",
                    "WG",
                    "--scale",
                    "0.05",
                    "--engine",
                    "sliced",
                    "--checkpoint-dir",
                    str(run_dir),
                    "--checkpoint-interval",
                    "2",
                    "--dump-values",
                    str(ref_values),
                ]
            )
            == 0
        )
        capsys.readouterr()
        detail = inject_storage_fault(run_dir, kind="ckpt-bitrot", seed=6)
        assert detail is not None
        resumed_values = tmp_path / "resumed.npy"
        assert (
            main(
                [
                    "resume",
                    str(run_dir),
                    "--dump-values",
                    str(resumed_values),
                    "--json",
                    "-",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        validate_resume_payload(payload)
        resumed = payload["resumed"]
        assert resumed["fallback"] is True
        assert resumed["generation"] == resumed["checkpoint"]
        assert [s["seq"] for s in resumed["checkpoints_skipped"]] == [
            detail["seq"]
        ]
        assert resumed["journal"]["records_replayed"] >= 0
        assert ref_values.read_bytes() == resumed_values.read_bytes()

    def test_validator_rejects_missing_provenance(self):
        with pytest.raises(ValueError, match="resumed block missing"):
            validate_resume_payload(
                {
                    "resumed": {"run_dir": "x", "checkpoint": 1},
                    "result": {},
                }
            )

    def test_validator_rejects_inconsistent_fallback_claim(self):
        with pytest.raises(ValueError, match="fallback"):
            validate_resume_payload(
                {
                    "resumed": {
                        "run_dir": "x",
                        "checkpoint": 1,
                        "round_index": 4,
                        "generation": 1,
                        "fallback": True,
                        "from_scratch": False,
                        "checkpoints_skipped": [],
                        "journal": None,
                    },
                    "result": {},
                }
            )


# ----------------------------------------------------------------------
# Retention policy: repro gc
# ----------------------------------------------------------------------


class TestGc:
    def test_keep_one_drops_older_generations(self, tmp_path, workload):
        run_dir, reference = run_durable_functional(tmp_path, workload)
        store = DurableCheckpointStore(run_dir)
        store.open()
        before = [e["seq"] for e in store.manifest["checkpoints"]]
        assert len(before) >= 2
        report = gc_run_dir(run_dir, keep=1)
        assert [e["seq"] for e in report.retained] == [before[-1]]
        assert [e["seq"] for e in report.dropped] == before[:-1]
        for entry in report.dropped:
            assert not (run_dir / entry["file"]).exists()
        outcome = resume_run(run_dir)
        assert outcome.restored.seq == before[-1]
        assert outcome.result.values.tobytes() == reference.tobytes()

    def test_dry_run_touches_nothing(self, tmp_path, workload):
        run_dir, _ = run_durable_functional(tmp_path, workload)
        snapshot = {
            p.name: p.read_bytes() for p in run_dir.iterdir()
        }
        report = gc_run_dir(run_dir, keep=1, dry_run=True)
        assert report.dry_run
        assert len(report.dropped) >= 1
        assert {
            p.name: p.read_bytes() for p in run_dir.iterdir()
        } == snapshot

    def test_corrupt_generation_is_reported_and_removed(
        self, tmp_path, workload
    ):
        run_dir, reference = run_durable_functional(tmp_path, workload)
        detail = inject_storage_fault(run_dir, kind="ckpt-bitrot", seed=8)
        report = gc_run_dir(run_dir)
        assert [c["seq"] for c in report.corrupt] == [detail["seq"]]
        assert not (run_dir / f"checkpoint-{detail['seq']:06d}.ckpt").exists()
        outcome = resume_run(run_dir)
        assert outcome.provenance["fallback"] is False  # gc already pruned
        assert outcome.result.values.tobytes() == reference.tobytes()

    def test_orphan_checkpoints_are_collected(self, tmp_path, workload):
        run_dir, _ = run_durable_functional(tmp_path, workload)
        orphan = run_dir / "checkpoint-000099.ckpt"
        orphan.write_bytes(b"debris")
        report = gc_run_dir(run_dir)
        assert "checkpoint-000099.ckpt" in report.orphans
        assert not orphan.exists()

    def test_keep_below_one_rejected(self, tmp_path, workload):
        run_dir, _ = run_durable_functional(tmp_path, workload)
        with pytest.raises(ReproError):
            gc_run_dir(run_dir, keep=0)

    def test_gc_never_compacts_past_oldest_retained_commit(
        self, tmp_path, workload
    ):
        """THE retention invariant: after gc, every retained generation
        can still replay the journal from its own commit horizon —
        records newer than the oldest retained commit are untouched."""
        graph, spec = workload
        run_dir, reference = run_durable_sliced(tmp_path, workload)
        report = gc_run_dir(run_dir)
        assert report.journal and "upto" in report.journal
        store = DurableCheckpointStore(run_dir)
        store.open()
        entries = store.manifest["checkpoints"]
        boundary = entries[0]["journal_commit"]
        assert report.journal["upto"] == boundary
        for entry in entries:
            # replay to each retained generation's commit still works
            SpillJournal.replay(
                run_dir / "journal.bin",
                2,
                entry["journal_commit"],
                spec.reduce,
            )
        # and the full resume remains bit-identical
        outcome = resume_run(run_dir)
        assert outcome.result.values.tobytes() == reference.tobytes()
