"""Journal lifecycle: torn-tail edge cases and compaction semantics.

The base replay semantics live in ``test_durable.py``; this file pins
down the corner cases the storage-fault chaos layer exposed — an empty
(zero-byte) journal file, truncation landing *exactly* on a record
boundary, duplicate commit markers — and the compaction machinery:
re-baselining must leave replay to any retained commit bit-identical,
and the engine-driven compaction at checkpoint boundaries must never
strand a retained generation.

The protocol cases run through the substrate transport interface,
parameterized over the fs and memory backends — the GPJL byte machine
has exactly one behavior wherever the log lives (and the memory leg
keeps the hot path off the disk).  Only the engine-driven test at the
bottom is inherently fs-bound (it resumes a real run directory).
"""

import json

import pytest

from repro.analysis import prepare_workload
from repro.core import build_sliced
from repro.errors import CheckpointCorruptError
from repro.resilience import ResilienceConfig, SpillJournal, resume_run
from repro.resilience.substrate import build_substrate

_CRC_SIZE = 4
_RECORD_SIZES = {
    "spill": 1 + 4 + 8 + 8 + 8 + _CRC_SIZE,
    "consume": 1 + 4 + _CRC_SIZE,
    "commit": 1 + 8 + _CRC_SIZE,
}


def add(a, b):
    return a + b


class Log:
    """One journal plus raw-byte access to wherever its bytes live.

    The tests damage the log the way a crash or bitrot would — partial
    writes, flipped bytes — which needs a medium-specific escape hatch
    (the file for fs, the transport's byte buffer for memory); every
    protocol operation goes through the portable transport surface.
    """

    def __init__(self, backend, path):
        self.backend = backend
        self.path = path
        self.transport = build_substrate(backend).spill_transport(path)

    def read(self):
        if self.backend == "fs":
            return self.path.read_bytes()
        return bytes(self.transport._log)

    def write(self, data):
        if self.backend == "fs":
            self.path.write_bytes(data)
        else:
            self.transport._log = bytearray(data)

    def size(self):
        return len(self.read())


@pytest.fixture(params=["fs", "memory"])
def log(request, tmp_path):
    return Log(request.param, tmp_path / "journal.bin")


class TestTornTailEdgeCases:
    def test_zero_byte_journal_is_a_typed_failure(self, log):
        """An empty log is not 'an empty journal': the header is gone,
        so trusting it would mean trusting an unknown slice count."""
        log.write(b"")
        with pytest.raises(CheckpointCorruptError, match="magic"):
            log.transport.replay(2, None, add)

    def test_header_only_journal_replays_empty(self, log):
        log.transport.create(2).close()
        scan = log.transport.scan(2, None, add)
        assert scan.buffers == [{}, {}]
        assert scan.records_applied == 0
        assert scan.tail_bytes == 0
        assert scan.last_commit is None

    def test_truncation_exactly_at_a_record_boundary(self, log):
        """The tail ends on a whole-record edge — no partial bytes.
        Replay must treat the complete-but-uncommitted record as tail,
        reproducing the committed state bit for bit."""
        journal = log.transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.spill(0, vertex=2, generation=0, delta=2.0)
        journal.commit(1)
        journal.close()
        # drop commit 1's marker exactly: the log now ends at the
        # uncommitted spill record's boundary
        log.transport.truncate(log.size() - _RECORD_SIZES["commit"])
        scan = log.transport.scan(1, 0, add)
        assert scan.buffers[0] == {1: (1.0, 0)}
        assert scan.last_commit == 0
        assert scan.tail_records == 1  # the whole, valid, orphaned spill
        assert scan.tail_bytes == _RECORD_SIZES["spill"]
        # truncating at the scan offset then replaying is idempotent
        log.transport.truncate(scan.offset)
        again, offset = log.transport.replay(1, 0, add)
        assert again == scan.buffers
        assert offset == log.size()

    def test_duplicate_commit_markers_are_deterministic(self, log):
        """Two COMMIT(1) markers (a retried flush that actually landed
        twice): replay-to-1 adopts the first, replay-to-latest adopts
        the second — identical buffers either way."""
        journal = log.transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(1)
        journal.commit(1)  # duplicate marker, no records in between
        journal.close()
        first = log.transport.scan(1, 1, add)
        latest = log.transport.scan(1, None, add)
        assert first.buffers == latest.buffers == [{1: (1.0, 0)}]
        assert first.last_commit == latest.last_commit == 1
        # the first scan stops at the first marker; the duplicate is a
        # valid (discardable) tail record behind it
        assert latest.offset - first.offset == _RECORD_SIZES["commit"]
        assert first.tail_records == 1

    def test_corruption_in_tail_only_stops_the_tail_count(self, log):
        journal = log.transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.spill(0, vertex=2, generation=0, delta=2.0)
        journal.commit(1)
        journal.close()
        data = bytearray(log.read())
        data[-2] ^= 0xFF  # inside commit 1's CRC: corrupt, but post-target
        log.write(bytes(data))
        scan = log.transport.scan(1, 0, add)
        assert scan.buffers[0] == {1: (1.0, 0)}
        assert scan.tail_records == 1  # the spill counts, commit 1 doesn't
        with pytest.raises(CheckpointCorruptError):
            log.transport.scan(1, 1, add)


class TestCompaction:
    def build_journal(self, log):
        journal = log.transport.create(2)
        for commit in range(4):
            for vertex in range(6):
                journal.spill(
                    vertex % 2, vertex=vertex, generation=commit,
                    delta=0.5 * (commit + 1),
                )
            if commit == 2:
                journal.consume(0)
            journal.commit(commit)
        journal.close()

    def test_replay_after_compaction_is_bit_identical(self, log):
        self.build_journal(log)
        before = {
            upto: log.transport.replay(2, upto, add)[0]
            for upto in (1, 2, 3)
        }
        stats = log.transport.compact_file(2, 1, add)
        assert stats["upto"] == 1
        assert stats["bytes_after"] < stats["bytes_before"]
        assert stats["records_dropped"] > 0
        for upto in (1, 2, 3):
            after, _ = log.transport.replay(2, upto, add)
            assert after == before[upto]

    def test_commits_below_the_boundary_resolve_to_the_baseline(self, log):
        """``upto`` means "replay to at least this commit": after
        compaction the oldest reachable state is the baseline, so a
        request for an older commit deterministically adopts it rather
        than failing — gc retention guarantees no live checkpoint ever
        references a commit below the boundary."""
        self.build_journal(log)
        baseline, _ = log.transport.replay(2, 2, add)
        log.transport.compact_file(2, 2, add)
        scan = log.transport.scan(2, 0, add)
        assert scan.last_commit == 2
        assert scan.buffers == baseline

    def test_compaction_is_idempotent_at_the_same_boundary(self, log):
        self.build_journal(log)
        log.transport.compact_file(2, 2, add)
        first = log.read()
        stats = log.transport.compact_file(2, 2, add)
        assert log.read() == first
        assert stats["records_dropped"] == 0

    def test_live_compact_requires_a_committed_boundary(self, log):
        journal = log.transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.spill(0, vertex=2, generation=0, delta=2.0)  # uncommitted
        with pytest.raises(ValueError, match="uncommitted"):
            journal.compact(0, add)
        journal.close()

    def test_live_compact_keeps_appending(self, log):
        journal = log.transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.compact(0, add)
        assert journal.compactions == 1
        assert journal.compacted_upto == 0
        journal.spill(0, vertex=2, generation=1, delta=2.0)
        journal.commit(1)
        journal.close()
        buffers, _ = log.transport.replay(1, 1, add)
        assert buffers[0] == {1: (1.0, 0), 2: (2.0, 1)}


class TestEngineDrivenCompaction:
    def test_sliced_run_compacts_at_checkpoint_boundaries(self, tmp_path):
        """The harness compacts to the oldest *retained* generation's
        commit as the run rolls forward, and the run dir still resumes
        bit-identically afterwards — compaction never eats a record a
        retained checkpoint could need."""
        graph, spec = prepare_workload("WG", "pagerank", scale=0.05)
        reference = build_sliced(graph, spec, num_slices=2).run()
        run_dir = tmp_path / "run"
        config = ResilienceConfig(
            checkpoint_interval=2,
            checkpoint_dir=str(run_dir),
            run_meta={
                "workload": {
                    "algorithm": "pagerank",
                    "dataset": "WG",
                    "scale": 0.05,
                },
                "engine_options": {
                    "num_slices": 2,
                    "queue_capacity": None,
                    "auto_slice": True,
                },
            },
        )
        result = build_sliced(
            graph, spec, num_slices=2, resilience=config
        ).run()
        durable = result.resilience["durable"]
        assert durable["journal_compactions"] >= 1
        assert durable["journal_records_dropped"] > 0
        # every retained generation still replays from its own commit
        manifest = json.loads((run_dir / "manifest.json").read_text())
        for entry in manifest["checkpoints"]:
            SpillJournal.replay(
                run_dir / "journal.bin",
                2,
                entry["journal_commit"],
                spec.reduce,
            )
        outcome = resume_run(run_dir)
        assert outcome.result.values.tobytes() == reference.values.tobytes()
