"""Cross-host failover against real processes: SIGKILL one supervisor,
a different one finishes the run bit-identically.

The ``sliced-hosts`` acceptance tests.  Each case runs CLI supervisors
in subprocesses against one shared substrate directory; the kill point
selects which durable publish the death interrupts, forcing each of the
three takeover cases (nothing durable / journal only / journal+shard).
The oracle is always the sequential ``sliced`` engine's value dump.
"""

import pytest

from repro.resilience.crosshost import (
    run_host_failover_trial,
    run_host_pair_trial,
)

# each point kills the victim at a different spot in the step's publish
# sequence, so the survivor exercises a different takeover case
KILL_POINTS = ("pre", "journal", "shard")


@pytest.mark.parametrize("kill_point", KILL_POINTS)
def test_sigkill_host_survivor_is_bit_identical(tmp_path, kill_point):
    trial = run_host_failover_trial(
        "pagerank",
        kill_step=7,
        kill_point=kill_point,
        work_dir=tmp_path,
    )
    assert trial.error is None, trial.error
    assert trial.killed
    assert trial.survivor_returncode == 0
    assert trial.takeovers >= 1, "survivor never fenced the dead epoch"
    assert trial.bit_identical
    assert trial.passes_match, (
        f"reference converged in {trial.reference_passes} passes, "
        f"survivor in {trial.survivor_passes}"
    )
    assert trial.recovered


def test_sigkill_host_sssp_recovers(tmp_path):
    trial = run_host_failover_trial(
        "sssp", kill_step=4, kill_point="journal", work_dir=tmp_path
    )
    assert trial.error is None, trial.error
    assert trial.recovered


def test_two_live_hosts_serialize_without_fencing(tmp_path):
    trial = run_host_pair_trial("pagerank", work_dir=tmp_path)
    assert trial.error is None, trial.error
    assert trial.bit_identical
    assert trial.takeovers == 0, (
        "live hosts fenced each other; staleness detection is broken"
    )
    assert trial.serialized
