"""Durable execution: checkpoint/journal serialization and resume.

The crash-injection subprocess tests live in ``test_crash_resume.py``;
this file proves the layer's building blocks in-process: exact binary
round trips (including NaN payloads, ±inf, empty queues and zero-vertex
slices), typed corruption failures, the write-ahead spill journal's
replay semantics, manifest validation, and in-process restore equality
for every engine.
"""

import json
import math
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import algorithms
from repro.analysis import ALGORITHMS, prepare_workload
from repro.core import (
    Event,
    FunctionalGraphPulse,
    GraphPulseAccelerator,
    build_sliced,
)
from repro.errors import CheckpointCorruptError, ManifestMismatchError
from repro.graph import erdos_renyi_graph
from repro.graph.io import graph_fingerprint
from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    SpillJournal,
    deserialize_checkpoint,
    resume_run,
    serialize_checkpoint,
)
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.durable import DurableCheckpointStore


def make_checkpoint(state, queue_snapshot, *, index=0, round_index=4, at=4.0):
    return Checkpoint(
        index=index,
        round_index=round_index,
        at=at,
        state=np.asarray(state, dtype=np.float64),
        queue_snapshot=queue_snapshot,
        pending_events=sum(len(g) for g in queue_snapshot),
    )


def roundtrip(checkpoint, *, queue_kind="bins", **overrides):
    kwargs = {
        "engine": "functional",
        "algorithm": "pagerank",
        "queue_kind": queue_kind,
        "totals": {"events_processed": 17, "events_produced": 23},
        "fault_cursor": {"opportunities": 5, "draws": {"drop": 2}},
        "journal_commit": None,
    }
    kwargs.update(overrides)
    blob = serialize_checkpoint(checkpoint, **kwargs)
    return blob, deserialize_checkpoint(blob, source="<test>")


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_real_run_snapshot_roundtrips(self, algorithm):
        """Capture a mid-run checkpoint for each algorithm and round-trip."""
        graph, spec = prepare_workload("WG", algorithm, scale=0.05)
        config = ResilienceConfig(checkpoint_interval=3)
        engine = FunctionalGraphPulse(graph, spec, resilience=config)
        engine.run()
        captured = engine.resilience.checkpoints.latest
        assert captured is not None, "run too short to capture a checkpoint"
        blob, restored = roundtrip(captured, algorithm=algorithm)
        np.testing.assert_array_equal(restored.state, captured.state)
        assert restored.round_index == captured.round_index
        assert restored.algorithm == algorithm
        flat = lambda snap: [
            (e.vertex, struct.pack("<d", e.delta), e.generation, e.ready)
            for group in snap
            for e in group
        ]
        assert flat(restored.queue_snapshot) == flat(captured.queue_snapshot)

    def test_nan_and_inf_deltas_survive_bitwise(self):
        nan_payload = struct.unpack("<d", struct.pack("<Q", 0x7FF8_0000_DEAD_BEEF))[0]
        snapshot = [
            [Event(vertex=0, delta=nan_payload), Event(vertex=1, delta=math.inf)],
            [Event(vertex=2, delta=-math.inf)],
        ]
        state = np.array([math.nan, math.inf, -0.0])
        _, restored = roundtrip(make_checkpoint(state, snapshot))
        # bitwise, not just value-wise: the NaN payload must survive
        assert struct.pack("<d", restored.queue_snapshot[0][0].delta) == struct.pack(
            "<d", nan_payload
        )
        assert restored.queue_snapshot[0][1].delta == math.inf
        assert restored.queue_snapshot[1][0].delta == -math.inf
        assert state.tobytes() == restored.state.tobytes()

    def test_empty_queue_and_zero_vertices(self):
        _, restored = roundtrip(make_checkpoint(np.zeros(0), []))
        assert restored.state.shape == (0,)
        assert restored.queue_snapshot == []

    def test_zero_vertex_slices_in_spill_snapshot(self):
        # middle slice has no pending spills; order must survive
        snapshot = [
            {3: Event(vertex=3, delta=0.5), 1: Event(vertex=1, delta=0.25)},
            {},
            {2: Event(vertex=2, delta=1.5, generation=4)},
        ]
        _, restored = roundtrip(
            make_checkpoint(np.ones(5), snapshot),
            queue_kind="spill",
            engine="sliced",
            journal_commit=7,
        )
        assert [list(b.keys()) for b in restored.queue_snapshot] == [[3, 1], [], [2]]
        assert restored.queue_snapshot[2][2].generation == 4
        assert restored.journal_commit == 7

    def test_parity_tag_survives(self):
        event = Event(vertex=0, delta=1.0)
        event._parity_bad = True
        _, restored = roundtrip(make_checkpoint(np.zeros(1), [[event]]))
        assert getattr(restored.queue_snapshot[0][0], "_parity_bad", False)

    def test_totals_and_cursor_roundtrip(self):
        _, restored = roundtrip(make_checkpoint(np.zeros(2), [[]]))
        assert restored.totals == {"events_processed": 17, "events_produced": 23}
        assert restored.fault_cursor["draws"] == {"drop": 2}

    @settings(max_examples=40, deadline=None)
    @given(
        state=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=12,
        ),
        groups=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=2**31),
                    st.floats(allow_nan=True, allow_infinity=True, width=64),
                    st.integers(min_value=0, max_value=2**31),
                ),
                max_size=5,
            ),
            max_size=5,
        ),
    )
    def test_property_roundtrip_is_bit_exact(self, state, groups):
        snapshot = [
            [Event(vertex=v, delta=d, generation=g) for v, d, g in group]
            for group in groups
        ]
        checkpoint = make_checkpoint(np.asarray(state, dtype=np.float64), snapshot)
        _, restored = roundtrip(checkpoint)
        assert restored.state.tobytes() == checkpoint.state.tobytes()
        original = [
            (e.vertex, struct.pack("<d", e.delta), e.generation)
            for group in snapshot
            for e in group
        ]
        recovered = [
            (e.vertex, struct.pack("<d", e.delta), e.generation)
            for group in restored.queue_snapshot
            for e in group
        ]
        assert original == recovered


class TestCheckpointCorruption:
    def blob(self):
        snapshot = [[Event(vertex=0, delta=1.0), Event(vertex=1, delta=2.0)]]
        blob, _ = roundtrip(make_checkpoint(np.arange(4.0), snapshot))
        return blob

    def test_flipped_byte_raises_typed_error(self):
        blob = bytearray(self.blob())
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            deserialize_checkpoint(bytes(blob), source="<corrupt>")

    def test_every_single_byte_flip_is_caught(self):
        # CRC32 catches any single-bit error; sweep a byte flip across
        # the whole file to prove there is no unprotected region
        blob = self.blob()
        for position in range(len(blob)):
            broken = bytearray(blob)
            broken[position] ^= 0x01
            with pytest.raises(CheckpointCorruptError):
                deserialize_checkpoint(bytes(broken), source="<sweep>")

    def test_truncation(self):
        blob = self.blob()
        with pytest.raises(CheckpointCorruptError):
            deserialize_checkpoint(blob[: len(blob) // 2], source="<trunc>")
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            deserialize_checkpoint(blob[:3], source="<trunc>")

    def test_bad_magic(self):
        blob = b"NOPE" + self.blob()[4:]
        with pytest.raises(CheckpointCorruptError, match="magic"):
            deserialize_checkpoint(blob, source="<magic>")

    def test_version_mismatch(self):
        blob = bytearray(self.blob())
        struct.pack_into("<H", blob, 4, 999)
        body = bytes(blob[:-4])
        blob = body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(CheckpointCorruptError, match="version"):
            deserialize_checkpoint(blob, source="<version>")


def identity_reduce(a, b):
    return a + b


class TestSpillJournal:
    def test_replay_applies_reduce_and_generation_max(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=2)
        journal.spill(0, vertex=3, generation=1, delta=0.5)
        journal.spill(0, vertex=3, generation=4, delta=0.25)
        journal.spill(1, vertex=7, generation=0, delta=-1.0)
        journal.commit(0)
        journal.close()
        buffers, offset = SpillJournal.replay(path, 2, 0, identity_reduce)
        assert buffers[0][3] == (0.75, 4)
        assert buffers[1][7] == (-1.0, 0)
        assert offset == path.stat().st_size

    def test_consume_clears_a_slice(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=2)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.consume(0)
        journal.spill(1, vertex=2, generation=0, delta=2.0)
        journal.commit(1)
        journal.close()
        buffers, _ = SpillJournal.replay(path, 2, 1, identity_reduce)
        assert buffers[0] == {}
        assert buffers[1] == {2: (2.0, 0)}

    def test_torn_tail_after_target_commit_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.close()
        offset_at_commit = path.stat().st_size
        # simulate a crash mid-append: garbage after the commit point
        with open(path, "ab") as handle:
            handle.write(b"\x01garbage-torn-write")
        buffers, offset = SpillJournal.replay(path, 1, 0, identity_reduce)
        assert buffers[0] == {1: (1.0, 0)}
        assert offset == offset_at_commit
        SpillJournal.truncate(path, offset)
        assert path.stat().st_size == offset_at_commit

    def test_corruption_before_target_commit_raises(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(0)
        journal.close()
        data = bytearray(path.read_bytes())
        data[-6] ^= 0xFF  # inside the commit record's CRC-covered bytes
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            SpillJournal.replay(path, 1, 0, identity_reduce)

    def test_unreached_commit_raises(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = SpillJournal.create(path, num_slices=1)
        journal.commit(0)
        journal.close()
        with pytest.raises(CheckpointCorruptError, match="commit"):
            SpillJournal.replay(path, 1, 5, identity_reduce)

    def test_header_slice_count_mismatch(self, tmp_path):
        path = tmp_path / "journal.bin"
        SpillJournal.create(path, num_slices=2).close()
        with pytest.raises(CheckpointCorruptError):
            SpillJournal.open_append(path, num_slices=3)

    def test_empty_journal_replays_empty(self, tmp_path):
        path = tmp_path / "journal.bin"
        SpillJournal.create(path, num_slices=3).close()
        buffers, _ = SpillJournal.replay(path, 3, None, identity_reduce)
        assert buffers == [{}, {}, {}]


class TestStoreAndManifest:
    def run_durable(self, tmp_path, engine="functional"):
        graph, spec = prepare_workload("WG", "pagerank", scale=0.05)
        run_dir = tmp_path / "run"
        config = ResilienceConfig(
            checkpoint_interval=5,
            checkpoint_dir=str(run_dir),
            run_meta={
                "workload": {
                    "algorithm": "pagerank",
                    "dataset": "WG",
                    "scale": 0.05,
                },
                "engine_options": {},
            },
        )
        result = FunctionalGraphPulse(graph, spec, resilience=config).run()
        return run_dir, result

    def test_manifest_indexes_only_live_checkpoints(self, tmp_path):
        run_dir, _ = self.run_durable(tmp_path)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        entries = manifest["checkpoints"]
        assert 0 < len(entries) <= 2  # pruned to checkpoint_keep
        on_disk = sorted(p.name for p in run_dir.glob("*.ckpt"))
        assert sorted(e["file"] for e in entries) == on_disk
        graph, _ = prepare_workload("WG", "pagerank", scale=0.05)
        assert manifest["graph"]["fingerprint"] == graph_fingerprint(graph)

    def test_create_refuses_existing_run(self, tmp_path):
        run_dir, _ = self.run_durable(tmp_path)
        store = DurableCheckpointStore(run_dir)
        with pytest.raises(ManifestMismatchError, match="resume"):
            store.create({"format_version": 1})

    def test_load_latest_seq_crosscheck(self, tmp_path):
        run_dir, _ = self.run_durable(tmp_path)
        store = DurableCheckpointStore(run_dir)
        manifest = store.open()
        last = manifest["checkpoints"][-1]
        wrong = run_dir / "checkpoint-000099.ckpt"
        wrong.write_bytes((run_dir / last["file"]).read_bytes())
        with pytest.raises(CheckpointCorruptError, match="sequence"):
            store.load(99)

    def test_resume_rejects_fingerprint_mismatch(self, tmp_path):
        run_dir, _ = self.run_durable(tmp_path)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        manifest["graph"]["fingerprint"] = "0" * 64
        (run_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestMismatchError, match="fingerprint"):
            resume_run(run_dir)

    def test_resume_rejects_manifest_version_skew(self, tmp_path):
        run_dir, _ = self.run_durable(tmp_path)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        manifest["format_version"] = 999
        (run_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointCorruptError, match="version"):
            resume_run(run_dir)

    def test_resume_rejects_missing_dir(self, tmp_path):
        with pytest.raises(ManifestMismatchError, match="manifest"):
            resume_run(tmp_path / "never-created")


class TestInProcessRestore:
    """Restore from a real mid-run checkpoint and finish identically."""

    @pytest.fixture(scope="class")
    def workload(self):
        return prepare_workload("WG", "sssp", scale=0.05)

    def durable_config(self, run_dir, engine_options=None, resume=False):
        return ResilienceConfig(
            checkpoint_interval=4,
            checkpoint_dir=str(run_dir),
            run_meta={
                "workload": {
                    "algorithm": "sssp",
                    "dataset": "WG",
                    "scale": 0.05,
                },
                "engine_options": engine_options or {},
            },
            resume=resume,
        )

    def test_functional_restore_is_bit_identical(self, tmp_path, workload):
        graph, spec = workload
        reference = FunctionalGraphPulse(graph, spec).run()
        run_dir = tmp_path / "func"
        FunctionalGraphPulse(
            graph, spec, resilience=self.durable_config(run_dir)
        ).run()
        store = DurableCheckpointStore(run_dir)
        store.open()
        restored = store.load_latest()
        assert restored is not None
        engine = FunctionalGraphPulse(
            graph, spec, resilience=self.durable_config(run_dir, resume=True)
        )
        engine.restore(restored)
        result = engine.run()
        assert result.values.tobytes() == reference.values.tobytes()
        final_round = (
            result.rounds[-1].round_index + 1
            if result.rounds
            else restored.round_index + 1
        )
        assert final_round == reference.num_rounds
        assert (
            result.total_events_processed == reference.total_events_processed
        )

    def test_cycle_restore_is_bit_identical(self, tmp_path, workload):
        graph, spec = workload
        reference = GraphPulseAccelerator(graph, spec).run()
        run_dir = tmp_path / "cycle"
        GraphPulseAccelerator(
            graph, spec, resilience=self.durable_config(run_dir)
        ).run()
        store = DurableCheckpointStore(run_dir)
        store.open()
        restored = store.load_latest()
        assert restored is not None
        engine = GraphPulseAccelerator(
            graph, spec, resilience=self.durable_config(run_dir, resume=True)
        )
        engine.restore(restored)
        result = engine.run()
        assert result.values.tobytes() == reference.values.tobytes()
        assert result.num_rounds == reference.num_rounds

    def test_sliced_restore_is_bit_identical(self, tmp_path, workload):
        graph, spec = workload
        options = {"num_slices": 2, "queue_capacity": None, "auto_slice": True}
        reference = build_sliced(graph, spec, num_slices=2).run()
        run_dir = tmp_path / "sliced"
        build_sliced(
            graph,
            spec,
            num_slices=2,
            resilience=self.durable_config(run_dir, options),
        ).run()
        store = DurableCheckpointStore(run_dir)
        store.open()
        restored = store.load_latest()
        assert restored is not None
        engine = build_sliced(
            graph,
            spec,
            num_slices=2,
            resilience=self.durable_config(run_dir, options, resume=True),
        )
        engine.restore(restored)
        result = engine.run()
        assert result.values.tobytes() == reference.values.tobytes()
        final_pass = (
            result.activations[-1].pass_index + 1
            if result.activations
            else restored.round_index
        )
        assert final_pass == reference.activations[-1].pass_index + 1

    def test_restore_with_faults_replays_same_plan(self, tmp_path, workload):
        """The fault-injector cursor restores: the resumed run draws the
        same fault decisions the uninterrupted faulty run draws."""
        graph, spec = workload
        plan = FaultPlan.uniform(5e-3, seed=3, kinds=("drop",))

        def config(run_dir=None, resume=False):
            return ResilienceConfig(
                fault_plan=plan,
                checkpoint_interval=4,
                checkpoint_dir=str(run_dir) if run_dir else None,
                run_meta={
                    "workload": {
                        "algorithm": "sssp",
                        "dataset": "WG",
                        "scale": 0.05,
                    },
                    "engine_options": {},
                },
                resume=resume,
            )

        reference = FunctionalGraphPulse(
            graph, spec, resilience=ResilienceConfig(fault_plan=plan)
        ).run()
        run_dir = tmp_path / "faulty"
        FunctionalGraphPulse(graph, spec, resilience=config(run_dir)).run()
        store = DurableCheckpointStore(run_dir)
        store.open()
        restored = store.load_latest()
        assert restored is not None
        assert sum(restored.fault_cursor["draws"].values()) > 0
        engine = FunctionalGraphPulse(
            graph, spec, resilience=config(run_dir, resume=True)
        )
        engine.restore(restored)
        result = engine.run()
        assert result.values.tobytes() == reference.values.tobytes()
        assert (
            result.resilience["faults"]["total"]
            == reference.resilience["faults"]["total"]
        )


class TestZeroOverheadOff:
    def test_plain_runs_unchanged_by_durability_code(self):
        """No --checkpoint-dir: resilience summary has no durable section
        and results match a pre-durability plain run bit for bit."""
        graph, spec = prepare_workload("WG", "pagerank", scale=0.05)
        plain = FunctionalGraphPulse(graph, spec).run()
        resilient = FunctionalGraphPulse(
            graph, spec, resilience=ResilienceConfig()
        ).run()
        assert plain.values.tobytes() == resilient.values.tobytes()
        assert plain.num_rounds == resilient.num_rounds
        assert "durable" not in resilient.resilience
