"""Substrate conformance: every backend speaks the same durable protocol.

One suite, parameterized over every registered backend (``fs`` and
``memory``), driving exclusively the abstract interfaces of
``repro.resilience.substrate.base``.  Passing here is what licenses the
engines to treat backends as interchangeable: epoch-fenced lease
ownership with monotonic heartbeat counters, GPJL write-ahead spill
logging with torn-tail tolerance, and the GPCK checkpoint generation
ladder must behave identically whatever medium holds the bytes.

Backend-specific behavior (file layout, mtime fallback, fsync
discipline) stays in ``test_lease.py`` / ``test_durable.py``; anything
asserted here may only use the portable surface.
"""

import os
import time

import numpy as np
import pytest

from repro.errors import (
    CheckpointCorruptError,
    LeaseHeldError,
    ManifestMismatchError,
)
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.storagefaults import (
    StorageFaultOp,
    StorageFaultPlan,
    injecting,
)
from repro.resilience.substrate import SUBSTRATE_BACKENDS, build_substrate

# a pid that cannot exist on Linux (default pid_max is 2**22)
DEAD_PID = 2**22 + 12345


def add(a, b):
    return a + b


@pytest.fixture(params=sorted(SUBSTRATE_BACKENDS))
def backend(request):
    return request.param


@pytest.fixture
def substrate(backend):
    return build_substrate(backend)


@pytest.fixture
def leases(substrate, tmp_path):
    return substrate.lease_store(tmp_path / "leases")


@pytest.fixture
def transport(substrate, tmp_path):
    return substrate.spill_transport(tmp_path / "journal.bin")


@pytest.fixture
def checkpoints(substrate, tmp_path):
    return substrate.checkpoint_store(tmp_path / "run")


# ----------------------------------------------------------------------
# Leases: ownership, heartbeat counters, fencing
# ----------------------------------------------------------------------


class TestLeaseConformance:
    def test_registry_rejects_unknown_backend(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown substrate backend"):
            build_substrate("carrier-pigeon")

    def test_acquire_read_release(self, leases):
        held = leases.acquire(3, owner="host-a", epoch=2)
        info = leases.read(3)
        assert (info.slice_index, info.owner, info.pid, info.epoch) == (
            3,
            "host-a",
            os.getpid(),
            2,
        )
        assert info.heartbeat == 0
        held.release()
        assert leases.read(3) is None

    def test_double_acquire_names_the_holder(self, leases):
        leases.acquire(0, owner="first")
        with pytest.raises(LeaseHeldError, match="first"):
            leases.acquire(0, owner="second")

    def test_release_is_idempotent(self, leases):
        held = leases.acquire(1, owner="w")
        held.release()
        held.release()  # second release must not raise

    def test_heartbeat_counter_is_monotonic(self, leases):
        """Satellite invariant: every refresh bumps the published
        counter by exactly one — the signal observation-based staleness
        keys on when mtime granularity is useless."""
        held = leases.acquire(0, owner="w")
        for expected in (1, 2, 3):
            held.refresh()
            assert leases.read(0).heartbeat == expected
        assert held.info.heartbeat == 3

    def test_missing_lease_is_not_stale(self, leases):
        assert not leases.is_stale(0, timeout=0.01)
        assert not leases.break_stale(0, timeout=0.01)

    def test_live_heartbeating_holder_is_protected(self, leases):
        leases.acquire(0, owner="alive")
        assert not leases.is_stale(0, timeout=3600.0)
        with pytest.raises(LeaseHeldError, match="alive"):
            leases.break_stale(0, timeout=3600.0)

    def test_dead_pid_is_fenced_and_epoch_advances(self, leases):
        leases.acquire(0, owner="dead", pid=DEAD_PID, epoch=4)
        assert leases.is_stale(0, timeout=3600.0)
        assert leases.break_stale(0, timeout=3600.0)
        assert leases.read(0) is None
        leases.acquire(0, owner="successor", epoch=5)
        info = leases.read(0)
        assert info.owner == "successor"
        assert info.epoch == 5

    def test_heartbeat_silence_is_stale_under_observation(self, leases):
        """A live-pid holder that stops refreshing gets fenced: the
        observations cache sees the counter frozen past the timeout."""
        leases.acquire(0, owner="silent")  # never refreshes
        obs = {}
        # first sighting only records the counter; silence starts now
        assert not leases.is_stale(0, timeout=0.05, observations=obs)
        time.sleep(0.12)
        assert leases.is_stale(0, timeout=0.05, observations=obs)
        assert leases.break_stale(0, timeout=0.05, observations=obs)
        assert leases.read(0) is None

    def test_refresh_resets_the_observation_clock(self, leases):
        held = leases.acquire(0, owner="w")
        obs = {}
        assert not leases.is_stale(0, timeout=0.08, observations=obs)
        time.sleep(0.05)
        held.refresh()
        time.sleep(0.05)
        # more wall time than the timeout has passed since the first
        # sighting, but the counter moved in between: not stale
        assert not leases.is_stale(0, timeout=0.08, observations=obs)

    def test_refresh_never_resurrects_a_fenced_lease(self, leases):
        """The fencing guarantee: once broken, the old holder's
        heartbeat must not re-create the slot (the successor would be
        sharing the slice with a zombie)."""
        held = leases.acquire(0, owner="zombie", pid=DEAD_PID)
        assert leases.break_stale(0, timeout=3600.0)
        held.refresh()  # silent no-op, not an error
        assert leases.read(0) is None


# ----------------------------------------------------------------------
# Spill transport: WAL semantics, torn tails, compaction
# ----------------------------------------------------------------------


class TestTransportConformance:
    def test_exists_tracks_creation(self, transport):
        assert not transport.exists()
        transport.create(2).close()
        assert transport.exists()

    def test_replay_coalesces_like_the_live_buffers(self, transport):
        journal = transport.create(2)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.spill(0, vertex=1, generation=1, delta=0.25)
        journal.spill(1, vertex=5, generation=0, delta=2.0)
        journal.commit(1)
        journal.close()
        buffers, _ = transport.replay(2, None, add)
        # same-vertex records coalesce through reduce_fn, newest generation
        assert buffers == [{1: (1.25, 1)}, {5: (2.0, 0)}]

    def test_uncommitted_records_never_reach_the_log(self, transport):
        """The WAL contract: records buffer in memory until commit, so a
        crash (or a fencing abort) between spill and commit leaves no
        trace for replay to double-apply."""
        journal = transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.close()  # no commit
        buffers, _ = transport.replay(1, None, add)
        assert buffers == [{}]

    def test_consume_clears_a_slice_and_upto_rewinds_it(self, transport):
        journal = transport.create(2)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.spill(1, vertex=2, generation=0, delta=2.0)
        journal.commit(1)
        journal.consume(0)
        journal.commit(2)
        journal.close()
        assert transport.replay(2, None, add)[0] == [{}, {2: (2.0, 0)}]
        assert transport.replay(2, 1, add)[0] == [
            {1: (1.0, 0)},
            {2: (2.0, 0)},
        ]

    def test_torn_tail_is_tolerated_then_truncated(self, transport):
        """A crash mid-append leaves a partial record; scan must adopt
        the last complete commit, report the stray bytes as tail, and
        truncating at the scan offset must leave a clean log."""
        journal = transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(1)
        journal.spill(0, vertex=2, generation=0, delta=2.0)
        journal.commit(2)
        journal.close()
        committed = transport.scan(1, 1, add)
        # tear 3 bytes into whatever followed commit 1
        transport.truncate(committed.offset + 3)
        scan = transport.scan(1, None, add)
        assert scan.buffers == committed.buffers == [{1: (1.0, 0)}]
        assert scan.last_commit == 1
        assert scan.offset == committed.offset
        assert scan.tail_bytes == 3
        assert scan.tail_records == 0  # partial bytes, no whole record
        transport.truncate(scan.offset)
        clean = transport.scan(1, None, add)
        assert clean.buffers == committed.buffers
        assert clean.tail_bytes == 0

    def test_open_append_continues_the_log(self, transport):
        journal = transport.create(1)
        journal.spill(0, vertex=1, generation=0, delta=1.0)
        journal.commit(1)
        journal.close()
        resumed = transport.open_append(1)
        resumed.spill(0, vertex=2, generation=1, delta=2.0)
        resumed.commit(2)
        resumed.close()
        buffers, _ = transport.replay(1, None, add)
        assert buffers == [{1: (1.0, 0), 2: (2.0, 1)}]

    def test_open_append_validates_the_slice_count(self, transport):
        transport.create(2).close()
        with pytest.raises(CheckpointCorruptError):
            transport.open_append(3)

    def test_compaction_preserves_replay_to_retained_commits(self, transport):
        journal = transport.create(2)
        for commit in range(1, 4):
            for vertex in range(4):
                journal.spill(
                    vertex % 2,
                    vertex=vertex,
                    generation=commit,
                    delta=0.5 * commit,
                )
            journal.commit(commit)
        journal.close()
        before = {
            upto: transport.replay(2, upto, add)[0] for upto in (2, 3)
        }
        stats = transport.compact_file(2, 2, add)
        assert stats["records_dropped"] > 0
        assert stats["bytes_after"] < stats["bytes_before"]
        for upto in (2, 3):
            assert transport.replay(2, upto, add)[0] == before[upto]

    def test_transient_append_fault_is_retried(self, transport, backend):
        """Interface-boundary chaos: one injected EIO on the journal
        commit must be absorbed by the bounded retry — on either
        backend, through the same plan vocabulary."""
        plan = StorageFaultPlan(
            ops=(StorageFaultOp(kind="eio", path_glob="journal.bin"),)
        )
        with injecting(plan) as injector:
            journal = transport.create(1)
            journal.spill(0, vertex=1, generation=0, delta=1.0)
            journal.commit(1)
            journal.close()
            assert injector.injected, f"{backend}: fault never fired"
            assert injector.injected[0]["kind"] == "eio"
        buffers, _ = transport.replay(1, None, add)
        assert buffers == [{1: (1.0, 0)}]


# ----------------------------------------------------------------------
# Checkpoints: the generation ladder
# ----------------------------------------------------------------------


def fresh_manifest():
    return {"format_version": 1, "checkpoints": []}


def make_checkpoint(seq, value):
    state = np.full(4, value, dtype=np.float64)
    return Checkpoint(
        index=seq,
        round_index=seq * 10,
        at=float(seq),
        state=state,
        queue_snapshot=[],
        pending_events=0,
    )


WRITE_KW = dict(
    engine="sliced",
    algorithm="pagerank",
    queue_kind="bins",
    totals={"events_processed": 1},
    fault_cursor={},
    journal_commit=None,
)


class TestCheckpointConformance:
    def test_create_refuses_to_clobber(self, checkpoints):
        checkpoints.create(fresh_manifest())
        with pytest.raises(ManifestMismatchError, match="already contains"):
            checkpoints.create(fresh_manifest())

    def test_sequences_and_latest(self, checkpoints):
        checkpoints.create(fresh_manifest())
        for seq in range(3):
            assert checkpoints.next_seq() == seq
            checkpoints.write(
                make_checkpoint(seq, float(seq)), keep=10, **WRITE_KW
            )
        latest = checkpoints.load_latest()
        assert latest.seq == 2
        assert latest.state.tobytes() == make_checkpoint(2, 2.0).state.tobytes()

    def test_generation_ladder_demotes_and_overwrites(self, checkpoints):
        """``drop_newer_than`` is the resume fallback: the manifest is
        demoted first, newer files become unreachable, and the next
        write overwrites the corrupt range instead of appending."""
        checkpoints.create(fresh_manifest())
        for seq in range(3):
            checkpoints.write(
                make_checkpoint(seq, float(seq)), keep=10, **WRITE_KW
            )
        dropped = checkpoints.drop_newer_than(0)
        assert [entry["seq"] for entry in dropped] == [1, 2]
        assert checkpoints.load_latest().seq == 0
        assert checkpoints.next_seq() == 1
        with pytest.raises(CheckpointCorruptError):
            checkpoints.load(2)  # demoted generations are gone

    def test_drop_to_none_empties_the_run(self, checkpoints):
        checkpoints.create(fresh_manifest())
        checkpoints.write(make_checkpoint(0, 1.0), keep=10, **WRITE_KW)
        dropped = checkpoints.drop_newer_than(None)
        assert [entry["seq"] for entry in dropped] == [0]
        assert checkpoints.load_latest() is None
        assert checkpoints.next_seq() == 0

    def test_keep_prunes_old_generations(self, checkpoints):
        checkpoints.create(fresh_manifest())
        for seq in range(4):
            checkpoints.write(
                make_checkpoint(seq, float(seq)), keep=2, **WRITE_KW
            )
        entries = checkpoints.manifest["checkpoints"]
        assert [entry["seq"] for entry in entries] == [2, 3]
        assert checkpoints.next_seq() == 4
        with pytest.raises(CheckpointCorruptError):
            checkpoints.load(0)

    def test_reopen_sees_the_published_manifest(self, substrate, tmp_path):
        store = substrate.checkpoint_store(tmp_path / "run")
        store.create(fresh_manifest())
        store.write(make_checkpoint(0, 3.5), keep=5, **WRITE_KW)
        # fs hands out a fresh store over the same directory; memory
        # memoizes the store — open() re-parses the published bytes
        # either way, which is the cross-process contract
        reopened = substrate.checkpoint_store(tmp_path / "run")
        manifest = reopened.open()
        assert [entry["seq"] for entry in manifest["checkpoints"]] == [0]
        restored = reopened.load_latest()
        assert restored.state.tobytes() == make_checkpoint(0, 3.5).state.tobytes()
