"""Tests for per-slice lease files (the sliced-mp ownership protocol)."""

import json
import os
import time

import pytest

from repro.errors import LeaseHeldError
from repro.resilience.lease import (
    LeaseInfo,
    SliceLease,
    break_stale,
    is_stale,
    lease_path,
    read_lease,
)


class TestAcquire:
    def test_acquire_writes_lease_file(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 3, owner="worker0", epoch=2)
        path = lease_path(tmp_path, 3)
        assert path.exists()
        info = read_lease(path)
        assert info == LeaseInfo(
            slice_index=3, owner="worker0", pid=os.getpid(), epoch=2
        )
        lease.release()
        assert not path.exists()

    def test_double_acquire_rejected(self, tmp_path):
        SliceLease.acquire(tmp_path, 0, owner="worker0")
        with pytest.raises(LeaseHeldError) as excinfo:
            SliceLease.acquire(tmp_path, 0, owner="worker1")
        assert "worker0" in str(excinfo.value)

    def test_release_is_idempotent(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 1, owner="w")
        lease.release()
        lease.release()  # second release must not raise

    def test_refresh_bumps_mtime(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 0, owner="w")
        before = lease.path.stat().st_mtime
        os.utime(lease.path, (before - 100, before - 100))
        lease.refresh()
        assert lease.path.stat().st_mtime > before - 100


class TestStaleness:
    def test_missing_lease_is_not_stale(self, tmp_path):
        assert not is_stale(lease_path(tmp_path, 0), timeout=0.1)

    def test_fresh_lease_of_live_pid_is_not_stale(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 0, owner="w")
        assert not is_stale(lease.path, timeout=60.0)

    def test_dead_pid_is_stale(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 0, owner="w", pid=2**22 + 12345)
        assert is_stale(lease.path, timeout=3600.0)

    def test_expired_heartbeat_is_stale(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 0, owner="w")
        old = time.time() - 30.0
        os.utime(lease.path, (old, old))
        assert is_stale(lease.path, timeout=5.0)

    def test_unparseable_lease_is_stale(self, tmp_path):
        path = lease_path(tmp_path, 0)
        path.write_bytes(b"not json at all")
        assert is_stale(path, timeout=3600.0)
        assert read_lease(path) is None


class TestBreakStale:
    def test_break_stale_removes_dead_owner(self, tmp_path):
        SliceLease.acquire(tmp_path, 0, owner="w", pid=2**22 + 12345)
        assert break_stale(lease_path(tmp_path, 0), timeout=3600.0)
        assert not lease_path(tmp_path, 0).exists()

    def test_break_stale_on_missing_file_is_noop(self, tmp_path):
        assert not break_stale(lease_path(tmp_path, 0), timeout=1.0)

    def test_break_refuses_fresh_lease(self, tmp_path):
        SliceLease.acquire(tmp_path, 0, owner="alive")
        with pytest.raises(LeaseHeldError):
            break_stale(lease_path(tmp_path, 0), timeout=3600.0)

    def test_takeover_after_break(self, tmp_path):
        SliceLease.acquire(tmp_path, 0, owner="dead", pid=2**22 + 12345)
        break_stale(lease_path(tmp_path, 0), timeout=3600.0)
        lease = SliceLease.acquire(tmp_path, 0, owner="successor", epoch=1)
        info = read_lease(lease.path)
        assert info.owner == "successor"
        assert info.epoch == 1

    def test_lease_file_is_json(self, tmp_path):
        lease = SliceLease.acquire(tmp_path, 7, owner="w")
        payload = json.loads(lease.path.read_text())
        assert payload["slice"] == 7
        assert payload["pid"] == os.getpid()
