"""Watchdog halts for non-converging configurations (both engines)."""

import numpy as np
import pytest

from repro.algorithms.base import AlgorithmSpec
from repro.core import FunctionalGraphPulse, GraphPulseAccelerator
from repro.errors import NonConvergenceError
from repro.graph import CSRGraph
from repro.resilience import ProgressWatchdog, ResilienceConfig, build_diagnostic


def make_oscillator() -> AlgorithmSpec:
    """A mis-configured algorithm: propagate never contracts the delta.

    On a cycle graph (every out-degree 1) each event regenerates itself
    forever — exactly the failure mode the watchdog exists to catch.
    """
    return AlgorithmSpec(
        name="oscillator",
        reduce=lambda state, delta: state + delta,
        propagate=lambda delta, src, dst, weight, degree: delta,
        identity=0.0,
        initial_delta=lambda vertex, graph: 1.0,
        should_propagate=lambda change: abs(change) > 1e-12,
        additive=True,
    )


@pytest.fixture(scope="module")
def ring():
    n = 16
    return CSRGraph.from_edges(n, [(v, (v + 1) % n) for v in range(n)])


class TestFunctionalHalt:
    def test_round_limit_halts_with_diagnostic(self, ring):
        engine = FunctionalGraphPulse(ring, make_oscillator(), max_rounds=40)
        with pytest.raises(NonConvergenceError, match="did not converge"):
            engine.run()

    def test_diagnostic_names_stuck_vertices_and_bins(self, ring):
        engine = FunctionalGraphPulse(ring, make_oscillator(), max_rounds=40)
        with pytest.raises(NonConvergenceError) as info:
            engine.run()
        diagnostic = info.value.diagnostic
        assert diagnostic["reason"] == "round-limit"
        assert diagnostic["engine"] == "functional"
        assert diagnostic["rounds"] == 40
        assert diagnostic["queue_occupancy"] > 0
        assert info.value.stuck_vertices  # sampled from live bins
        assert all(0 <= v < ring.num_vertices for v in info.value.stuck_vertices)
        assert info.value.stuck_bins
        assert str(info.value.stuck_vertices[0]) in diagnostic["stuck_deltas"]

    def test_halts_with_resilience_enabled_too(self, ring):
        engine = FunctionalGraphPulse(
            ring,
            make_oscillator(),
            max_rounds=40,
            resilience=ResilienceConfig(),
        )
        with pytest.raises(NonConvergenceError) as info:
            engine.run()
        assert info.value.diagnostic["reason"] == "round-limit"


class TestCycleHalt:
    def test_round_limit_halts_with_diagnostic(self, ring):
        engine = GraphPulseAccelerator(ring, make_oscillator(), max_rounds=40)
        with pytest.raises(NonConvergenceError) as info:
            engine.run()
        diagnostic = info.value.diagnostic
        assert diagnostic["reason"] == "round-limit"
        assert diagnostic["engine"] == "cycle"
        assert info.value.stuck_vertices
        assert info.value.stuck_bins

    def test_halts_with_resilience_enabled_too(self, ring):
        engine = GraphPulseAccelerator(
            ring,
            make_oscillator(),
            max_rounds=40,
            resilience=ResilienceConfig(),
        )
        with pytest.raises(NonConvergenceError):
            engine.run()


class TestWatchdogUnit:
    def test_no_progress_verdict(self):
        watchdog = ProgressWatchdog(1000, no_progress_rounds=3)
        for _ in range(3):
            assert watchdog.verdict() is None
            watchdog.observe_round(10, 0)
        assert watchdog.verdict() == "no-progress"

    def test_progress_resets_the_stall_streak(self):
        watchdog = ProgressWatchdog(1000, no_progress_rounds=3)
        watchdog.observe_round(10, 0)
        watchdog.observe_round(10, 0)
        watchdog.observe_round(10, 5)  # real progress
        watchdog.observe_round(10, 0)
        assert watchdog.verdict() is None

    def test_diagnostic_builder_on_stub_queue(self):
        class StubQueue:
            num_bins = 2
            occupancy = 3

            def peek_bin(self, index):
                from repro.core.event import Event

                if index == 0:
                    return [Event(vertex=7, delta=2.0)]
                return [Event(vertex=1, delta=0.5), Event(vertex=2, delta=1.0)]

        diagnostic = build_diagnostic("test", "no-progress", 12, StubQueue())
        assert diagnostic["stuck_bins"][0] == 1  # fullest bin first
        assert diagnostic["stuck_vertices"][0] == 7  # largest delta first
        assert diagnostic["queue_occupancy"] == 3
