"""Unit tests for the prefetch scratchpad."""

import pytest

from repro.memory import DRAMConfig, DRAMSystem, Scratchpad


@pytest.fixture
def pad():
    return Scratchpad("pad", DRAMSystem(DRAMConfig()), capacity_bytes=256)


class TestPrefetch:
    def test_prefetch_then_fast_read(self, pad):
        done = pad.prefetch(0, 0)
        assert done > 0  # DRAM latency paid once
        assert pad.read(8, done) == done + pad.access_cycles

    def test_duplicate_prefetch_is_free(self, pad):
        pad.prefetch(0, 0)
        backing_bytes = pad.backing.stats.get("bytes")
        assert pad.prefetch(32, 10) == 10  # same line, no traffic
        assert pad.backing.stats.get("bytes") == backing_bytes
        assert pad.stats.get("duplicate_prefetches") == 1

    def test_capacity_enforced(self, pad):
        for i in range(pad.capacity_lines):
            pad.prefetch(i * 64, 0)
        with pytest.raises(RuntimeError, match="overflow"):
            pad.prefetch(pad.capacity_lines * 64, 0)

    def test_release_frees_capacity(self, pad):
        for i in range(pad.capacity_lines):
            pad.prefetch(i * 64, 0)
        pad.release(0)
        pad.prefetch(pad.capacity_lines * 64, 0)  # no raise
        assert pad.resident_lines == pad.capacity_lines

    def test_release_all(self, pad):
        pad.prefetch(0, 0)
        pad.prefetch(64, 0)
        pad.release_all()
        assert pad.resident_lines == 0


class TestRead:
    def test_non_resident_read_raises(self, pad):
        with pytest.raises(KeyError):
            pad.read(0, 0)

    def test_contains(self, pad):
        assert not pad.contains(0)
        pad.prefetch(0, 0)
        assert pad.contains(63)
        assert not pad.contains(64)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Scratchpad("x", DRAMSystem(DRAMConfig()), capacity_bytes=32)
