"""Unit tests for the DDR3-style DRAM model."""

import pytest

from repro.memory import DRAMConfig, DRAMSystem, MemoryRequest


@pytest.fixture
def dram():
    return DRAMSystem(DRAMConfig())


class TestRequestValidation:
    def test_negative_address(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=-1, size=8)

    def test_zero_size(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=0, size=0)


class TestSingleAccess:
    def test_first_access_is_row_miss(self, dram):
        result = dram.access(MemoryRequest(0, 8), 0)
        assert not result.row_hit
        assert result.latency >= dram.config.row_miss_cycles

    def test_second_access_same_row_hits(self, dram):
        dram.access(MemoryRequest(0, 8), 0)
        done = dram.channels[0].bus.next_free
        result = dram.access(MemoryRequest(8, 8), done)
        assert result.row_hit

    def test_row_hit_is_faster(self, dram):
        miss = dram.access(MemoryRequest(0, 8), 0)
        hit = dram.access(MemoryRequest(8, 8), miss.done_cycle)
        assert hit.latency < miss.latency

    def test_different_row_same_bank_misses_again(self, dram):
        cfg = dram.config
        stride = (
            cfg.num_channels
            * cfg.banks_per_channel
            * cfg.row_bytes
        )
        first = dram.access(MemoryRequest(0, 8), 0)
        second = dram.access(MemoryRequest(stride, 8), first.done_cycle)
        assert not second.row_hit


class TestMultiLine:
    def test_large_request_spans_lines(self, dram):
        request = MemoryRequest(0, 256)
        assert len(list(dram.lines_of(request))) == 4
        dram.access(request, 0)
        assert dram.stats.get("bytes") == 256

    def test_unaligned_request_rounds_to_lines(self, dram):
        # 8 bytes straddling a line boundary costs two lines
        dram.access(MemoryRequest(60, 8), 0)
        assert dram.stats.get("bytes") == 128

    def test_lines_interleave_channels(self, dram):
        dram.access(MemoryRequest(0, 64 * dram.config.num_channels), 0)
        for channel in dram.channels:
            assert channel.stats.get("bursts") == 1

    def test_access_lines_returns_per_line_timing(self, dram):
        results = dram.access_lines(MemoryRequest(0, 256), 0)
        assert len(results) == 4
        assert all(r.done_cycle > 0 for r in results)


class TestBandwidth:
    def test_sequential_stream_saturates(self, dram):
        # issue a long stream and verify throughput approaches the
        # configured bytes/cycle
        total = 64 * 1024
        done = dram.access(MemoryRequest(0, total), 0).done_cycle
        achieved = total / done
        assert achieved > 0.5 * dram.config.total_bandwidth

    def test_bandwidth_utilization_bounded(self, dram):
        dram.access(MemoryRequest(0, 4096), 0)
        horizon = dram.busy_horizon()
        assert 0.0 < dram.bandwidth_utilization(horizon) <= 1.0
        assert dram.bandwidth_utilization(0) == 0.0


class TestStats:
    def test_kind_accounting(self, dram):
        dram.access(MemoryRequest(0, 64, kind="vertex"), 0)
        dram.access(MemoryRequest(4096, 64, kind="edge"), 0)
        assert dram.stats.get("vertex_bytes") == 64
        assert dram.stats.get("edge_bytes") == 64

    def test_read_write_split(self, dram):
        dram.access(MemoryRequest(0, 64), 0)
        dram.access(MemoryRequest(0, 64, is_write=True), 0)
        assert dram.stats.get("read_bytes") == 64
        assert dram.stats.get("write_bytes") == 64

    def test_row_hit_rate(self, dram):
        assert dram.row_hit_rate() == 0.0
        dram.access(MemoryRequest(0, 8), 0)
        dram.access(MemoryRequest(8, 8), 200)
        assert 0.0 < dram.row_hit_rate() < 1.0

    def test_sequential_hits_dominate(self, dram):
        # a long stream within rows should mostly row-hit
        cursor = 0
        for i in range(64):
            cursor = dram.access(MemoryRequest(i * 64, 64), cursor).done_cycle
        assert dram.row_hit_rate() > 0.7
