"""Address-mapping and contention tests for the DRAM model."""

import pytest

from repro.memory import DRAMConfig, DRAMSystem, MemoryRequest


class TestAddressMapping:
    def test_consecutive_lines_hit_all_channels(self):
        dram = DRAMSystem(DRAMConfig(num_channels=4))
        for line in range(8):
            dram.access(MemoryRequest(line * 64, 64), 0)
        for channel in dram.channels:
            assert channel.stats.get("bursts") == 2

    def test_channel_local_columns_share_a_row(self):
        cfg = DRAMConfig(num_channels=1, banks_per_channel=2, row_bytes=256)
        dram = DRAMSystem(cfg)
        first = dram.access(MemoryRequest(0, 8), 0)
        cursor = first.done_cycle
        # lines 1..3 are columns of the same open row
        for line in range(1, 4):
            result = dram.access(MemoryRequest(line * 64, 8), cursor)
            assert result.row_hit, f"line {line} should row-hit"
            cursor = result.done_cycle
        # line 4 moves to the next bank (cold) -> miss
        assert not dram.access(MemoryRequest(4 * 64, 8), cursor).row_hit

    def test_bank_interleave_before_row_increment(self):
        cfg = DRAMConfig(num_channels=1, banks_per_channel=4, row_bytes=128)
        dram = DRAMSystem(cfg)
        lines_per_row = cfg.lines_per_row
        dram.access(MemoryRequest(0, 8), 0)
        # the first line of each subsequent bank is a cold miss in a
        # *different* bank, so no precharge of bank 0's open row
        for bank in range(1, 4):
            address = bank * lines_per_row * 64
            dram.access(MemoryRequest(address, 8), 1000 * bank)
        # returning to bank 0's original row still hits
        assert dram.access(MemoryRequest(8, 8), 10_000).row_hit


class TestContention:
    def test_same_bank_requests_serialize(self):
        cfg = DRAMConfig(num_channels=1, banks_per_channel=1)
        dram = DRAMSystem(cfg)
        stride = cfg.row_bytes  # next row, same (only) bank
        a = dram.access(MemoryRequest(0, 8), 0)
        b = dram.access(MemoryRequest(stride, 8), 0)
        assert b.done_cycle > a.done_cycle

    def test_different_channels_overlap(self):
        dram = DRAMSystem(DRAMConfig(num_channels=4))
        results = [
            dram.access(MemoryRequest(line * 64, 8), 0) for line in range(4)
        ]
        # all four issued at cycle 0 on distinct channels: identical timing
        assert len({r.done_cycle for r in results}) == 1

    def test_bus_bandwidth_limits_one_channel(self):
        cfg = DRAMConfig(num_channels=1, bytes_per_cycle=8.0)
        dram = DRAMSystem(cfg)
        done = dram.access(MemoryRequest(0, 1024), 0).done_cycle
        # 1024 bytes at 8 B/cycle needs >= 128 bus cycles
        assert done >= 128


class TestBusyHorizon:
    def test_horizon_tracks_last_burst(self):
        dram = DRAMSystem(DRAMConfig())
        assert dram.busy_horizon() == 0
        result = dram.access(MemoryRequest(0, 64), 0)
        assert dram.busy_horizon() == result.done_cycle

    def test_total_bytes(self):
        dram = DRAMSystem(DRAMConfig())
        dram.access(MemoryRequest(0, 128), 0)
        assert dram.total_bytes() == 128
