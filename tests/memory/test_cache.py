"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory import Cache, CacheConfig, DRAMConfig, DRAMSystem


@pytest.fixture
def dram():
    return DRAMSystem(DRAMConfig())


def make_cache(dram, capacity=1024, assoc=2):
    return Cache("c", CacheConfig(capacity, associativity=assoc), dram)


class TestConfig:
    def test_misaligned_capacity_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(100, line_bytes=64, associativity=2)

    def test_geometry(self):
        cfg = CacheConfig(1024, line_bytes=64, associativity=2)
        assert cfg.num_sets == 8


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self, dram):
        cache = make_cache(dram)
        miss = cache.access(0, 0)
        assert not miss.row_hit  # row_hit doubles as cache-hit flag
        hit = cache.access(8, miss.done_cycle)
        assert hit.row_hit
        assert hit.latency == cache.config.hit_cycles

    def test_miss_goes_to_dram(self, dram):
        cache = make_cache(dram)
        cache.access(0, 0)
        assert dram.stats.get("bytes") == 64

    def test_hit_produces_no_traffic(self, dram):
        cache = make_cache(dram)
        cache.access(0, 0)
        before = dram.stats.get("bytes")
        cache.access(0, 100)
        assert dram.stats.get("bytes") == before

    def test_hit_rate(self, dram):
        cache = make_cache(dram)
        cache.access(0, 0)
        cache.access(0, 1)
        cache.access(0, 2)
        assert cache.hit_rate() == pytest.approx(2 / 3)

    def test_kind_accounting(self, dram):
        cache = make_cache(dram)
        cache.access(0, 0, kind="edge")
        cache.access(0, 1, kind="edge")
        assert cache.stats.get("edge_misses") == 1
        assert cache.stats.get("edge_hits") == 1


class TestReplacement:
    def test_lru_eviction(self, dram):
        cache = make_cache(dram, capacity=256, assoc=2)  # 2 sets
        sets = cache.config.num_sets
        line = cache.config.line_bytes
        stride = sets * line  # same set, different tags
        cache.access(0 * stride, 0)
        cache.access(1 * stride, 1)
        cache.access(2 * stride, 2)  # evicts tag 0 (LRU)
        assert not cache.access(0, 3).row_hit  # tag 0 gone
        # hitting keeps recency: re-touch tag 2 then insert tag 3
        cache.access(2 * stride, 4)

    def test_access_refreshes_lru(self, dram):
        cache = make_cache(dram, capacity=256, assoc=2)
        stride = cache.config.num_sets * cache.config.line_bytes
        cache.access(0, 0)
        cache.access(stride, 1)
        cache.access(0, 2)  # refresh tag 0
        cache.access(2 * stride, 3)  # evicts tag 1, not 0
        assert cache.access(0, 4).row_hit

    def test_dirty_eviction_writes_back(self, dram):
        cache = make_cache(dram, capacity=256, assoc=1)
        stride = cache.config.num_sets * cache.config.line_bytes
        cache.access(0, 0, is_write=True)
        cache.access(stride, 1)  # evicts dirty line
        assert cache.stats.get("writebacks") == 1
        assert dram.stats.get("write_bytes") == 64

    def test_clean_eviction_is_silent(self, dram):
        cache = make_cache(dram, capacity=256, assoc=1)
        stride = cache.config.num_sets * cache.config.line_bytes
        cache.access(0, 0)
        cache.access(stride, 1)
        assert cache.stats.get("writebacks") == 0


class TestFlush:
    def test_flush_writes_dirty_lines(self, dram):
        cache = make_cache(dram)
        cache.access(0, 0, is_write=True)
        cache.access(64, 0, is_write=True)
        cache.access(128, 0)  # clean
        assert cache.flush() == 2
        assert not cache.access(0, 100).row_hit  # cache is empty now
