"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank"])
        assert args.dataset == "LJ"
        assert args.engine == "functional"
        assert args.scale == 0.2

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quicksort"])

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "--dataset", "XX"])


class TestDatasets:
    def test_lists_all_proxies(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("WG", "FB", "WK", "LJ", "TW"):
            assert name in out


class TestRun:
    @pytest.mark.parametrize("engine", ["functional", "cycle", "bsp", "ligra"])
    def test_engines(self, capsys, engine):
        code = main(
            [
                "run",
                "bfs",
                "--dataset",
                "WG",
                "--scale",
                "0.03",
                "--engine",
                engine,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: bfs" in out
        assert "values:" in out

    def test_verify_flag(self, capsys):
        code = main(
            [
                "run",
                "cc",
                "--dataset",
                "WG",
                "--scale",
                "0.03",
                "--verify",
            ]
        )
        assert code == 0
        assert "verification" in capsys.readouterr().out

    def test_functional_prints_coalescing(self, capsys):
        main(["run", "pagerank", "--dataset", "WG", "--scale", "0.03"])
        assert "coalesced away" in capsys.readouterr().out

    def test_cycle_prints_cycles(self, capsys):
        main(
            [
                "run",
                "pagerank",
                "--dataset",
                "WG",
                "--scale",
                "0.03",
                "--engine",
                "cycle",
            ]
        )
        assert "cycles:" in capsys.readouterr().out


class TestCompare:
    def test_summary_table(self, capsys):
        code = main(
            ["compare", "cc", "--dataset", "WG", "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GraphPulse+opt vs Ligra" in out
        assert "Graphicionado" in out
