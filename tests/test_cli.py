"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import load_chrome_trace, read_metrics_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pagerank"])
        assert args.dataset == "LJ"
        assert args.engine == "functional"
        assert args.scale == 0.2

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quicksort"])

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "--dataset", "XX"])


class TestDatasets:
    def test_lists_all_proxies(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("WG", "FB", "WK", "LJ", "TW"):
            assert name in out


class TestRun:
    @pytest.mark.parametrize("engine", ["functional", "cycle", "bsp", "ligra"])
    def test_engines(self, capsys, engine):
        code = main(
            [
                "run",
                "bfs",
                "--dataset",
                "WG",
                "--scale",
                "0.03",
                "--engine",
                engine,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: bfs" in out
        assert "values:" in out

    def test_verify_flag(self, capsys):
        code = main(
            [
                "run",
                "cc",
                "--dataset",
                "WG",
                "--scale",
                "0.03",
                "--verify",
            ]
        )
        assert code == 0
        assert "verification" in capsys.readouterr().out

    def test_functional_prints_coalescing(self, capsys):
        main(["run", "pagerank", "--dataset", "WG", "--scale", "0.03"])
        assert "coalesced away" in capsys.readouterr().out

    def test_cycle_prints_cycles(self, capsys):
        main(
            [
                "run",
                "pagerank",
                "--dataset",
                "WG",
                "--scale",
                "0.03",
                "--engine",
                "cycle",
            ]
        )
        assert "cycles:" in capsys.readouterr().out


class TestObservabilityFlags:
    RUN = ["run", "pagerank", "--dataset", "WG", "--scale", "0.03",
           "--engine", "cycle"]

    def test_trace_round_trip(self, capsys, tmp_path):
        path = tmp_path / "run.trace.json"
        assert main(self.RUN + ["--trace", str(path)]) == 0
        assert "trace:" in capsys.readouterr().out
        payload = load_chrome_trace(str(path))  # validates the format
        names = {r.get("name") for r in payload["traceEvents"]}
        assert {"round", "event", "dram.txn"} <= names

    def test_trace_categories_filter(self, tmp_path):
        path = tmp_path / "run.trace.json"
        assert main(
            self.RUN + ["--trace", str(path), "--trace-categories", "round"]
        ) == 0
        payload = load_chrome_trace(str(path))
        non_meta = [
            r for r in payload["traceEvents"] if r["ph"] != "M"
        ]
        assert non_meta
        assert {r["name"] for r in non_meta} == {"round"}

    def test_json_to_stdout_replaces_human_output(self, capsys):
        assert main(self.RUN + ["--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # the whole stdout is one JSON document
        assert payload["engine"] == "cycle"
        assert payload["workload"]["algorithm"] == "pagerank"
        assert payload["result"]["converged"] is True
        assert payload["result"]["stats"]["cycles"] > 0
        # --json payloads follow the engine-independent RunResult schema
        from repro.core import validate_run_result

        validate_run_result(payload["result"])

    def test_json_to_file_keeps_human_output(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(self.RUN + ["--json", str(path)]) == 0
        assert "cycles:" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["values"]["finite"] == payload["values"]["total"]

    def test_metrics_round_trip(self, capsys, tmp_path):
        path = tmp_path / "run.metrics.jsonl"
        assert main(
            self.RUN + ["--metrics", str(path), "--metrics-interval", "500"]
        ) == 0
        records = read_metrics_jsonl(str(path))
        samples = [r for r in records if r["type"] == "sample"]
        stats = [r for r in records if r["type"] == "stats"]
        assert samples and len(stats) == 1
        assert stats[0]["engine"] == "cycle"
        cycles = [r["cycle"] for r in samples]
        assert cycles == sorted(cycles)
        assert all(c % 500 == 0 for c in cycles)
        assert "queue_occupancy" in samples[0]

    def test_json_trace_and_metrics_compose(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.jsonl"
        assert main(
            self.RUN
            + ["--json", "--trace", str(trace_path),
               "--metrics", str(metrics_path)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["events"] == len(
            load_chrome_trace(str(trace_path))["traceEvents"]
        )
        assert payload["metrics"]["lines"] == len(
            read_metrics_jsonl(str(metrics_path))
        )

    def test_functional_engine_trace(self, capsys, tmp_path):
        path = tmp_path / "f.trace.json"
        assert main(
            ["run", "bfs", "--dataset", "WG", "--scale", "0.03",
             "--trace", str(path)]
        ) == 0
        payload = load_chrome_trace(str(path))
        assert any(
            r.get("name") == "round" for r in payload["traceEvents"]
        )


class TestCompare:
    def test_summary_table(self, capsys):
        code = main(
            ["compare", "cc", "--dataset", "WG", "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GraphPulse+opt vs Ligra" in out
        assert "Graphicionado" in out

    def test_json_output(self, capsys):
        code = main(
            ["compare", "cc", "--dataset", "WG", "--scale", "0.1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"]["algorithm"] == "cc"
        assert payload["summary"]["speedup_vs_ligra"] > 0


class TestProgressFlag:
    RUN = ["run", "pagerank", "--dataset", "WG", "--scale", "0.03"]

    def test_heartbeat_on_stderr_and_snapshot_in_json(self, capsys):
        assert main(self.RUN + ["--progress", "10", "--json"]) == 0
        captured = capsys.readouterr()
        assert "progress: engine=functional round=10" in captured.err
        payload = json.loads(captured.out)
        registry = payload["metrics_registry"]
        rounds = registry["engine.rounds{engine=functional}"]
        assert rounds["type"] == "counter"
        assert rounds["value"] == payload["result"]["rounds"]
        assert "queue.inserted" in registry

    def test_registry_absent_without_progress(self, capsys):
        assert main(self.RUN + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics_registry" not in payload

    def test_bad_interval_is_typed_error(self, capsys):
        assert main(self.RUN + ["--progress", "0"]) == 2
        assert "--progress" in capsys.readouterr().err


class TestWorkerTelemetry:
    RUN = ["run", "pagerank", "--dataset", "WG", "--scale", "0.03",
           "--engine", "sliced-mp", "--workers", "2", "--num-slices", "4"]

    def test_worker_stats_in_json(self, capsys):
        from repro.core import WORKER_STATS_KEYS, validate_run_result

        assert main(self.RUN + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        info = payload["result"]
        validate_run_result(info)
        worker_stats = info["stats"]["worker_stats"]
        assert len(worker_stats) == 2
        for entry in worker_stats:
            assert set(entry) == set(WORKER_STATS_KEYS)
        assert [w["worker"] for w in worker_stats] == [0, 1]
        # every drained event is attributed to exactly one worker
        drained = sum(w["events_drained"] for w in worker_stats)
        assert drained == info["stats"]["events_processed"]
        # fault-free run: no recovery activity
        assert all(w["lease_recoveries"] == 0 for w in worker_stats)
        assert all(w["journal_replays"] == 0 for w in worker_stats)

    def test_human_output_reports_workers(self, capsys):
        assert main(self.RUN) == 0
        assert "workers: 2" in capsys.readouterr().out


class TestBenchVerb:
    BENCH = ["bench", "--engines", "functional,bsp", "--algorithms", "bfs",
             "--dataset", "WG", "--scale", "0.03", "--repeats", "1",
             "--warmup", "0"]

    def test_artifact_and_json(self, capsys, tmp_path, monkeypatch):
        from repro.obs.bench import load_bench, validate_bench

        monkeypatch.chdir(tmp_path)
        out = tmp_path / "BENCH_test.json"
        assert main(self.BENCH + ["--out", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_bench(payload)
        assert load_bench(str(out)) == payload
        assert [c["key"] for c in payload["cells"]] == [
            "functional/bfs/WG@0.03",
            "bsp/bfs/WG@0.03",
        ]
        assert all(c["events_per_sec"] > 0 for c in payload["cells"])

    def test_check_passes_against_own_artifact(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(self.BENCH + ["--out", str(baseline)]) == 0
        capsys.readouterr()
        out = tmp_path / "current.json"
        # wide tolerance: single-repeat timings jitter on a loaded host,
        # and this test pins the pairing/report semantics, not the speed
        code = main(
            self.BENCH
            + ["--out", str(out), "--check", str(baseline), "--json",
               "--tolerance", "0.95"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["check"]["ok"] is True
        assert payload["check"]["compared"] == 2

    def test_check_flags_inflated_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(self.BENCH + ["--out", str(baseline)]) == 0
        capsys.readouterr()
        inflated = json.loads(baseline.read_text())
        for cell in inflated["cells"]:
            cell["events_per_sec"] *= 100.0
        hot = tmp_path / "inflated.json"
        hot.write_text(json.dumps(inflated))
        out = tmp_path / "current.json"
        code = main(
            self.BENCH + ["--out", str(out), "--check", str(hot), "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["check"]["ok"] is False
        assert len(payload["check"]["regressions"]) == 2

    def test_missing_baseline_is_typed_error(self, capsys, tmp_path):
        out = tmp_path / "current.json"
        code = main(
            self.BENCH
            + ["--out", str(out), "--check", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--engines", "warpspeed"])

    def test_bad_repeats_is_typed_error(self, capsys):
        assert main(self.BENCH[:1] + ["--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err
