"""Property-based tests of the delta-accumulative algebra (Section II-B).

The Reordering property requires the reduce operator to be commutative
and associative with an identity, and the propagate function to be
distributive over reduce for additive algorithms.  These are exactly the
preconditions that make event coalescing safe, so they are verified for
every registered algorithm.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import algorithms
from repro.graph import rmat_graph

_GRAPH = rmat_graph(32, 120, seed=2)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
non_negative = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
extended = st.one_of(finite, st.just(math.inf))
#: distances/levels live in [0, inf]
distance = st.one_of(non_negative, st.just(math.inf))


def specs_with_domains():
    """Each spec paired with a strategy over its *value domain* — the
    reduce identity is only an identity relative to the values the
    algorithm actually produces (e.g. CC's -1 versus labels >= 0)."""
    return [
        (algorithms.make_pagerank_delta(), finite),
        (algorithms.make_adsorption(_GRAPH), finite),
        (algorithms.make_sssp(), distance),
        (algorithms.make_bfs(), distance),
        (algorithms.make_bfs_reachability(), distance),
        (algorithms.make_connected_components(), non_negative),
    ]


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_reduce_commutative(data):
    for spec, domain in specs_with_domains():
        a = data.draw(domain)
        b = data.draw(domain)
        assert spec.reduce(a, b) == spec.reduce(b, a), spec.name


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_reduce_associative(data):
    for spec, domain in specs_with_domains():
        a, b, c = (data.draw(domain) for _ in range(3))
        left = spec.reduce(spec.reduce(a, b), c)
        right = spec.reduce(a, spec.reduce(b, c))
        if spec.additive:
            assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9), (
                spec.name
            )
        else:
            assert left == right, spec.name


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_identity_element(data):
    for spec, domain in specs_with_domains():
        a = data.draw(domain)
        assert spec.reduce(a, spec.identity) == a, spec.name
        assert spec.reduce(spec.identity, a) == a, spec.name


@given(x=finite, y=finite, degree=st.integers(min_value=1, max_value=50))
@settings(max_examples=80, deadline=None)
def test_propagate_distributive_for_additive_algorithms(x, y, degree):
    # g(x + y) == g(x) + g(y): the Reordering property for PR/Adsorption
    for spec in (
        algorithms.make_pagerank_delta(),
        algorithms.make_adsorption(_GRAPH),
    ):
        combined = spec.propagate(x + y, 0, 1, 0.7, degree)
        split = spec.propagate(x, 0, 1, 0.7, degree) + spec.propagate(
            y, 0, 1, 0.7, degree
        )
        assert math.isclose(combined, split, rel_tol=1e-9, abs_tol=1e-9), (
            spec.name
        )


@given(x=extended, y=extended, degree=st.integers(min_value=1, max_value=50))
@settings(max_examples=80, deadline=None)
def test_propagate_distributive_for_monotonic_algorithms(x, y, degree):
    # g(min(x, y)) == min(g(x), g(y)) for monotone non-decreasing g
    for spec in (algorithms.make_sssp(), algorithms.make_bfs()):
        combined = spec.propagate(spec.reduce(x, y), 0, 1, 2.0, degree)
        split = spec.reduce(
            spec.propagate(x, 0, 1, 2.0, degree),
            spec.propagate(y, 0, 1, 2.0, degree),
        )
        assert combined == split, spec.name


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_apply_identity_is_noop(data):
    # Simplification property: reducing the identity changes nothing
    for spec, domain in specs_with_domains():
        state = data.draw(domain)
        result = spec.apply(state, spec.identity)
        assert not result.changed, spec.name
        assert result.state == state, spec.name


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_apply_reports_consistent_change(data):
    for spec, domain in specs_with_domains():
        state = data.draw(domain)
        delta = data.draw(domain)
        result = spec.apply(state, delta)
        if not result.changed:
            assert result.state == state
        elif spec.additive:
            assert math.isclose(
                result.state, state + delta, rel_tol=1e-9, abs_tol=1e-9
            )
            assert math.isclose(
                result.change,
                result.state - state,
                rel_tol=1e-9,
                abs_tol=1e-9,
            )
        else:
            # monotonic: new state is the delta that won, and it is
            # re-propagated as the change
            assert result.state == spec.reduce(state, delta)
            assert result.change == result.state
