"""Unit tests for the Table II algorithm specs."""

import math

import numpy as np
import pytest

from repro import algorithms
from repro.graph import chain_graph, rmat_graph


@pytest.fixture
def graph():
    return rmat_graph(64, 300, seed=9)


class TestRegistry:
    def test_all_table_ii_rows_registered(self):
        names = algorithms.algorithm_names()
        for expected in ("pagerank", "adsorption", "sssp", "bfs", "cc"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            algorithms.get_algorithm("pagerank2")

    def test_get_by_name(self, graph):
        spec = algorithms.get_algorithm("pagerank", graph)
        assert spec.name == "pagerank"


class TestPageRank:
    def test_table_ii_row(self, graph):
        spec = algorithms.make_pagerank_delta(alpha=0.85)
        assert spec.identity == 0.0
        assert spec.additive
        assert not spec.uses_weights
        # propagate = alpha * delta / N(src)
        assert spec.propagate(1.0, 0, 1, 1.0, 4) == pytest.approx(0.2125)
        # reduce = +
        assert spec.reduce(1.0, 0.5) == 1.5
        # initial delta = 1 - alpha everywhere
        assert spec.initial_delta(3, graph) == pytest.approx(0.15)

    def test_threshold_gates_propagation(self):
        spec = algorithms.make_pagerank_delta(threshold=1e-3)
        assert spec.should_propagate(1e-2)
        assert spec.should_propagate(-1e-2)
        assert not spec.should_propagate(1e-4)

    def test_initial_events_cover_all_vertices(self, graph):
        spec = algorithms.make_pagerank_delta()
        events = spec.initial_events(graph)
        assert len(events) == graph.num_vertices

    def test_apply_additive_change(self):
        spec = algorithms.make_pagerank_delta()
        result = spec.apply(1.0, 0.25)
        assert result.changed
        assert result.state == 1.25
        assert result.change == pytest.approx(0.25)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            algorithms.make_pagerank_delta(alpha=1.5)
        with pytest.raises(ValueError):
            algorithms.make_pagerank_delta(threshold=-1)


class TestSSSP:
    def test_table_ii_row(self, graph):
        spec = algorithms.make_sssp(root=3)
        assert math.isinf(spec.identity)
        assert not spec.additive
        # propagate = E_ij + delta
        assert spec.propagate(2.0, 0, 1, 1.5, 4) == 3.5
        # reduce = min
        assert spec.reduce(3.0, 2.0) == 2.0
        assert spec.initial_delta(3, graph) == 0.0
        assert math.isinf(spec.initial_delta(0, graph))

    def test_initial_events_only_root(self, graph):
        spec = algorithms.make_sssp(root=5)
        assert algorithms.make_sssp(root=5).initial_events(graph) == {5: 0.0}

    def test_apply_monotonic(self):
        spec = algorithms.make_sssp()
        improve = spec.apply(5.0, 3.0)
        assert improve.changed and improve.state == 3.0
        assert improve.change == 3.0  # min/max algorithms re-propagate state
        worse = spec.apply(3.0, 5.0)
        assert not worse.changed

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            algorithms.make_sssp(root=-1)


class TestBFS:
    def test_level_variant(self, graph):
        spec = algorithms.make_bfs(root=0)
        assert spec.propagate(2.0, 0, 1, 9.0, 4) == 3.0  # ignores weight
        assert spec.reduce(4.0, 2.0) == 2.0

    def test_reachability_variant_matches_table_ii(self, graph):
        spec = algorithms.make_bfs_reachability(root=0)
        # propagate(delta) = 0, literally
        assert spec.propagate(7.0, 0, 1, 1.0, 3) == 0.0

    def test_initial_events(self, graph):
        assert algorithms.make_bfs(root=2).initial_events(graph) == {2: 0.0}


class TestCC:
    def test_table_ii_row(self, graph):
        spec = algorithms.make_connected_components()
        assert spec.identity == -1.0
        assert spec.propagate(5.0, 0, 1, 1.0, 2) == 5.0  # identity fn
        assert spec.reduce(3.0, 7.0) == 7.0  # max
        assert spec.initial_delta(9, graph) == 9.0

    def test_every_vertex_injects_itself(self, graph):
        events = algorithms.make_connected_components().initial_events(graph)
        # vertex 0 injects delta 0.0; but 0.0 != identity (-1), so it is
        # present — all vertices bootstrap
        assert len(events) == graph.num_vertices
        assert events[0] == 0.0

    def test_symmetrize(self):
        g = chain_graph(3)
        sym = algorithms.symmetrize(g)
        assert (1, 0) in set(sym.edges())
        assert sym.num_edges == 2 * g.num_edges

    def test_symmetrize_preserves_weights(self):
        g = chain_graph(3).with_weights(np.array([1.0, 2.0]))
        sym = algorithms.symmetrize(g)
        assert sym.is_weighted
        assert sorted(sym.weights.tolist()) == [1.0, 1.0, 2.0, 2.0]


class TestAdsorption:
    def test_table_ii_row(self, graph):
        inj = np.ones(graph.num_vertices)
        spec = algorithms.make_adsorption(
            graph, continue_prob=0.8, injection_prob=0.2, injection=inj
        )
        assert spec.identity == 0.0
        assert spec.uses_weights
        # propagate = alpha_i * E_ij * delta
        assert spec.propagate(2.0, 0, 1, 0.5, 4) == pytest.approx(0.8)
        assert spec.initial_delta(3, graph) == pytest.approx(0.2)

    def test_needs_graph_or_injection(self):
        with pytest.raises(ValueError):
            algorithms.make_adsorption()

    def test_normalize_inbound_weights(self, graph):
        g = algorithms.normalize_inbound_weights(graph)
        in_sums = np.zeros(g.num_vertices)
        np.add.at(in_sums, g.adjacency, g.weights)
        nonzero = in_sums > 0
        assert np.allclose(in_sums[nonzero], 1.0)

    def test_injection_deterministic(self, graph):
        a = algorithms.injection_values(graph, seed=3)
        b = algorithms.injection_values(graph, seed=3)
        assert np.array_equal(a, b)

    def test_invalid_continue_prob(self):
        with pytest.raises(ValueError):
            algorithms.make_adsorption(injection=np.ones(4), continue_prob=1.0)


class TestInitialState:
    @pytest.mark.parametrize(
        "name,expected",
        [("pagerank", 0.0), ("cc", -1.0)],
    )
    def test_state_is_identity(self, graph, name, expected):
        spec = algorithms.get_algorithm(name, graph)
        state = spec.initial_state(graph)
        assert np.all(state == expected)

    def test_sssp_state_is_inf(self, graph):
        spec = algorithms.get_algorithm("sssp", graph)
        assert np.all(np.isinf(spec.initial_state(graph)))
