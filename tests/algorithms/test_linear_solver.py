"""Tests for the delta-accumulative linear-equation solver."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import FunctionalGraphPulse, GraphPulseAccelerator


def make_system(n=12, seed=5):
    """A random strictly diagonally dominant system."""
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    np.fill_diagonal(matrix, 0.0)
    dominance = np.sum(np.abs(matrix), axis=1) + rng.uniform(0.5, 1.5, n)
    for i in range(n):
        matrix[i, i] = dominance[i]
    rhs = rng.uniform(-5.0, 5.0, size=n)
    return matrix, rhs


class TestSystemConversion:
    def test_edge_coefficients(self):
        matrix = np.array([[2.0, -1.0], [-0.5, 4.0]])
        rhs = np.array([2.0, 8.0])
        graph, constants = algorithms.system_from_matrix(matrix, rhs)
        assert np.allclose(constants, [1.0, 2.0])
        # edge 1 -> 0 carries -A_01/A_00 = 0.5
        coefficients = {
            (src, dst): w
            for (src, dst), w in zip(graph.edges(), graph.weights)
        }
        assert coefficients[(1, 0)] == pytest.approx(0.5)
        assert coefficients[(0, 1)] == pytest.approx(0.125)

    def test_zero_entries_create_no_edges(self):
        matrix = np.array([[2.0, 0.0], [0.0, 3.0]])
        graph, __ = algorithms.system_from_matrix(matrix, np.ones(2))
        assert graph.num_edges == 0

    def test_rejects_non_dominant(self):
        matrix = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="dominant"):
            algorithms.system_from_matrix(matrix, np.ones(2))

    def test_rejects_zero_diagonal(self):
        matrix = np.array([[0.0, 0.1], [0.1, 1.0]])
        with pytest.raises(ValueError, match="diagonal"):
            algorithms.system_from_matrix(matrix, np.ones(2))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            algorithms.system_from_matrix(np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            algorithms.system_from_matrix(np.eye(2) * 2, np.ones(3))


class TestSolver:
    def test_solves_random_system(self):
        matrix, rhs = make_system()
        graph, constants = algorithms.system_from_matrix(matrix, rhs)
        spec = algorithms.make_linear_solver(graph, constants=constants)
        result = FunctionalGraphPulse(graph, spec).run()
        exact = np.linalg.solve(matrix, rhs)
        assert np.allclose(result.values, exact, atol=1e-6)

    def test_matches_jacobi_reference(self):
        matrix, rhs = make_system(seed=9)
        graph, constants = algorithms.system_from_matrix(matrix, rhs)
        spec = algorithms.make_linear_solver(graph, constants=constants)
        result = FunctionalGraphPulse(graph, spec).run()
        assert np.allclose(
            result.values,
            algorithms.jacobi_reference(matrix, rhs),
            atol=1e-6,
        )

    def test_runs_on_cycle_accelerator(self):
        matrix, rhs = make_system(n=8, seed=11)
        graph, constants = algorithms.system_from_matrix(matrix, rhs)
        spec = algorithms.make_linear_solver(graph, constants=constants)
        result = GraphPulseAccelerator(graph, spec).run()
        assert np.allclose(
            result.values, np.linalg.solve(matrix, rhs), atol=1e-6
        )
        assert result.total_cycles > 0

    def test_registered(self):
        assert "linear-solver" in algorithms.algorithm_names()

    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            algorithms.make_linear_solver()

    def test_requires_weights(self):
        from repro.graph import chain_graph

        with pytest.raises(ValueError, match="weights"):
            algorithms.make_linear_solver(
                chain_graph(3), constants=np.ones(3)
            )

    def test_constants_length_checked(self):
        matrix, rhs = make_system(n=4)
        graph, __ = algorithms.system_from_matrix(matrix, rhs)
        with pytest.raises(ValueError, match="length"):
            algorithms.make_linear_solver(graph, constants=np.ones(3))

    def test_diagonal_system_is_trivial(self):
        matrix = np.diag([2.0, 4.0, 5.0])
        rhs = np.array([2.0, 8.0, 10.0])
        graph, constants = algorithms.system_from_matrix(matrix, rhs)
        spec = algorithms.make_linear_solver(graph, constants=constants)
        result = FunctionalGraphPulse(graph, spec).run()
        assert np.allclose(result.values, [1.0, 2.0, 2.0])
        assert result.num_rounds == 1
