"""Unit tests for the golden reference implementations."""

import math

import numpy as np
import pytest

from repro import algorithms
from repro.graph import (
    CSRGraph,
    chain_graph,
    cycle_graph,
    grid_graph,
    star_graph,
)


class TestPageRankReference:
    def test_fixed_point_equation(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        r = algorithms.pagerank_reference(g, alpha=0.85)
        # each vertex: r = 0.15 + 0.85 * r_pred / 1 -> all equal 1.0
        assert np.allclose(r, 1.0)

    def test_sink_gets_base_rank(self):
        g = star_graph(3, outward=False)  # leaves -> hub
        r = algorithms.pagerank_reference(g, alpha=0.85)
        assert r[1] == pytest.approx(0.15)
        assert r[0] == pytest.approx(0.15 + 0.85 * 3 * 0.15)

    def test_dangling_vertices_ok(self):
        g = chain_graph(3)  # vertex 2 dangles
        r = algorithms.pagerank_reference(g)
        assert np.all(np.isfinite(r))
        assert r[0] == pytest.approx(0.15)


class TestSSSPReference:
    def test_chain_distances(self):
        g = chain_graph(5).with_weights(np.array([1.0, 2.0, 3.0, 4.0]))
        d = algorithms.sssp_reference(g, 0)
        assert list(d) == [0.0, 1.0, 3.0, 6.0, 10.0]

    def test_unreachable_is_inf(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        d = algorithms.sssp_reference(g, 0)
        assert math.isinf(d[2])

    def test_shorter_path_wins(self):
        # 0->1->2 cost 2, 0->2 cost 5
        g = CSRGraph.from_edges(
            3, [(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 5.0]
        )
        assert algorithms.sssp_reference(g, 0)[2] == 2.0


class TestBFSReference:
    def test_grid_levels(self):
        g = grid_graph(3, 3)
        levels = algorithms.bfs_reference(g, 0)
        assert levels[0] == 0
        assert levels[4] == 2  # center of 3x3
        assert levels[8] == 4  # far corner

    def test_direction_respected(self):
        g = chain_graph(3)
        assert math.isinf(algorithms.bfs_reference(g, 2)[0])


class TestCCReference:
    def test_two_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (3, 4)])
        labels = algorithms.connected_components_reference(g)
        assert labels[0] == labels[1] == 1
        assert labels[2] == 2
        assert labels[3] == labels[4] == 4

    def test_weak_connectivity(self):
        # direction must not matter for CC
        g = CSRGraph.from_edges(3, [(1, 0), (1, 2)])
        labels = algorithms.connected_components_reference(g)
        assert len(set(labels.tolist())) == 1

    def test_label_is_component_max(self):
        g = cycle_graph(6)
        labels = algorithms.connected_components_reference(g)
        assert np.all(labels == 5)


class TestAdsorptionReference:
    def test_isolated_vertex_keeps_injection(self):
        g = CSRGraph.from_edges(2, []).with_unit_weights()
        inj = np.array([1.0, 0.5])
        v = algorithms.adsorption_reference(
            g, inj, continue_prob=0.8, injection_prob=0.2
        )
        assert v[0] == pytest.approx(0.2)
        assert v[1] == pytest.approx(0.1)

    def test_chain_propagation(self):
        g = chain_graph(2).with_unit_weights()
        inj = np.array([1.0, 0.0])
        v = algorithms.adsorption_reference(
            g, inj, continue_prob=0.5, injection_prob=1.0
        )
        assert v[0] == pytest.approx(1.0)
        assert v[1] == pytest.approx(0.5)


class TestDispatch:
    def test_reference_for_names(self):
        g = chain_graph(4)
        for name in ("pagerank", "sssp", "bfs", "cc"):
            values = algorithms.reference_for(name, g.with_unit_weights())
            assert len(values) == 4

    def test_reachability_masking(self):
        g = chain_graph(3)
        v = algorithms.reference_for("bfs-reachability", g, root=1)
        assert math.isinf(v[0])
        assert v[1] == 0.0
        assert v[2] == 0.0

    def test_adsorption_requires_injection(self):
        with pytest.raises(ValueError):
            algorithms.reference_for("adsorption", chain_graph(3))

    def test_unknown_reference(self):
        with pytest.raises(ValueError):
            algorithms.reference_for("mystery", chain_graph(3))
