"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRGraph,
    contiguous_partition,
    greedy_edge_cut_partition,
)


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_edges,
        )
    )
    return n, edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_preserves_multiset_of_edges(params):
    n, edges = params
    g = CSRGraph.from_edges(n, edges)
    assert sorted(g.edges()) == sorted(edges)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_offsets_invariants(params):
    n, edges = params
    g = CSRGraph.from_edges(n, edges)
    assert g.offsets[0] == 0
    assert g.offsets[-1] == len(edges)
    assert np.all(np.diff(g.offsets) >= 0)
    assert int(g.out_degrees().sum()) == len(edges)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_degree_sum_duality(params):
    n, edges = params
    g = CSRGraph.from_edges(n, edges)
    assert int(g.in_degrees().sum()) == int(g.out_degrees().sum())


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_double_reverse_is_identity(params):
    n, edges = params
    g = CSRGraph.from_edges(n, edges)
    back = g.reverse().reverse()
    assert np.array_equal(back.offsets, g.offsets)
    assert np.array_equal(back.adjacency, g.adjacency)


@given(edge_lists(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_contiguous_partition_conserves_edges(params, num_slices):
    n, edges = params
    g = CSRGraph.from_edges(n, edges)
    num_slices = min(num_slices, n)
    p = contiguous_partition(g, num_slices)
    internal = sum(s.num_internal_edges for s in p.slices)
    assert internal + p.cut_edges == g.num_edges
    sizes = sum(s.num_vertices for s in p.slices)
    assert sizes == n


@given(edge_lists(), st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_greedy_partition_covers_all_vertices(params, num_slices):
    n, edges = params
    g = CSRGraph.from_edges(n, edges)
    num_slices = min(num_slices, n)
    p = greedy_edge_cut_partition(g, num_slices)
    owned = np.zeros(n, dtype=int)
    for s in p.slices:
        owned[s.vertices] += 1
    assert np.all(owned == 1)
    # locate() agrees with membership
    for v in range(n):
        s, local = p.locate(v)
        assert p.slices[s].vertices[local] == v
