"""Unit tests for CSR graph storage."""

import numpy as np
import pytest

from repro.graph import CSRGraph


@pytest.fixture
def diamond():
    # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
    return CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_from_edges_counts(self, diamond):
        assert diamond.num_vertices == 4
        assert diamond.num_edges == 4

    def test_from_edges_sorted_adjacency(self):
        g = CSRGraph.from_edges(3, [(0, 2), (0, 1), (2, 0)])
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(2)) == [0]

    def test_from_edges_input_order_irrelevant(self):
        edges = [(0, 2), (1, 0), (0, 1)]
        a = CSRGraph.from_edges(3, edges)
        b = CSRGraph.from_edges(3, list(reversed(edges)))
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, [])
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.out_degree(0) == 0

    def test_weights_follow_edge_sort(self):
        g = CSRGraph.from_edges(
            3, [(0, 2), (0, 1)], weights=[2.5, 1.5]
        )
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.edge_weights(0)) == [1.5, 2.5]

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 2)])
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1, 2)])

    def test_weights_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[1.0, 2.0])

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(
                offsets=np.array([1, 2]), adjacency=np.array([0])
            )
        with pytest.raises(ValueError):
            CSRGraph(
                offsets=np.array([0, 2, 1]),
                adjacency=np.array([0, 1]),
            )
        with pytest.raises(ValueError):
            CSRGraph(
                offsets=np.array([0, 3]), adjacency=np.array([0])
            )


class TestQueries:
    def test_out_degrees(self, diamond):
        assert list(diamond.out_degrees()) == [2, 1, 1, 0]
        assert diamond.out_degree(0) == 2
        assert diamond.out_degree(3) == 0

    def test_in_degrees(self, diamond):
        assert list(diamond.in_degrees()) == [0, 1, 1, 2]

    def test_edges_iteration(self, diamond):
        assert sorted(diamond.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_edge_sources_align_with_adjacency(self, diamond):
        sources = diamond.edge_sources()
        assert len(sources) == diamond.num_edges
        for i, (src, dst) in enumerate(diamond.edges()):
            assert sources[i] == src
            assert diamond.adjacency[i] == dst

    def test_unweighted_edge_weights_are_ones(self, diamond):
        assert list(diamond.edge_weights(0)) == [1.0, 1.0]

    def test_is_weighted(self, diamond):
        assert not diamond.is_weighted
        assert diamond.with_unit_weights().is_weighted


class TestDerivedGraphs:
    def test_reverse_swaps_direction(self, diamond):
        rev = diamond.reverse()
        assert sorted(rev.edges()) == [(1, 0), (2, 0), (3, 1), (3, 2)]

    def test_reverse_is_cached(self, diamond):
        assert diamond.reverse() is diamond.reverse()

    def test_reverse_degree_duality(self, diamond):
        rev = diamond.reverse()
        assert np.array_equal(rev.out_degrees(), diamond.in_degrees())
        assert np.array_equal(rev.in_degrees(), diamond.out_degrees())

    def test_with_weights(self, diamond):
        w = np.arange(4, dtype=float)
        g = diamond.with_weights(w)
        assert g.is_weighted
        assert np.array_equal(g.weights, w)
        # original untouched
        assert diamond.weights is None

    def test_with_weights_length_check(self, diamond):
        with pytest.raises(ValueError):
            diamond.with_weights(np.ones(3))

    def test_with_unit_weights(self, diamond):
        g = diamond.with_unit_weights()
        assert np.all(g.weights == 1.0)


class TestMemoryLayout:
    def test_vertex_addresses_packed(self, diamond):
        assert diamond.vertex_address(0) == 0
        assert diamond.vertex_address(1) == diamond.vertex_bytes

    def test_edge_region_follows_vertices(self, diamond):
        assert (
            diamond.edge_region_base
            == diamond.num_vertices * diamond.vertex_bytes
        )
        assert diamond.edge_address(0) == diamond.edge_region_base
        assert (
            diamond.edge_address(2)
            == diamond.edge_region_base + 2 * diamond.edge_bytes
        )

    def test_footprint(self, diamond):
        assert diamond.footprint_bytes == 4 * 8 + 4 * 4
