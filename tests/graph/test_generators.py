"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    binary_tree_graph,
    chain_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    random_weights,
    rmat_graph,
    small_world_graph,
    star_graph,
)


class TestRmat:
    def test_size(self):
        g = rmat_graph(256, 2048, seed=1)
        assert g.num_vertices == 256
        assert 0 < g.num_edges <= 2048

    def test_deterministic(self):
        a = rmat_graph(128, 512, seed=7)
        b = rmat_graph(128, 512, seed=7)
        assert np.array_equal(a.adjacency, b.adjacency)
        assert np.array_equal(a.offsets, b.offsets)

    def test_seed_changes_graph(self):
        a = rmat_graph(128, 512, seed=7)
        b = rmat_graph(128, 512, seed=8)
        assert not np.array_equal(a.adjacency, b.adjacency)

    def test_no_self_loops(self):
        g = rmat_graph(128, 1024, seed=3)
        for src, dst in g.edges():
            assert src != dst

    def test_no_duplicate_edges(self):
        g = rmat_graph(128, 1024, seed=3)
        assert len(set(g.edges())) == g.num_edges

    def test_power_law_skew(self):
        # R-MAT must concentrate edges: the top 10% of vertices by
        # degree should hold well over 10% of the edges
        g = rmat_graph(1024, 8192, seed=5)
        degrees = np.sort(g.out_degrees())[::-1]
        top = degrees[: len(degrees) // 10].sum()
        assert top > 0.3 * g.num_edges

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rmat_graph(1, 10)
        with pytest.raises(ValueError):
            rmat_graph(16, 10, a=0.5, b=0.3, c=0.3)


class TestErdosRenyi:
    def test_size_and_determinism(self):
        a = erdos_renyi_graph(100, 500, seed=1)
        b = erdos_renyi_graph(100, 500, seed=1)
        assert a.num_vertices == 100
        assert 0 < a.num_edges <= 500
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_roughly_uniform_degrees(self):
        g = erdos_renyi_graph(500, 5000, seed=2)
        degrees = g.out_degrees()
        # uniform graphs have no heavy tail
        assert degrees.max() < 10 * max(degrees.mean(), 1)


class TestSmallWorld:
    def test_degree_bound(self):
        g = small_world_graph(100, neighbors=4, seed=1)
        assert np.all(g.out_degrees() <= 4)

    def test_zero_rewire_is_ring_lattice(self):
        g = small_world_graph(10, neighbors=2, rewire_prob=0.0)
        assert (0, 1) in set(g.edges())
        assert (0, 2) in set(g.edges())
        assert g.num_edges == 20


class TestRegularTopologies:
    def test_chain(self):
        g = chain_graph(5)
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_cycle(self):
        g = cycle_graph(4)
        assert (3, 0) in set(g.edges())
        assert g.num_edges == 4

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.num_vertices == 6
        # interior connectivity is bidirectional
        assert (0, 1) in set(g.edges())
        assert (1, 0) in set(g.edges())
        assert (0, 3) in set(g.edges())

    def test_grid_edge_count(self):
        rows, cols = 4, 5
        g = grid_graph(rows, cols)
        expected = 2 * (rows * (cols - 1) + cols * (rows - 1))
        assert g.num_edges == expected

    def test_star_outward(self):
        g = star_graph(4, outward=True)
        assert g.out_degree(0) == 4
        assert g.in_degrees()[0] == 0

    def test_star_inward(self):
        g = star_graph(4, outward=False)
        assert g.out_degree(0) == 0
        assert g.in_degrees()[0] == 4

    def test_complete(self):
        g = complete_graph(4)
        assert g.num_edges == 12
        assert np.all(g.out_degrees() == 3)

    def test_binary_tree_down(self):
        g = binary_tree_graph(3)
        assert g.num_vertices == 7
        assert g.out_degree(0) == 2
        assert g.out_degree(6) == 0

    def test_binary_tree_up(self):
        g = binary_tree_graph(3, downward=False)
        assert g.out_degree(0) == 0
        assert g.out_degree(6) == 1


class TestRandomWeights:
    def test_range_and_determinism(self):
        g = chain_graph(10)
        w1 = random_weights(g, low=2.0, high=5.0, seed=3)
        w2 = random_weights(g, low=2.0, high=5.0, seed=3)
        assert np.all(w1.weights >= 2.0)
        assert np.all(w1.weights < 5.0)
        assert np.array_equal(w1.weights, w2.weights)

    def test_original_untouched(self):
        g = chain_graph(10)
        random_weights(g)
        assert g.weights is None
