"""Unit tests for graph persistence."""

import numpy as np
import pytest

from repro.graph import (
    load_csr,
    load_edge_list,
    rmat_graph,
    save_csr,
    save_edge_list,
)
from repro.graph.io import edge_list_round_trip


@pytest.fixture
def graph():
    return rmat_graph(64, 300, seed=4)


class TestEdgeList:
    def test_round_trip(self, graph, tmp_path):
        reloaded, same = edge_list_round_trip(graph, tmp_path / "g.txt")
        assert same
        assert reloaded.num_edges == graph.num_edges

    def test_weighted_round_trip(self, tmp_path):
        g = rmat_graph(32, 100, seed=1).with_unit_weights()
        path = tmp_path / "w.txt"
        save_edge_list(g, path)
        reloaded = load_edge_list(path, weighted=True)
        assert reloaded.is_weighted
        assert np.all(reloaded.weights == 1.0)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n0 1\n# mid\n1 2\n")
        g = load_edge_list(path)
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_num_vertices_inferred(self, tmp_path):
        path = tmp_path / "i.txt"
        path.write_text("0 9\n")
        assert load_edge_list(path).num_vertices == 10

    def test_explicit_num_vertices(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path, num_vertices=50).num_vertices == 50

    def test_missing_weight_defaults_to_one(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("0 1 2.5\n1 0\n")
        g = load_edge_list(path, weighted=True)
        weights = {edge: w for edge, w in zip(g.edges(), g.weights)}
        assert weights[(0, 1)] == 2.5
        assert weights[(1, 0)] == 1.0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            load_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path).name == "mygraph"


class TestCSRBundle:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_csr(graph, path)
        reloaded = load_csr(path)
        assert np.array_equal(reloaded.offsets, graph.offsets)
        assert np.array_equal(reloaded.adjacency, graph.adjacency)
        assert reloaded.name == graph.name
        assert reloaded.weights is None

    def test_weighted_round_trip(self, tmp_path):
        g = rmat_graph(32, 100, seed=2).with_unit_weights()
        path = tmp_path / "w.npz"
        save_csr(g, path)
        reloaded = load_csr(path)
        assert np.array_equal(reloaded.weights, g.weights)
