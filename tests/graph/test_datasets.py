"""Unit tests for the Table IV dataset proxies."""

import numpy as np
import pytest

from repro.graph import DATASETS, dataset_names, load_dataset


class TestRoster:
    def test_paper_order(self):
        assert dataset_names() == ("WG", "FB", "WK", "LJ", "TW")

    def test_all_specs_present(self):
        assert set(DATASETS) == set(dataset_names())

    def test_original_sizes_recorded(self):
        lj = DATASETS["LJ"]
        assert lj.original_vertices == 4_840_000
        assert lj.original_edges == 68_990_000

    def test_density_ordering_preserved(self):
        # TW is the densest/most skewed workload, WG the sparsest big one
        def density(name):
            s = DATASETS[name]
            return s.num_edges / s.num_vertices

        assert density("TW") > density("WG")
        assert density("LJ") > density("WG")


class TestLoading:
    def test_load_default_scale(self):
        g = load_dataset("WG")
        spec = DATASETS["WG"]
        assert g.num_vertices == spec.num_vertices
        assert 0 < g.num_edges <= spec.num_edges
        assert g.name == "WG"

    def test_scale_shrinks(self):
        g = load_dataset("LJ", scale=0.1)
        assert g.num_vertices == int(DATASETS["LJ"].num_vertices * 0.1)
        assert "@0.1" in g.name

    def test_scale_floor(self):
        g = load_dataset("WG", scale=1e-9)
        assert g.num_vertices >= 64

    def test_weighted(self):
        g = load_dataset("FB", scale=0.05, weighted=True)
        assert g.is_weighted
        assert np.all(g.weights > 0)

    def test_deterministic(self):
        a = load_dataset("WK", scale=0.1)
        b = load_dataset("WK", scale=0.1)
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_seed_offset_changes_instance(self):
        a = load_dataset("WK", scale=0.1)
        b = load_dataset("WK", scale=0.1, seed_offset=1)
        assert not np.array_equal(a.adjacency, b.adjacency)

    def test_case_insensitive(self):
        assert load_dataset("lj", scale=0.05).num_vertices > 0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("NOPE")

    def test_power_law_shape(self):
        # the proxies must preserve degree skew (what coalescing exploits)
        g = load_dataset("LJ", scale=0.25)
        degrees = np.sort(g.out_degrees())[::-1]
        top = degrees[: max(len(degrees) // 10, 1)].sum()
        assert top > 0.3 * g.num_edges
