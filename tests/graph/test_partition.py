"""Unit tests for graph slicing/partitioning (Section IV-F substrate)."""

import numpy as np
import pytest

from repro.graph import (
    chain_graph,
    contiguous_partition,
    greedy_edge_cut_partition,
    rmat_graph,
)


@pytest.fixture
def graph():
    return rmat_graph(200, 1200, seed=11)


def check_partition_invariants(partition):
    graph = partition.graph
    # every vertex owned by exactly one slice
    seen = np.zeros(graph.num_vertices, dtype=int)
    for s in partition.slices:
        seen[s.vertices] += 1
    assert np.all(seen == 1)
    # local ids are a bijection within each slice
    for s in partition.slices:
        locals_ = partition.local_id_of_vertex[s.vertices]
        assert sorted(locals_) == list(range(len(s.vertices)))
    # edge conservation: internal + boundary == total
    total = sum(
        s.num_internal_edges + s.num_boundary_edges for s in partition.slices
    )
    assert total == graph.num_edges
    # boundary targets really are external
    for s in partition.slices:
        for dst in s.boundary_targets:
            assert partition.slice_of_vertex[dst] != s.index


class TestContiguous:
    @pytest.mark.parametrize("num_slices", [1, 2, 3, 7])
    def test_invariants(self, graph, num_slices):
        check_partition_invariants(contiguous_partition(graph, num_slices))

    def test_single_slice_has_no_cut(self, graph):
        p = contiguous_partition(graph, 1)
        assert p.cut_edges == 0
        assert p.cut_fraction() == 0.0

    def test_slices_are_contiguous_ranges(self, graph):
        p = contiguous_partition(graph, 4)
        for s in p.slices:
            v = s.vertices
            assert np.array_equal(v, np.arange(v[0], v[-1] + 1))

    def test_balance(self, graph):
        p = contiguous_partition(graph, 4)
        sizes = [s.num_vertices for s in p.slices]
        assert max(sizes) - min(sizes) <= 1

    def test_locate(self, graph):
        p = contiguous_partition(graph, 3)
        for v in [0, 57, 199]:
            s, local = p.locate(v)
            assert p.slices[s].vertices[local] == v

    def test_chain_cut_is_minimal(self):
        p = contiguous_partition(chain_graph(100), 4)
        assert p.cut_edges == 3  # one edge per boundary

    def test_errors(self, graph):
        with pytest.raises(ValueError):
            contiguous_partition(graph, 0)
        with pytest.raises(ValueError):
            contiguous_partition(graph, graph.num_vertices + 1)


class TestGreedy:
    @pytest.mark.parametrize("num_slices", [1, 2, 4])
    def test_invariants(self, graph, num_slices):
        check_partition_invariants(
            greedy_edge_cut_partition(graph, num_slices)
        )

    def test_capacity_respected(self, graph):
        p = greedy_edge_cut_partition(graph, 4, balance_slack=0.05)
        cap = int(np.ceil(graph.num_vertices / 4) * 1.05)
        for s in p.slices:
            assert s.num_vertices <= cap

    def test_beats_random_on_clustered_graph(self):
        # two dense communities connected by one edge: the greedy
        # partitioner should cut almost nothing
        edges = []
        for u in range(20):
            for v in range(20):
                if u != v:
                    edges.append((u, v))
                    edges.append((u + 20, v + 20))
        edges.append((0, 20))
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(40, edges)
        p = greedy_edge_cut_partition(g, 2, balance_slack=0.1)
        assert p.cut_fraction() < 0.1

    def test_errors(self, graph):
        with pytest.raises(ValueError):
            greedy_edge_cut_partition(graph, 0)


class TestSliceSubgraphs:
    def test_internal_edges_relabelled(self):
        p = contiguous_partition(chain_graph(10), 2)
        first = p.slices[0]
        # slice 0 holds vertices 0..4 with the chain intact locally
        assert sorted(first.subgraph.edges()) == [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
        ]

    def test_boundary_edges_carry_weights(self):
        g = chain_graph(4).with_weights(np.array([1.0, 2.0, 3.0]))
        p = contiguous_partition(g, 2)
        first = p.slices[0]
        assert first.num_boundary_edges == 1
        assert first.boundary_weights[0] == 2.0
        assert first.boundary_targets[0] == 2
