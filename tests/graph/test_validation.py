"""Input validation: typed GraphValidationError with location context."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph import CSRGraph, load_csr, load_edge_list, save_csr


def write(tmp_path, text, name="bad.txt"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestEdgeListValidation:
    def test_non_integer_endpoint_names_the_line(self, tmp_path):
        path = write(tmp_path, "0 1\n0 two\n")
        with pytest.raises(GraphValidationError, match="integer endpoints") as info:
            load_edge_list(path)
        assert info.value.context["line"] == 2
        assert str(path) in str(info.value)

    def test_negative_endpoint_rejected(self, tmp_path):
        path = write(tmp_path, "0 1\n-3 1\n")
        with pytest.raises(GraphValidationError, match="negative endpoint") as info:
            load_edge_list(path)
        assert info.value.context["line"] == 2

    def test_out_of_range_endpoint_rejected(self, tmp_path):
        path = write(tmp_path, "0 1\n0 9\n")
        with pytest.raises(GraphValidationError, match="out of range"):
            load_edge_list(path, num_vertices=4)

    def test_bad_weight_rejected(self, tmp_path):
        path = write(tmp_path, "0 1 heavy\n")
        with pytest.raises(GraphValidationError, match="numeric weight"):
            load_edge_list(path, weighted=True)

    def test_nan_weight_rejected(self, tmp_path):
        path = write(tmp_path, "0 1 nan\n")
        with pytest.raises(GraphValidationError, match="NaN"):
            load_edge_list(path, weighted=True)

    def test_negative_weight_rejected_by_default(self, tmp_path):
        path = write(tmp_path, "0 1 -0.5\n")
        with pytest.raises(GraphValidationError, match="negative weight"):
            load_edge_list(path, weighted=True)
        graph = load_edge_list(path, weighted=True, allow_negative_weights=True)
        assert graph.weights[0] == -0.5

    def test_error_is_a_value_error(self, tmp_path):
        # callers written against the old generic errors keep working
        path = write(tmp_path, "0\n")
        with pytest.raises(ValueError):
            load_edge_list(path)


class TestCSRBundleValidation:
    def test_truncated_bundle_names_the_file(self, tmp_path):
        graph = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        path = tmp_path / "g.npz"
        save_csr(graph, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(GraphValidationError, match="corrupt") as info:
            load_csr(path)
        assert info.value.context["path"] == str(path)

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez_compressed(path, offsets=np.array([0, 1, 2]))
        with pytest.raises(GraphValidationError, match="missing array"):
            load_csr(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csr(tmp_path / "absent.npz")


class TestInMemoryValidation:
    def test_out_of_range_edge_names_the_index(self):
        with pytest.raises(GraphValidationError, match="edge index 1") as info:
            CSRGraph.from_edges(3, [(0, 1), (0, 7)])
        assert info.value.context["index"] == 1

    def test_nan_weights_rejected(self):
        with pytest.raises(GraphValidationError, match="NaN"):
            CSRGraph.from_edges(
                2, [(0, 1)], weights=[float("nan")]
            )

    def test_inconsistent_offsets_rejected(self):
        with pytest.raises(GraphValidationError, match="non-decreasing"):
            CSRGraph(offsets=np.array([0, 2, 1]), adjacency=np.array([0]))
