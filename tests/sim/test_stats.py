"""Unit tests for the stats registry."""

from repro.sim import StatSet, merge_stats


class TestStatSet:
    def test_add_and_get(self):
        s = StatSet("t")
        s.add("hits")
        s.add("hits", 2)
        assert s.get("hits") == 3
        assert s["hits"] == 3

    def test_missing_defaults_to_zero(self):
        assert StatSet().get("nothing") == 0.0

    def test_set_overwrites(self):
        s = StatSet()
        s.add("gauge", 5)
        s.set("gauge", 2)
        assert s.get("gauge") == 2

    def test_max_keeps_peak(self):
        s = StatSet()
        s.max("peak", 3)
        s.max("peak", 7)
        s.max("peak", 5)
        assert s.get("peak") == 7

    def test_contains(self):
        s = StatSet()
        s.add("x")
        assert "x" in s
        assert "y" not in s

    def test_ratio(self):
        s = StatSet()
        s.add("hits", 3)
        s.add("total", 4)
        assert s.ratio("hits", "total") == 0.75
        assert s.ratio("hits", "missing") == 0.0

    def test_snapshot_is_a_copy(self):
        s = StatSet()
        s.add("x")
        snap = s.snapshot()
        snap["x"] = 99
        assert s.get("x") == 1

    def test_clear(self):
        s = StatSet()
        s.add("x")
        s.max("peak", 5)
        s.clear()
        assert s.get("x") == 0.0
        assert not s.is_gauge("peak")

    def test_max_marks_gauge(self):
        s = StatSet()
        s.max("peak", 3)
        s.add("count", 1)
        assert s.is_gauge("peak")
        assert not s.is_gauge("count")

    def test_mark_gauge_explicitly(self):
        s = StatSet()
        s.add("level", 4)
        s.mark_gauge("level")
        assert s.is_gauge("level")


class TestMerge:
    def test_merge_sums_counters(self):
        a, b = StatSet("a"), StatSet("b")
        a.add("x", 1)
        a.add("y", 2)
        b.add("x", 3)
        merged = merge_stats([a, b])
        assert merged.get("x") == 4
        assert merged.get("y") == 2

    def test_merge_empty(self):
        assert merge_stats([]).snapshot() == {}

    def test_merge_takes_max_of_gauges(self):
        """Regression: peak-style gauges must merge with max, not sum.

        Summing ``peak_occupancy`` across two bins used to report a peak
        larger than any bin ever held.
        """
        a, b = StatSet("a"), StatSet("b")
        a.max("peak_occupancy", 10)
        a.max("peak_occupancy", 30)
        b.max("peak_occupancy", 20)
        merged = merge_stats([a, b])
        assert merged.get("peak_occupancy") == 30
        # the merged key stays a gauge, so re-merging is idempotent
        assert merged.is_gauge("peak_occupancy")
        again = merge_stats([merged, b])
        assert again.get("peak_occupancy") == 30

    def test_merge_mixes_gauges_and_counters(self):
        a, b = StatSet("a"), StatSet("b")
        a.add("events", 5)
        a.max("peak", 7)
        b.add("events", 5)
        b.max("peak", 4)
        merged = merge_stats([a, b])
        assert merged.get("events") == 10
        assert merged.get("peak") == 7
