"""Unit tests for the stats registry."""

from repro.sim import StatSet, merge_stats


class TestStatSet:
    def test_add_and_get(self):
        s = StatSet("t")
        s.add("hits")
        s.add("hits", 2)
        assert s.get("hits") == 3
        assert s["hits"] == 3

    def test_missing_defaults_to_zero(self):
        assert StatSet().get("nothing") == 0.0

    def test_set_overwrites(self):
        s = StatSet()
        s.add("gauge", 5)
        s.set("gauge", 2)
        assert s.get("gauge") == 2

    def test_max_keeps_peak(self):
        s = StatSet()
        s.max("peak", 3)
        s.max("peak", 7)
        s.max("peak", 5)
        assert s.get("peak") == 7

    def test_contains(self):
        s = StatSet()
        s.add("x")
        assert "x" in s
        assert "y" not in s

    def test_ratio(self):
        s = StatSet()
        s.add("hits", 3)
        s.add("total", 4)
        assert s.ratio("hits", "total") == 0.75
        assert s.ratio("hits", "missing") == 0.0

    def test_snapshot_is_a_copy(self):
        s = StatSet()
        s.add("x")
        snap = s.snapshot()
        snap["x"] = 99
        assert s.get("x") == 1

    def test_clear(self):
        s = StatSet()
        s.add("x")
        s.clear()
        assert s.get("x") == 0.0


class TestMerge:
    def test_merge_sums_counters(self):
        a, b = StatSet("a"), StatSet("b")
        a.add("x", 1)
        a.add("y", 2)
        b.add("x", 3)
        merged = merge_stats([a, b])
        assert merged.get("x") == 4
        assert merged.get("y") == 2

    def test_merge_empty(self):
        assert merge_stats([]).snapshot() == {}
