"""Unit tests for the simulation kernel primitives."""

import pytest

from repro.sim import BandwidthResource, PipelinedResource, Resource, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(5, lambda: order.append("b"))
        sim.at(2, lambda: order.append("a"))
        sim.at(9, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 9

    def test_same_cycle_fifo(self):
        sim = Simulator()
        order = []
        sim.at(3, lambda: order.append(1))
        sim.at(3, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_after_is_relative(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: sim.after(5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [15]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_run_respects_max_cycles(self):
        sim = Simulator()
        fired = []
        sim.at(5, lambda: fired.append(5))
        sim.at(100, lambda: fired.append(100))
        sim.run(max_cycles=50)
        assert fired == [5]
        assert sim.now == 50
        assert sim.pending == 1

    def test_event_counter(self):
        sim = Simulator()
        for c in range(4):
            sim.at(c, lambda: None)
        sim.run()
        assert sim.stats.get("events_executed") == 4

    def test_cascading_events(self):
        sim = Simulator()
        hits = []

        def chain(depth):
            hits.append(sim.now)
            if depth:
                sim.after(2, lambda: chain(depth - 1))

        sim.at(0, lambda: chain(3))
        sim.run()
        assert hits == [0, 2, 4, 6]


class TestResource:
    def test_idle_resource_starts_immediately(self):
        r = Resource("r")
        assert r.acquire(10, 5) == 10
        assert r.next_free == 15

    def test_busy_resource_queues(self):
        r = Resource("r")
        r.acquire(0, 10)
        assert r.acquire(3, 2) == 10
        assert r.stats.get("wait_cycles") == 7

    def test_zero_occupancy(self):
        r = Resource("r")
        assert r.acquire(4, 0) == 4
        assert r.next_free == 4

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            Resource("r").acquire(0, -1)

    def test_utilization(self):
        r = Resource("r")
        r.acquire(0, 25)
        assert r.utilization(100) == 0.25
        assert r.utilization(0) == 0.0

    def test_utilization_reports_true_ratio_over_one(self):
        # a too-short horizon must not be hidden by clamping
        r = Resource("r")
        r.acquire(0, 30)
        assert r.utilization(10) == 3.0

    def test_oversubscription_recorded(self):
        r = Resource("r")
        r.acquire(0, 30)
        r.utilization(10)
        assert r.stats.get("oversubscribed") == 3.0
        # the stat keeps the peak ratio and merges as a gauge
        r.utilization(20)
        assert r.stats.get("oversubscribed") == 3.0
        assert r.stats.is_gauge("oversubscribed")

    def test_no_oversubscription_stat_when_within_horizon(self):
        r = Resource("r")
        r.acquire(0, 25)
        r.utilization(100)
        assert "oversubscribed" not in r.stats

    def test_reset(self):
        r = Resource("r")
        r.acquire(0, 10)
        r.reset()
        assert r.next_free == 0
        assert r.stats.get("busy_cycles") == 0


class TestPipelinedResource:
    def test_back_to_back_issues(self):
        p = PipelinedResource("p", 1, 4)
        assert p.issue(0) == (0, 4)
        assert p.issue(0) == (1, 5)
        assert p.issue(0) == (2, 6)

    def test_initiation_interval(self):
        p = PipelinedResource("p", 3, 6)
        assert p.issue(0) == (0, 6)
        assert p.issue(1) == (3, 9)

    def test_idle_gap_resets_issue(self):
        p = PipelinedResource("p", 1, 4)
        p.issue(0)
        assert p.issue(50) == (50, 54)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PipelinedResource("p", 0, 4)
        with pytest.raises(ValueError):
            PipelinedResource("p", 4, 2)


class TestBandwidthResource:
    def test_transfer_duration(self):
        b = BandwidthResource("b", 16.0)
        start, done = b.transfer(0, 64)
        assert (start, done) == (0, 4)

    def test_transfers_serialize(self):
        b = BandwidthResource("b", 16.0)
        b.transfer(0, 64)
        start, done = b.transfer(0, 64)
        assert (start, done) == (4, 8)

    def test_fractional_rate_rounds(self):
        b = BandwidthResource("b", 17.0)
        __, done = b.transfer(0, 64)
        assert done == 4  # 64/17 = 3.76 -> 4

    def test_minimum_one_cycle(self):
        b = BandwidthResource("b", 1000.0)
        __, done = b.transfer(0, 8)
        assert done == 1

    def test_zero_bytes_is_free(self):
        b = BandwidthResource("b", 8.0)
        assert b.transfer(5, 0) == (5, 5)

    def test_byte_accounting(self):
        b = BandwidthResource("b", 8.0)
        b.transfer(0, 32)
        b.transfer(0, 32)
        assert b.stats.get("bytes") == 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            BandwidthResource("b", 0)
        with pytest.raises(ValueError):
            BandwidthResource("b", 8.0).transfer(0, -1)

    def test_utilization_true_ratio_and_oversubscription(self):
        b = BandwidthResource("b", 8.0)
        b.transfer(0, 64)  # 8 busy cycles
        assert b.utilization(16) == 0.5
        assert b.utilization(4) == 2.0
        assert b.stats.get("oversubscribed") == 2.0
        assert b.stats.is_gauge("oversubscribed")
