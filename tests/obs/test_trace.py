"""Unit tests for the tracing core (repro.obs.trace)."""

import pytest

from repro.obs import probe
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    assert obs_trace.ACTIVE is None
    yield
    obs_trace.uninstall()


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert obs_trace.ACTIVE is None
        assert not obs_trace.enabled()

    def test_probes_are_noops_when_disabled(self):
        # every probe returns immediately with no tracer installed
        probe.round_span("cycle", 0, 0.0, 10.0, events_processed=1)
        probe.event_process(0, 0.0, 5.0, vertex=1, vertex_mem=2.0, process=3.0)
        probe.queue_insert(1, 0, 0.0, False)
        probe.dram_txn(0.0, 10.0, kind="vertex", nbytes=64, write=False, lines=1)
        probe.cache_access("c", 0.0, hit=True, kind="edge")
        probe.counter("x", 0.0, value=1.0)
        assert obs_trace.ACTIVE is None

    def test_disabled_guard_is_one_branch(self):
        # the documented hot-path guard: a module-global load + one branch;
        # nothing is recorded and no tracer springs into existence
        for __ in range(1000):
            if obs_trace.ACTIVE is not None:  # pragma: no cover
                probe.counter("x", 0.0, value=1.0)
        assert obs_trace.ACTIVE is None


class TestInstall:
    def test_install_uninstall(self):
        t = Tracer()
        assert obs_trace.install(t) is t
        assert obs_trace.ACTIVE is t
        assert obs_trace.enabled()
        assert obs_trace.uninstall() is t
        assert obs_trace.ACTIVE is None

    def test_tracing_context_restores_previous(self):
        outer = Tracer()
        with obs_trace.tracing(outer) as t1:
            assert t1 is outer
            with obs_trace.tracing() as t2:
                assert obs_trace.ACTIVE is t2
                assert t2 is not outer
            assert obs_trace.ACTIVE is outer
        assert obs_trace.ACTIVE is None

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs_trace.tracing():
                raise RuntimeError("boom")
        assert obs_trace.ACTIVE is None

    def test_probe_emits_into_installed_tracer(self):
        with obs_trace.tracing() as t:
            probe.queue_insert(7, 2, 13.0, True)
        assert len(t) == 1
        event = t.events[0]
        assert event.name == "queue.coalesce"
        assert event.args == {"vertex": 7, "bin": 2}
        assert event.ts == 13.0


class TestRecording:
    def test_complete_span(self):
        t = Tracer()
        t.complete("work", "cat", 10.0, 5.0, "trackA", key=1)
        e = t.events[0]
        assert (e.phase, e.ts, e.duration, e.track) == ("X", 10.0, 5.0, "trackA")

    def test_instant_and_counter(self):
        t = Tracer()
        t.instant("hit", "mem", 3.0, "cache")
        t.counter("occ", 4.0, queue=17.0)
        assert [e.phase for e in t.events] == ["i", "C"]
        assert t.events[1].args == {"queue": 17.0}

    def test_category_filter(self):
        t = Tracer(categories=("dram",))
        t.instant("keep", "dram", 0.0, "x")
        t.instant("drop", "queue", 0.0, "x")
        t.counter("drop_counter", 0.0, v=1.0)  # 'counter' not requested
        assert [e.name for e in t.events] == ["keep"]
        assert t.wants("dram") and not t.wants("queue")

    def test_by_category_by_name_tracks(self):
        t = Tracer()
        t.instant("a", "c1", 0.0, "t1")
        t.instant("b", "c2", 1.0, "t2")
        t.instant("a", "c1", 2.0, "t1")
        assert len(t.by_category("c1")) == 2
        assert len(t.by_name("b")) == 1
        assert t.tracks() == ["t1", "t2"]  # first-appearance order

    def test_clear(self):
        t = Tracer()
        t.begin("s", "c", 0.0, "t")
        t.clear()
        assert len(t) == 0
        assert t.open_spans("t") == 0


class TestSpanNesting:
    def test_begin_end_pairs(self):
        t = Tracer()
        t.begin("outer", "c", 0.0, "t")
        t.begin("inner", "c", 1.0, "t")
        assert t.open_spans("t") == 2
        t.end("inner", "c", 2.0, "t")
        t.end("outer", "c", 3.0, "t")
        assert t.open_spans("t") == 0
        assert [e.phase for e in t.events] == ["B", "B", "E", "E"]

    def test_end_without_begin_raises(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.end("ghost", "c", 0.0, "t")

    def test_span_context_manager_nests(self):
        t = Tracer()
        with t.span("outer", "c", 0.0, "t"):
            with t.span("inner", "c", 1.0, "t"):
                t.end_at(4.0)
            t.end_at(9.0)
        phases = [(e.name, e.phase, e.ts) for e in t.events]
        assert phases == [
            ("outer", "B", 0.0),
            ("inner", "B", 1.0),
            ("inner", "E", 4.0),
            ("outer", "E", 9.0),
        ]
        assert t.open_spans("t") == 0

    def test_span_without_end_at_is_zero_length(self):
        t = Tracer()
        with t.span("s", "c", 5.0, "t"):
            pass
        assert t.events[-1].ts == 5.0

    def test_end_at_outside_span_raises(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.end_at(1.0)


class TestChromeConversion:
    def test_complete_gets_dur(self):
        from repro.obs.trace import TraceEvent

        record = TraceEvent("n", "c", "X", 1.0, "t", 4.0, {"k": 1}).to_chrome(3)
        assert record["dur"] == 4.0
        assert record["tid"] == 3
        assert record["args"] == {"k": 1}

    def test_instant_gets_scope(self):
        from repro.obs.trace import TraceEvent

        record = TraceEvent("n", "c", "i", 1.0, "t").to_chrome(0)
        assert record["s"] == "t"
        assert "dur" not in record
        assert "args" not in record
