"""Tests for trace serialization and telemetry aggregation."""

import json

import pytest

from repro import algorithms
from repro.core import GraphPulseAccelerator
from repro.graph import rmat_graph
from repro.obs import (
    TimeSeries,
    Tracer,
    export,
    load_chrome_trace,
    read_metrics_jsonl,
    round_series,
    stage_breakdown,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)


def _traced_pagerank_run():
    """Fixed-seed 64-vertex PageRank on the cycle model, traced."""
    graph = rmat_graph(64, 256, seed=7)
    spec = algorithms.make_pagerank_delta()
    with tracing() as tracer:
        result = GraphPulseAccelerator(graph, spec).run()
    return result, tracer


class TestChromeTrace:
    def test_valid_and_loadable(self, tmp_path):
        __, tracer = _traced_pagerank_run()
        path = tmp_path / "run.trace.json"
        count = write_chrome_trace(tracer, str(path))
        assert count > 0
        payload = load_chrome_trace(str(path))  # validates internally
        events = payload["traceEvents"]
        assert len(events) == count
        # thread metadata precedes the events so Perfetto names the tracks
        names = {
            r["args"]["name"] for r in events if r["ph"] == "M"
        }
        assert "engine:cycle" in names
        assert "queue" in names
        assert "dram" in names

    def test_deterministic_across_runs(self, tmp_path):
        """Same seed, same workload -> byte-identical trace files."""
        paths = []
        for i in range(2):
            __, tracer = _traced_pagerank_run()
            path = tmp_path / f"run{i}.trace.json"
            write_chrome_trace(tracer, str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_tids_stable_by_first_appearance(self):
        tracer = Tracer()
        tracer.instant("a", "c", 0.0, "first")
        tracer.instant("b", "c", 1.0, "second")
        tracer.instant("c", "c", 2.0, "first")
        records = export.chrome_trace_events(tracer)
        by_track = {
            r["args"]["name"]: r["tid"] for r in records if r["ph"] == "M"
        }
        assert by_track == {"first": 0, "second": 1}


class TestValidation:
    def test_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})

    def test_not_a_list(self):
        with pytest.raises(ValueError, match="list"):
            validate_chrome_trace({"traceEvents": {}})

    def test_bad_phase_named_by_index(self):
        events = [{"name": "ok", "ph": "i", "ts": 0, "pid": 1, "tid": 0},
                  {"name": "bad", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}]
        with pytest.raises(ValueError, match=r"traceEvents\[1\]"):
            validate_chrome_trace({"traceEvents": events})

    def test_missing_name(self):
        with pytest.raises(ValueError, match="name"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "ts": 0, "pid": 1, "tid": 0}]}
            )

    def test_span_needs_duration(self):
        record = {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [record]})

    def test_non_metadata_needs_timestamp(self):
        record = {"name": "x", "ph": "i", "pid": 1, "tid": 0}
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace({"traceEvents": [record]})


class TestMetricsJsonl:
    def test_round_trip(self, tmp_path):
        ts = TimeSeries(interval=10)
        ts.add_gauge("occupancy", lambda: 4.0)
        ts.advance(30)
        path = tmp_path / "metrics.jsonl"
        lines = write_metrics_jsonl(
            str(path), timeseries=ts, stats={"cycles": 123}
        )
        assert lines == 4  # three samples + one stats record
        records = read_metrics_jsonl(str(path))
        assert [r["type"] for r in records] == [
            "sample", "sample", "sample", "stats",
        ]
        assert records[0] == {"type": "sample", "cycle": 10.0, "occupancy": 4.0}
        assert records[-1] == {"type": "stats", "cycles": 123}

    def test_stats_only(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        assert write_metrics_jsonl(str(path), stats={"n": 1}) == 1
        assert read_metrics_jsonl(str(path)) == [{"type": "stats", "n": 1}]


class TestAggregators:
    def test_readers_accept_tracer_and_saved_file(self, tmp_path):
        """Post-hoc analysis of a saved trace matches in-process results."""
        __, tracer = _traced_pagerank_run()
        path = tmp_path / "run.trace.json"
        write_chrome_trace(tracer, str(path))
        saved = load_chrome_trace(str(path))["traceEvents"]
        live = stage_breakdown(tracer)
        offline = stage_breakdown(saved)
        assert offline == pytest.approx(live)
        assert export.occupancy_breakdown(saved) == pytest.approx(
            export.occupancy_breakdown(tracer)
        )

    def test_stage_breakdown_matches_counters(self):
        result, tracer = _traced_pagerank_run()
        breakdown = stage_breakdown(tracer)
        counters = result.stage_profile.per_event()
        assert breakdown["events"] == result.stage_profile.events
        for stage in export.STAGES:
            assert breakdown[stage] == pytest.approx(counters[stage])

    def test_occupancy_breakdown_matches_counters(self):
        result, tracer = _traced_pagerank_run()
        breakdown = export.occupancy_breakdown(tracer)
        for key, total in breakdown.items():
            assert total == pytest.approx(getattr(result.occupancy, key))

    def test_round_series_schema(self):
        result, tracer = _traced_pagerank_run()
        rounds = round_series(tracer, engine="cycle")
        assert len(rounds) == result.num_rounds
        assert [r["index"] for r in rounds] == list(range(len(rounds)))
        assert sum(r["events_processed"] for r in rounds) == (
            result.events_processed
        )
        # round spans tile the run in the engine's own time domain
        assert all(r["dur"] >= 0 for r in rounds)
        assert rounds[-1]["ts"] + rounds[-1]["dur"] <= result.total_cycles

    def test_round_series_engine_filter(self):
        tracer = Tracer()
        with tracing(tracer):
            from repro.obs import probe

            probe.round_span("cycle", 0, 0.0, 5.0, events_processed=1)
            probe.round_span("bsp", 0, 0.0, 1.0, events_processed=2)
        assert len(round_series(tracer)) == 2
        assert [r["engine"] for r in round_series(tracer, engine="bsp")] == [
            "bsp"
        ]
