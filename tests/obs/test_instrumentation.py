"""Integration tests: instrumentation across the stack.

Covers the two hard acceptance properties of the telemetry layer:

1. with tracing disabled, a fixed-seed cycle run produces *identical*
   results and stats to a traced run (observability must not perturb the
   model), and
2. every instrumented layer — engines, queue, memory, network, sliced
   runtime — actually emits its schema when a tracer is installed.
"""

import numpy as np
import pytest

from repro import algorithms
from repro.baselines import LigraEngine, SynchronousDeltaEngine
from repro.core import (
    FunctionalGraphPulse,
    GraphPulseAccelerator,
    SlicedGraphPulse,
)
from repro.graph import contiguous_partition, rmat_graph
from repro.obs import TimeSeries, Tracer, round_series, tracing


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(128, 700, seed=11)


def _cycle_fingerprint(result):
    """Everything a cycle run reports, as one comparable structure."""
    return (
        result.values.tobytes(),
        result.total_cycles,
        result.num_rounds,
        result.events_processed,
        result.events_produced,
        result.stage_profile.per_event(),
        dict(result.dram_stats),
        dict(result.queue_stats),
        result.converged,
    )


class TestTracingIsPure:
    def test_traced_run_identical_to_untraced(self, graph):
        spec = algorithms.make_pagerank_delta()
        untraced = GraphPulseAccelerator(graph, spec).run()
        with tracing() as tracer:
            traced = GraphPulseAccelerator(graph, spec).run()
        assert len(tracer) > 0
        assert _cycle_fingerprint(traced) == _cycle_fingerprint(untraced)

    def test_timeseries_does_not_perturb(self, graph):
        spec = algorithms.make_pagerank_delta()
        plain = GraphPulseAccelerator(graph, spec).run()
        sampled = GraphPulseAccelerator(
            graph, spec, timeseries=TimeSeries(interval=500)
        ).run()
        assert _cycle_fingerprint(sampled) == _cycle_fingerprint(plain)


class TestLayerEmissions:
    @pytest.fixture(scope="class")
    def cycle_trace(self, graph):
        spec = algorithms.make_pagerank_delta()
        with tracing() as tracer:
            result = GraphPulseAccelerator(graph, spec).run()
        return result, tracer

    def test_round_spans(self, cycle_trace):
        result, tracer = cycle_trace
        rounds = round_series(tracer, engine="cycle")
        assert len(rounds) == result.num_rounds

    def test_processor_and_generator_spans(self, cycle_trace):
        result, tracer = cycle_trace
        assert len(tracer.by_name("event")) == result.events_processed
        generates = tracer.by_name("generate")
        assert generates
        assert all(e.args["fanout"] >= 0 for e in generates)

    def test_queue_instants(self, cycle_trace):
        result, tracer = cycle_trace
        inserts = tracer.by_name("queue.insert")
        coalesces = tracer.by_name("queue.coalesce")
        # every produced event lands in the queue, as a fill or a merge
        assert len(inserts) + len(coalesces) >= result.events_produced
        assert tracer.by_name("queue.drain")

    def test_dram_spans(self, cycle_trace):
        __, tracer = cycle_trace
        txns = tracer.by_name("dram.txn")
        bursts = tracer.by_name("dram.burst")
        assert txns and bursts
        # bursts decompose transactions: at least one burst per txn
        assert len(bursts) >= len(txns)
        assert all(e.args["bytes"] > 0 for e in txns)

    def test_scratchpad_hits_and_misses(self, cycle_trace):
        __, tracer = cycle_trace
        assert tracer.by_name("cache.miss")  # first touch always misses

    def test_resource_spans(self, cycle_trace):
        __, tracer = cycle_trace
        assert tracer.by_category("resource")

    def test_counter_samples(self, cycle_trace):
        __, tracer = cycle_trace
        assert tracer.by_name("queue_occupancy")


class TestCrossEngineSchema:
    """Every engine emits the same round-level schema."""

    def test_functional_rounds(self, graph):
        spec = algorithms.make_pagerank_delta()
        with tracing() as tracer:
            result = FunctionalGraphPulse(graph, spec).run()
        rounds = round_series(tracer, engine="functional")
        assert len(rounds) == result.num_rounds
        assert sum(r["events_processed"] for r in rounds) == (
            result.total_events_processed
        )

    def test_bsp_rounds(self, graph):
        spec = algorithms.make_pagerank_delta()
        with tracing() as tracer:
            result = SynchronousDeltaEngine(graph, spec).run()
        rounds = round_series(tracer, engine="bsp")
        assert len(rounds) == result.num_iterations
        assert sum(r["edges_scanned"] for r in rounds) == (
            result.total_edges_scanned
        )

    def test_ligra_rounds(self, graph):
        spec = algorithms.make_pagerank_delta()
        with tracing() as tracer:
            result = LigraEngine(graph, spec).run()
        rounds = round_series(tracer, engine="ligra")
        assert len(rounds) == result.num_iterations
        assert [r["direction"] for r in rounds] == result.directions

    def test_sliced_activations(self, graph):
        spec = algorithms.make_pagerank_delta()
        partition = contiguous_partition(graph, 2)
        with tracing() as tracer:
            result = SlicedGraphPulse(partition, spec).run()
        activations = tracer.by_name("slice.activate")
        assert len(activations) == len(result.activations)

    def test_engines_share_one_trace(self, graph):
        spec = algorithms.make_pagerank_delta()
        with tracing() as tracer:
            FunctionalGraphPulse(graph, spec).run()
            SynchronousDeltaEngine(graph, spec).run()
        engines = {r["engine"] for r in round_series(tracer)}
        assert engines == {"functional", "bsp"}


class TestFunctionalTimeseries:
    def test_round_domain_sampling(self, graph):
        spec = algorithms.make_pagerank_delta()
        ts = TimeSeries(interval=2)
        result = FunctionalGraphPulse(graph, spec, timeseries=ts).run()
        assert len(ts) == result.num_rounds // 2
        assert "queue_occupancy" in ts.gauge_names
        # the queue is empty once the run converges
        if len(ts) and result.converged:
            assert ts.series("queue_occupancy")[-1] >= 0


class TestValuesUnchanged:
    def test_traced_functional_matches_untraced(self, graph):
        spec = algorithms.make_pagerank_delta()
        plain = FunctionalGraphPulse(graph, spec).run()
        with tracing():
            traced = FunctionalGraphPulse(graph, spec).run()
        assert np.array_equal(plain.values, traced.values)
        assert plain.num_rounds == traced.num_rounds
