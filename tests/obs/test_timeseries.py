"""Unit tests for gauge sampling (repro.obs.timeseries)."""

import pytest

from repro.obs import TimeSeries


class TestConstruction:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(interval=0)

    def test_cycle_column_reserved(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.add_gauge("cycle", lambda: 0.0)

    def test_gauge_names(self):
        ts = TimeSeries()
        ts.add_gauge("a", lambda: 1.0)
        ts.add_gauge("b", lambda: 2.0)
        assert ts.gauge_names == ["a", "b"]


class TestBoundarySampling:
    def test_uneven_jump_samples_every_crossed_boundary(self):
        ts = TimeSeries(interval=10)
        ts.add_gauge("g", lambda: 5.0)
        taken = ts.advance(25)
        # boundaries 10 and 20 were crossed; 25 itself is not a boundary
        assert taken == 2
        assert ts.series("cycle") == [10.0, 20.0]
        assert ts.series("g") == [5.0, 5.0]

    def test_boundary_never_sampled_twice(self):
        ts = TimeSeries(interval=10)
        ts.advance(25)
        assert ts.advance(25) == 0
        assert ts.advance(29) == 0
        assert ts.advance(30) == 1
        assert ts.series("cycle") == [10.0, 20.0, 30.0]

    def test_exact_boundary_is_included(self):
        ts = TimeSeries(interval=10)
        assert ts.advance(10) == 1
        assert ts.series("cycle") == [10.0]

    def test_before_first_boundary_takes_nothing(self):
        ts = TimeSeries(interval=10)
        assert ts.advance(9) == 0
        assert len(ts) == 0
        # ...and the first boundary is still armed
        assert ts.advance(10) == 1

    def test_rows_hold_current_gauge_values(self):
        # all rows from one advance() hold the state observable *now*
        state = {"v": 1.0}
        ts = TimeSeries(interval=10)
        ts.add_gauge("v", lambda: state["v"])
        ts.advance(10)
        state["v"] = 9.0
        ts.advance(35)  # boundaries 20 and 30, both see v=9
        assert ts.series("v") == [1.0, 9.0, 9.0]

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().advance(-1)

    def test_rows_strictly_increasing(self):
        ts = TimeSeries(interval=7)
        for cycle in (5, 13, 13, 29, 30, 64):
            ts.advance(cycle)
        cycles = ts.series("cycle")
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == len(cycles)


class TestUnconditionalSample:
    def test_sample_ignores_grid(self):
        ts = TimeSeries(interval=1000)
        ts.add_gauge("g", lambda: 3.0)
        row = ts.sample(17)
        assert row == {"cycle": 17.0, "g": 3.0}
        assert len(ts) == 1

    def test_series_skips_missing_columns(self):
        ts = TimeSeries(interval=10)
        ts.sample(1)
        ts.add_gauge("late", lambda: 2.0)
        ts.sample(2)
        assert ts.series("late") == [2.0]
