"""Unit tests for the metrics registry (repro.obs.metrics)."""

import io
import math
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProgressReporter,
)


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    """Every test starts and ends with metrics disabled."""
    assert obs_metrics.ACTIVE is None
    yield
    obs_metrics.uninstall()


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("events", {})
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increment(self):
        c = Counter("events", {})
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_to_dict(self):
        c = Counter("events", {})
        c.inc(3)
        assert c.to_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("occupancy", {})
        g.set(4)
        g.set(2.5)
        assert g.to_dict() == {"type": "gauge", "value": 2.5}


class TestHistogramPercentiles:
    def test_empty_percentile_is_none(self):
        h = Histogram("batch", {})
        assert h.percentile(50) is None
        assert h.mean() is None
        assert h.count == 0

    def test_single_sample_is_every_percentile(self):
        h = Histogram("batch", {})
        h.observe(7.0)
        assert h.percentile(0) == 7.0
        assert h.percentile(50) == 7.0
        assert h.percentile(100) == 7.0

    def test_linear_interpolation(self):
        h = Histogram("batch", {})
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == pytest.approx(2.5)

    def test_percentile_out_of_range_raises(self):
        h = Histogram("batch", {})
        h.observe(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)

    def test_nan_observation_rejected(self):
        h = Histogram("batch", {})
        with pytest.raises(ValueError, match="NaN"):
            h.observe(math.nan)
        # the rejected sample must not have been recorded
        assert h.count == 0

    def test_to_dict_summary(self):
        h = Histogram("batch", {})
        for v in (1.0, 3.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 2
        assert d["sum"] == 4.0
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["mean"] == 2.0

    def test_empty_to_dict_has_no_quantiles(self):
        d = Histogram("batch", {}).to_dict()
        assert d == {"type": "histogram", "count": 0, "sum": 0.0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", worker=1) is not r.counter("a", worker=2)

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError, match="is a counter"):
            r.gauge("a")

    def test_snapshot_sorted_and_label_encoded(self):
        r = MetricsRegistry()
        r.counter("b").inc(2)
        r.counter("a", worker=1, kind="x").inc()
        snap = r.snapshot()
        assert list(snap) == sorted(snap)
        assert "a{kind=x,worker=1}" in snap
        assert snap["b"]["value"] == 2

    def test_len_counts_instruments(self):
        r = MetricsRegistry()
        r.counter("a")
        r.gauge("b")
        assert len(r) == 2


class TestInstall:
    def test_install_uninstall(self):
        r = MetricsRegistry()
        assert obs_metrics.install(r) is r
        assert obs_metrics.ACTIVE is r
        assert obs_metrics.enabled()
        assert obs_metrics.uninstall() is r
        assert obs_metrics.ACTIVE is None

    def test_collecting_restores_previous(self):
        outer = MetricsRegistry()
        with obs_metrics.collecting(outer) as r1:
            assert r1 is outer
            with obs_metrics.collecting() as r2:
                assert obs_metrics.ACTIVE is r2
                assert r2 is not outer
            assert obs_metrics.ACTIVE is outer
        assert obs_metrics.ACTIVE is None


class TestRoundTick:
    def test_noop_when_disabled(self):
        obs_metrics.round_tick("functional", 0, events_processed=5)
        assert obs_metrics.ACTIVE is None

    def test_updates_counters_and_histogram(self):
        with obs_metrics.collecting() as r:
            obs_metrics.round_tick("functional", 0, events_processed=3)
            obs_metrics.round_tick("functional", 1, events_processed=5)
        assert r.counter("engine.rounds", engine="functional").value == 2
        assert (
            r.counter("engine.events_processed", engine="functional").value
            == 8
        )
        h = r.histogram("engine.round_events", engine="functional")
        assert h.count == 2

    def test_drives_progress_heartbeat(self):
        stream = io.StringIO()
        r = MetricsRegistry()
        r.progress = ProgressReporter(interval=2, stream=stream)
        with obs_metrics.collecting(r):
            for i in range(4):
                obs_metrics.round_tick("functional", i, events_processed=10)
        lines = stream.getvalue().splitlines()
        assert lines == [
            "progress: engine=functional round=2 events=20",
            "progress: engine=functional round=4 events=40",
        ]
        assert r.progress.emitted == 2


class TestProgressReporter:
    def test_interval_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            ProgressReporter(interval=0)

    def test_off_interval_rounds_are_silent(self):
        stream = io.StringIO()
        p = ProgressReporter(interval=10, stream=stream)
        p.tick("cycle", 3, 100)
        assert stream.getvalue() == ""
        assert p.emitted == 0


class TestDisabledOverhead:
    def test_disabled_guard_adds_no_measurable_cost(self):
        """The hot-path guard is a global load + one branch.

        Relative bound, deliberately loose (3x): CI machines are noisy
        and this asserts "same order of magnitude as a bare loop", not
        a microbenchmark number.
        """
        n = 200_000

        def bare() -> float:
            start = time.perf_counter()
            total = 0
            for _ in range(n):
                total += 1
            return time.perf_counter() - start

        def guarded() -> float:
            start = time.perf_counter()
            total = 0
            for _ in range(n):
                if obs_metrics.ACTIVE is not None:  # pragma: no cover
                    obs_metrics.ACTIVE.counter("x").inc()
                total += 1
            return time.perf_counter() - start

        bare_s = min(bare() for _ in range(3))
        guarded_s = min(guarded() for _ in range(3))
        assert guarded_s < bare_s * 3 + 1e-3
