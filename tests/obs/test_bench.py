"""Unit tests for the bench harness (repro.obs.bench)."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import bench as obs_bench
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    check_regression,
    default_artifact_name,
    default_suite,
    host_fingerprint,
    load_bench,
    run_cell,
    run_suite,
    validate_bench,
    work_units,
    write_bench,
)


def _cell_record(key="functional/bfs/WG@0.05", events_per_sec=1000.0):
    """A minimal schema-complete cell record for artifact tests."""
    engine, algorithm, rest = key.split("/")
    dataset, scale = rest.split("@")
    return {
        "engine": engine,
        "algorithm": algorithm,
        "dataset": dataset,
        "scale": float(scale),
        "key": key,
        "warmup": 0,
        "repeats": 1,
        "seconds": [0.5],
        "median_seconds": 0.5,
        "work_units": int(events_per_sec * 0.5),
        "work_unit": "events_processed",
        "events_per_sec": events_per_sec,
        "rounds": 10,
        "rounds_per_sec": 20.0,
        "converged": True,
        "peak_rss_kb": 1024,
    }


def _artifact(cells):
    return {
        "format_version": BENCH_SCHEMA_VERSION,
        "host": {
            "fingerprint": "deadbeef",
            "system": "Linux",
            "machine": "x86_64",
            "python": "3.11",
            "cpus": 4,
        },
        "suite": {"warmup": 0, "repeats": 1},
        "cells": cells,
    }


class TestSuiteShape:
    def test_default_suite_is_cross_product(self):
        cells = default_suite()
        assert len(cells) == 6  # 3 engines x 2 algorithms
        assert len({c.engine for c in cells}) == 3
        assert len({c.algorithm for c in cells}) == 2

    def test_cell_key_is_stable(self):
        cell = BenchCell("sliced", "pagerank", "WG", 0.05)
        assert cell.key == "sliced/pagerank/WG@0.05"

    def test_fingerprint_is_deterministic_hex(self):
        fp = host_fingerprint()
        assert fp == host_fingerprint()
        assert len(fp) == 8
        int(fp, 16)  # hex
        assert default_artifact_name() == f"BENCH_{fp}.json"


class TestWorkUnits:
    def test_prefers_events_processed(self):
        info = {"stats": {"events_processed": 10, "edges_scanned": 99}}
        assert work_units(info) == 10

    def test_falls_back_to_edges_then_messages_then_rounds(self):
        assert work_units({"stats": {"edges_scanned": 7}}) == 7
        assert work_units({"stats": {"messages": 5}}) == 5
        assert work_units({"stats": {}, "rounds": 3}) == 3
        assert work_units({"stats": {}, "passes": 2}) == 2


class TestRunCell:
    def test_measures_a_tiny_cell(self):
        cell = BenchCell("functional", "bfs", "WG", 0.05)
        record = run_cell(cell, warmup=0, repeats=2)
        assert record["key"] == cell.key
        assert len(record["seconds"]) == 2
        assert record["median_seconds"] in record["seconds"]
        assert record["events_per_sec"] > 0
        assert record["work_unit"] == "events_processed"
        assert record["converged"] is True
        assert record["peak_rss_kb"] > 0

    def test_rejects_bad_repeats_and_warmup(self):
        cell = BenchCell("functional", "bfs", "WG", 0.05)
        with pytest.raises(ReproError, match="repeats"):
            run_cell(cell, repeats=0)
        with pytest.raises(ReproError, match="warmup"):
            run_cell(cell, warmup=-1)

    def test_empty_suite_raises(self):
        with pytest.raises(ReproError, match="empty"):
            run_suite([])


class TestArtifactIO:
    def test_write_then_load_round_trip(self, tmp_path):
        payload = _artifact([_cell_record()])
        path = tmp_path / "BENCH_test.json"
        write_bench(payload, str(path))
        assert load_bench(str(path)) == payload

    def test_validate_rejects_wrong_version(self):
        payload = _artifact([_cell_record()])
        payload["format_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="format_version"):
            validate_bench(payload)

    def test_validate_rejects_missing_cell_key(self):
        record = _cell_record()
        del record["events_per_sec"]
        with pytest.raises(ValueError, match="events_per_sec"):
            validate_bench(_artifact([record]))

    def test_validate_rejects_no_cells(self):
        with pytest.raises(ValueError, match="no cells"):
            validate_bench(_artifact([]))

    def test_load_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_bench(str(tmp_path / "absent.json"))

    def test_load_invalid_json_is_typed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_bench(str(path))

    def test_write_refuses_invalid_payload(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench({"format_version": 0}, str(tmp_path / "x.json"))

    def test_real_suite_validates(self, tmp_path):
        payload = run_suite(
            [BenchCell("functional", "bfs", "WG", 0.05)],
            warmup=0,
            repeats=1,
        )
        validate_bench(payload)
        path = write_bench(payload, str(tmp_path / "real.json"))
        assert json.loads(open(path).read()) == payload


class TestRegression:
    def test_identical_artifacts_pass(self):
        current = _artifact([_cell_record(events_per_sec=1000.0)])
        report = check_regression(current, current, tolerance=0.25)
        assert report.ok
        assert report.compared == 1
        assert report.unmatched == []

    def test_slowdown_beyond_tolerance_fails(self):
        baseline = _artifact([_cell_record(events_per_sec=1000.0)])
        current = _artifact([_cell_record(events_per_sec=700.0)])
        report = check_regression(current, baseline, tolerance=0.25)
        assert not report.ok
        (reg,) = report.regressions
        assert reg["key"] == "functional/bfs/WG@0.05"
        assert reg["floor_events_per_sec"] == pytest.approx(750.0)
        assert reg["ratio"] == pytest.approx(0.7)

    def test_slowdown_within_tolerance_passes(self):
        baseline = _artifact([_cell_record(events_per_sec=1000.0)])
        current = _artifact([_cell_record(events_per_sec=800.0)])
        assert check_regression(current, baseline, tolerance=0.25).ok

    def test_speedup_always_passes(self):
        baseline = _artifact([_cell_record(events_per_sec=1000.0)])
        current = _artifact([_cell_record(events_per_sec=5000.0)])
        assert check_regression(current, baseline).ok

    def test_new_cells_are_unmatched_not_failures(self):
        baseline = _artifact([_cell_record(events_per_sec=1000.0)])
        current = _artifact(
            [
                _cell_record(events_per_sec=1000.0),
                _cell_record(key="bsp/bfs/WG@0.05", events_per_sec=1.0),
            ]
        )
        report = check_regression(current, baseline)
        assert report.ok
        assert report.unmatched == ["bsp/bfs/WG@0.05"]
        assert report.compared == 1

    def test_tolerance_validation(self):
        payload = _artifact([_cell_record()])
        with pytest.raises(ReproError, match="tolerance"):
            check_regression(payload, payload, tolerance=1.0)
        with pytest.raises(ReproError, match="tolerance"):
            check_regression(payload, payload, tolerance=-0.1)

    def test_report_to_json_shape(self):
        payload = _artifact([_cell_record()])
        report = check_regression(payload, payload)
        assert report.to_json() == {
            "tolerance": obs_bench.DEFAULT_TOLERANCE,
            "compared": 1,
            "unmatched": [],
            "regressions": [],
            "ok": True,
        }
