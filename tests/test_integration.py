"""Cross-engine integration tests.

Every execution engine in the reproduction — functional event model,
cycle-level accelerator, sliced runtime, BSP engine, Ligra framework,
Graphicionado model — must agree on the converged values for every
algorithm, because they all implement the same delta-accumulative
fixed-point computation.  This is the strongest end-to-end check the
repository has.
"""

import numpy as np
import pytest

from repro import algorithms
from repro.baselines import (
    GraphicionadoAccelerator,
    LigraEngine,
    SynchronousDeltaEngine,
)
from repro.core import (
    FunctionalGraphPulse,
    GraphPulseAccelerator,
    SlicedGraphPulse,
)
from repro.graph import contiguous_partition, random_weights, rmat_graph

ALGORITHM_CASES = ["pagerank", "adsorption", "sssp", "bfs", "cc"]


def build_case(algorithm, seed=101):
    graph = rmat_graph(220, 1300, seed=seed)
    if algorithm == "sssp":
        graph = random_weights(graph, seed=seed)
    elif algorithm == "adsorption":
        graph = algorithms.normalize_inbound_weights(
            random_weights(graph, seed=seed)
        )
    elif algorithm == "cc":
        graph = algorithms.symmetrize(graph)
    root = int(np.argmax(graph.out_degrees()))
    if algorithm in ("sssp", "bfs"):
        spec = algorithms.get_algorithm(algorithm, graph, root=root)
    else:
        spec = algorithms.get_algorithm(algorithm, graph)
    injection = (
        algorithms.injection_values(graph)
        if algorithm == "adsorption"
        else None
    )
    reference = algorithms.reference_for(
        algorithm, graph, root=root, injection=injection
    )
    return graph, spec, reference


def assert_matches(values, reference, tolerance):
    finite = np.isfinite(reference)
    assert np.allclose(
        values[finite], reference[finite], atol=max(tolerance, 1e-12)
    )
    assert np.all(np.isinf(values[~finite]))


@pytest.mark.parametrize("algorithm", ALGORITHM_CASES)
class TestAllEnginesAgree:
    def test_functional_engine(self, algorithm):
        graph, spec, reference = build_case(algorithm)
        result = FunctionalGraphPulse(graph, spec).run()
        assert_matches(result.values, reference, 1e-4)

    def test_cycle_accelerator(self, algorithm):
        graph, spec, reference = build_case(algorithm)
        result = GraphPulseAccelerator(graph, spec).run()
        assert_matches(result.values, reference, 1e-4)

    def test_sliced_runtime(self, algorithm):
        graph, spec, reference = build_case(algorithm)
        partition = contiguous_partition(graph, 3)
        result = SlicedGraphPulse(partition, spec).run()
        assert_matches(result.values, reference, 1e-4)

    def test_bsp_engine(self, algorithm):
        graph, spec, reference = build_case(algorithm)
        result = SynchronousDeltaEngine(graph, spec).run()
        assert_matches(result.values, reference, 1e-4)

    def test_ligra_framework(self, algorithm):
        graph, spec, reference = build_case(algorithm)
        result = LigraEngine(graph, spec).run()
        assert_matches(result.values, reference, 1e-4)

    def test_graphicionado_model(self, algorithm):
        graph, spec, reference = build_case(algorithm)
        result = GraphicionadoAccelerator(graph, spec).run()
        assert_matches(result.values, reference, 1e-4)


@pytest.mark.parametrize("algorithm", ALGORITHM_CASES)
def test_cycle_model_bitwise_matches_functional(algorithm):
    """The cycle model executes the same event schedule as the
    functional engine, so values are identical (not just close)."""
    graph, spec, __ = build_case(algorithm, seed=102)
    functional = FunctionalGraphPulse(graph, spec).run()
    cycle = GraphPulseAccelerator(graph, spec).run()
    assert np.array_equal(functional.values, cycle.values)
    assert functional.num_rounds == cycle.num_rounds


def test_public_api_surface():
    """The README's documented imports must exist."""
    import repro

    assert hasattr(repro, "graph")
    assert hasattr(repro, "algorithms")
    assert hasattr(repro, "core")
    assert hasattr(repro, "baselines")
    assert hasattr(repro, "analysis")
    assert hasattr(repro, "power")
    assert repro.__version__
