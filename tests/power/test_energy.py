"""Tests for the power/area/energy model (Table V)."""

import pytest

from repro.power import (
    CPU_PACKAGE_WATTS,
    PowerModel,
    energy_efficiency_ratio,
)


def make_report(runtime=1e-3, **ops):
    defaults = dict(
        queue_ops=1e6,
        scratchpad_ops=1e5,
        network_ops=1e6,
        processing_ops=1e5,
    )
    defaults.update(ops)
    return PowerModel().report(runtime_seconds=runtime, **defaults)


class TestTableV:
    def test_all_components_present(self):
        report = make_report()
        assert set(report.rows) == {
            "queue",
            "scratchpad",
            "network",
            "processing",
        }

    def test_queue_dominates_power(self):
        # "The coalescing event queue consumes the most power"
        report = make_report()
        queue = report.rows["queue"]["total_mw"]
        for name, row in report.rows.items():
            if name != "queue":
                assert queue > row["total_mw"]

    def test_static_power_matches_table_v(self):
        report = make_report()
        assert report.rows["queue"]["static_mw"] == pytest.approx(64 * 116)
        assert report.rows["network"]["static_mw"] == pytest.approx(51.3)

    def test_area_total(self):
        report = make_report()
        assert report.total_area_mm2 == pytest.approx(
            190.0 + 0.21 + 3.10 + 0.44
        )

    def test_dynamic_power_scales_with_activity(self):
        low = make_report(queue_ops=1e5)
        high = make_report(queue_ops=1e8)
        assert (
            high.rows["queue"]["dynamic_mw"]
            > low.rows["queue"]["dynamic_mw"]
        )

    def test_dynamic_power_scales_inverse_with_runtime(self):
        fast = make_report(runtime=1e-4)
        slow = make_report(runtime=1e-2)
        assert fast.total_dynamic_mw > slow.total_dynamic_mw

    def test_energy(self):
        report = make_report(runtime=2.0)
        assert report.energy_joules == pytest.approx(
            report.total_power_watts * 2.0
        )

    def test_invalid_runtime(self):
        with pytest.raises(ValueError):
            make_report(runtime=0)


class TestEnergyEfficiency:
    def test_accelerator_wins_big(self):
        # GraphPulse at ~8 W running 28x faster than a 130 W CPU gives
        # three orders of magnitude of energy advantage territory
        report = make_report(runtime=1e-3)
        ratio = energy_efficiency_ratio(
            report, software_seconds=28e-3
        )
        assert ratio > 100

    def test_ratio_uses_cpu_power(self):
        report = make_report(runtime=1e-3)
        weak = energy_efficiency_ratio(
            report, software_seconds=1e-3, software_watts=10
        )
        strong = energy_efficiency_ratio(
            report, software_seconds=1e-3, software_watts=CPU_PACKAGE_WATTS
        )
        assert strong > weak
