"""Unit tests for arbiters."""

import pytest

from repro.network import Arbiter, ArbiterTree


class TestArbiter:
    def test_one_grant_per_cycle(self):
        arb = Arbiter("a")
        g1 = arb.request(0)
        g2 = arb.request(0)
        g3 = arb.request(0)
        assert g2 == g1 + 1
        assert g3 == g2 + 1

    def test_idle_arbiter_grants_immediately(self):
        arb = Arbiter("a", grant_latency=2)
        assert arb.request(10) == 12

    def test_wait_accounting(self):
        arb = Arbiter("a")
        arb.request(0)
        arb.request(0)
        assert arb.stats.get("wait_cycles") == 1
        assert arb.stats.get("grants") == 2

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            Arbiter("a", grant_latency=0)


class TestArbiterTree:
    def test_single_leaf_skips_root(self):
        tree = ArbiterTree("t", num_requesters=8, fan_in=16)
        assert len(tree.leaves) == 1
        g = tree.request(0, 0)
        assert g == 1  # one stage only

    def test_two_stage_latency(self):
        tree = ArbiterTree("t", num_requesters=32, fan_in=16)
        assert len(tree.leaves) == 2
        assert tree.request(0, 0) == 2  # leaf + root

    def test_different_leaves_share_root(self):
        tree = ArbiterTree("t", num_requesters=32, fan_in=16)
        a = tree.request(0, 0)  # leaf 0
        b = tree.request(16, 0)  # leaf 1, contends at root
        assert b == a + 1

    def test_same_leaf_contention(self):
        tree = ArbiterTree("t", num_requesters=32, fan_in=16)
        a = tree.request(0, 0)
        b = tree.request(1, 0)  # same leaf
        assert b > a

    def test_grant_counting(self):
        tree = ArbiterTree("t", num_requesters=4, fan_in=2)
        for i in range(4):
            tree.request(i, 0)
        assert tree.stats.get("grants") == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            ArbiterTree("t", num_requesters=0)
        with pytest.raises(ValueError):
            ArbiterTree("t", num_requesters=4, fan_in=0)
