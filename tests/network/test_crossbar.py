"""Unit tests for the event-delivery crossbar."""

import pytest

from repro.network import Crossbar


class TestRouting:
    def test_uncontended_latency(self):
        xbar = Crossbar("x", num_ports=4, traversal_cycles=2)
        # enters switch at cycle 0, 2 traversal cycles, 1 output cycle
        assert xbar.send(0, 1, 0) == 3

    def test_output_port_contention(self):
        xbar = Crossbar("x", num_ports=4, sources_per_port=1)
        first = xbar.send(0, 3, 0)
        second = xbar.send(1, 3, 0)  # different input, same output
        assert second == first + 1

    def test_different_outputs_do_not_conflict(self):
        xbar = Crossbar("x", num_ports=4, sources_per_port=1)
        assert xbar.send(0, 1, 0) == xbar.send(1, 2, 0)

    def test_input_multiplexing(self):
        xbar = Crossbar("x", num_ports=2, sources_per_port=8)
        assert xbar.input_port_of(0) == 0
        assert xbar.input_port_of(7) == 0
        assert xbar.input_port_of(8) == 1
        # sources sharing one input port serialize
        a = xbar.send(0, 0, 0)
        b = xbar.send(1, 1, 0)
        assert b > a or b == a + 1 - 1  # strictly later entry to switch
        assert xbar.stats.get("events") == 2

    def test_invalid_dest(self):
        with pytest.raises(ValueError):
            Crossbar("x", num_ports=2).send(0, 5, 0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Crossbar("x", num_ports=0)
        with pytest.raises(ValueError):
            Crossbar("x", sources_per_port=0)

    def test_utilization(self):
        xbar = Crossbar("x", num_ports=2)
        xbar.send(0, 0, 0)
        assert 0 < xbar.output_utilization(10) <= 1.0
        assert xbar.output_utilization(0) == 0.0
