"""Tests for the bit-level bin storage model (Section IV-D, Figure 6)."""

import pytest

from repro.core.rowqueue import BinGeometry, BinStorage


def add(a, b):
    return a + b


@pytest.fixture
def bin_storage():
    return BinStorage(BinGeometry(num_rows=8, num_columns=4))


class TestGeometry:
    def test_capacity(self):
        g = BinGeometry(num_rows=4096, num_columns=16)
        assert g.capacity == 65536

    def test_locate(self):
        g = BinGeometry(num_rows=8, num_columns=4)
        assert g.locate(0) == (0, 0)
        assert g.locate(5) == (1, 1)
        assert g.locate(31) == (7, 3)

    def test_locate_bounds(self):
        g = BinGeometry(num_rows=2, num_columns=2)
        with pytest.raises(ValueError):
            g.locate(4)
        with pytest.raises(ValueError):
            g.locate(-1)

    def test_paper_capacity_arithmetic(self):
        # 64 bins x 4096 rows x 16 columns = 4M events — the
        # queue_capacity_events default of the accelerator config
        from repro.core import optimized_config

        g = BinGeometry(num_rows=4096, num_columns=16)
        assert 64 * g.capacity == optimized_config().queue_capacity_events


class TestInsertion:
    def test_insert_fills_slot(self, bin_storage):
        done, coalesced = bin_storage.insert(0, 1.5, at=0, reduce_fn=add)
        assert not coalesced
        assert done == 4  # coalescer latency
        assert bin_storage.payload(0) == 1.5
        assert bin_storage.occupancy == 1

    def test_insert_coalesces_in_place(self, bin_storage):
        bin_storage.insert(3, 1.0, at=0, reduce_fn=add)
        __, coalesced = bin_storage.insert(3, 2.0, at=10, reduce_fn=add)
        assert coalesced
        assert bin_storage.payload(3) == 3.0
        assert bin_storage.occupancy == 1  # no growth

    def test_different_rows_pipeline_freely(self, bin_storage):
        done_a, __ = bin_storage.insert(0, 1.0, at=0, reduce_fn=add)  # row 0
        done_b, __ = bin_storage.insert(4, 1.0, at=0, reduce_fn=add)  # row 1
        assert done_a == done_b == 4
        assert bin_storage.stats.get("row_conflicts") == 0

    def test_same_row_conflict_stalls(self, bin_storage):
        bin_storage.insert(0, 1.0, at=0, reduce_fn=add)  # row 0
        done, __ = bin_storage.insert(1, 1.0, at=0, reduce_fn=add)  # row 0
        assert done == 8  # waits for the first write-back
        assert bin_storage.stats.get("row_conflicts") == 1
        assert bin_storage.stats.get("insert_stall_cycles") == 4

    def test_min_reduce(self, bin_storage):
        bin_storage.insert(2, 9.0, at=0, reduce_fn=min)
        bin_storage.insert(2, 4.0, at=10, reduce_fn=min)
        assert bin_storage.payload(2) == 4.0


class TestSweep:
    def test_sweep_drains_everything(self, bin_storage):
        for slot in (0, 5, 9, 31):
            bin_storage.insert(slot, float(slot), at=0, reduce_fn=add)
        drained, done = bin_storage.sweep(at=100)
        assert sorted(s for s, _ in drained) == [0, 5, 9, 31]
        assert bin_storage.occupancy == 0

    def test_sweep_skips_empty_rows(self, bin_storage):
        # occupancy bit-vector: only 2 of 8 rows occupied -> 2 cycles
        bin_storage.insert(0, 1.0, at=0, reduce_fn=add)  # row 0
        bin_storage.insert(30, 1.0, at=0, reduce_fn=add)  # row 7
        __, done = bin_storage.sweep(at=100)
        assert done == 102
        assert bin_storage.stats.get("sweep_cycles") == 2

    def test_full_row_reads_in_one_cycle(self, bin_storage):
        for column in range(4):  # fill row 2 completely
            bin_storage.insert(8 + column, 1.0, at=column, reduce_fn=add)
        drained, __ = bin_storage.sweep(at=100)
        assert len(drained) == 4
        assert bin_storage.stats.get("sweep_cycles") == 1
        assert bin_storage.sweep_efficiency() == 1.0

    def test_sparse_rows_are_inefficient(self, bin_storage):
        bin_storage.insert(0, 1.0, at=0, reduce_fn=add)  # 1 of 4 slots
        bin_storage.sweep(at=10)
        assert bin_storage.sweep_efficiency() == 0.25

    def test_sweep_waits_for_inflight_insertions(self, bin_storage):
        done, __ = bin_storage.insert(0, 1.0, at=100, reduce_fn=add)
        __, sweep_done = bin_storage.sweep(at=100)
        assert sweep_done >= done

    def test_insert_stalls_during_removal(self, bin_storage):
        bin_storage.insert(0, 1.0, at=0, reduce_fn=add)
        __, sweep_done = bin_storage.sweep(at=50)
        done, __ = bin_storage.insert(4, 1.0, at=50, reduce_fn=add)
        assert done >= sweep_done + 4

    def test_empty_sweep_is_free(self, bin_storage):
        drained, done = bin_storage.sweep(at=42)
        assert drained == []
        assert done == 42
        assert bin_storage.sweep_efficiency() == 1.0

    def test_occupied_rows_tracking(self, bin_storage):
        bin_storage.insert(0, 1.0, at=0, reduce_fn=add)
        bin_storage.insert(12, 1.0, at=0, reduce_fn=add)
        assert bin_storage.occupied_rows() == [0, 3]
        bin_storage.sweep(at=10)
        assert bin_storage.occupied_rows() == []
