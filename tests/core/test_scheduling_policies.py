"""Tests for scheduler bin-visit policies (Section IV-C extension)."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import FunctionalGraphPulse
from repro.graph import random_weights, rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(300, 1800, seed=131)


POLICIES = FunctionalGraphPulse.SCHEDULING_POLICIES


class TestPolicyIndependence:
    """The Reordering property: the fixed point is schedule-independent."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_pagerank_fixed_point(self, graph, policy):
        spec = algorithms.make_pagerank_delta()
        result = FunctionalGraphPulse(
            graph, spec, scheduling=policy, block_size=8
        ).run()
        assert np.allclose(
            result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_sssp_fixed_point(self, graph, policy):
        g = random_weights(graph, seed=13)
        root = int(np.argmax(g.out_degrees()))
        spec = algorithms.make_sssp(root=root)
        result = FunctionalGraphPulse(
            g, spec, scheduling=policy, block_size=8
        ).run()
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])


class TestPolicyBehaviour:
    def test_unknown_policy_rejected(self, graph):
        with pytest.raises(ValueError, match="scheduling policy"):
            FunctionalGraphPulse(
                graph,
                algorithms.make_pagerank_delta(),
                scheduling="random",
            )

    def test_policies_differ_in_schedule_not_result(self, graph):
        """Different visit orders may change per-round work but all
        converge; the round counts are allowed to differ."""
        spec = algorithms.make_connected_components()
        g = algorithms.symmetrize(graph)
        reference = algorithms.connected_components_reference(g)
        rounds = {}
        for policy in POLICIES:
            result = FunctionalGraphPulse(
                g, spec, scheduling=policy, block_size=8
            ).run()
            assert np.array_equal(result.values, reference)
            rounds[policy] = result.num_rounds
        assert all(r >= 1 for r in rounds.values())

    def test_occupancy_policy_orders_by_fullness(self, graph):
        engine = FunctionalGraphPulse(
            graph,
            algorithms.make_pagerank_delta(),
            scheduling="occupancy",
            block_size=8,
        )
        for vertex, delta in engine.spec.initial_events(graph).items():
            from repro.core import Event

            engine.queue.insert(Event(vertex=vertex, delta=delta))
        order = engine._bin_visit_order()
        occupancies = [engine.queue.bin_occupancy(b) for b in order]
        assert occupancies == sorted(occupancies, reverse=True)

    def test_reverse_policy_order(self, graph):
        engine = FunctionalGraphPulse(
            graph,
            algorithms.make_pagerank_delta(),
            scheduling="reverse",
        )
        order = engine._bin_visit_order()
        assert order == list(reversed(range(engine.queue.num_bins)))
