"""Tests for the multi-accelerator parallel slicing runtime (the paper's
unexplored Section IV-F option b)."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import FunctionalGraphPulse, ParallelSlicedGraphPulse
from repro.graph import (
    chain_graph,
    contiguous_partition,
    greedy_edge_cut_partition,
    random_weights,
    rmat_graph,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(300, 1800, seed=121)


class TestCorrectness:
    @pytest.mark.parametrize("num_slices", [1, 2, 4])
    def test_pagerank_matches_single_accelerator(self, graph, num_slices):
        spec = algorithms.make_pagerank_delta()
        single = FunctionalGraphPulse(graph, spec).run()
        parallel = ParallelSlicedGraphPulse(
            contiguous_partition(graph, num_slices), spec
        ).run()
        assert np.allclose(parallel.values, single.values, atol=1e-7)
        assert parallel.converged

    def test_sssp(self, graph):
        g = random_weights(graph, seed=12)
        root = int(np.argmax(g.out_degrees()))
        spec = algorithms.make_sssp(root=root)
        result = ParallelSlicedGraphPulse(
            contiguous_partition(g, 3), spec
        ).run()
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])
        assert np.all(np.isinf(result.values[~finite]))

    def test_cc_with_greedy_partition(self, graph):
        g = algorithms.symmetrize(graph)
        spec = algorithms.make_connected_components()
        result = ParallelSlicedGraphPulse(
            greedy_edge_cut_partition(g, 3), spec
        ).run()
        assert np.array_equal(
            result.values, algorithms.connected_components_reference(g)
        )

    def test_chain_across_accelerators(self):
        # every hop crosses an accelerator boundary: one super-round per
        # hop (network latency of one round per crossing)
        g = chain_graph(12)
        spec = algorithms.make_bfs(root=0)
        result = ParallelSlicedGraphPulse(
            contiguous_partition(g, 12), spec
        ).run()
        assert np.array_equal(result.values, algorithms.bfs_reference(g, 0))
        assert result.num_super_rounds >= 12

    def test_max_super_rounds_guard(self):
        g = chain_graph(12)
        spec = algorithms.make_bfs(root=0)
        with pytest.raises(RuntimeError, match="did not converge"):
            ParallelSlicedGraphPulse(
                contiguous_partition(g, 12), spec, max_super_rounds=2
            ).run()


class TestParallelismAccounting:
    def test_messages_counted(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = ParallelSlicedGraphPulse(
            contiguous_partition(graph, 4), spec
        ).run()
        assert result.total_messages > 0

    def test_single_slice_exchanges_nothing(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = ParallelSlicedGraphPulse(
            contiguous_partition(graph, 1), spec
        ).run()
        assert result.total_messages == 0

    def test_all_slices_do_work(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = ParallelSlicedGraphPulse(
            contiguous_partition(graph, 4), spec
        ).run()
        totals = [0, 0, 0, 0]
        for record in result.super_rounds:
            for i, count in enumerate(record.events_processed_per_slice):
                totals[i] += count
        assert all(t > 0 for t in totals)

    def test_load_balance_metric(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = ParallelSlicedGraphPulse(
            contiguous_partition(graph, 4), spec
        ).run()
        assert 0.0 < result.load_balance() <= 1.0

    def test_parallelism_reduces_sequential_rounds(self, graph):
        """The point of option (b): with N accelerators draining their
        queues concurrently, the number of sequential steps is far below
        the single-accelerator activation count of option (a)."""
        from repro.core import SlicedGraphPulse

        spec = algorithms.make_pagerank_delta()
        partition = contiguous_partition(graph, 4)
        serial = SlicedGraphPulse(
            partition, spec, rounds_per_activation=1
        ).run()
        parallel = ParallelSlicedGraphPulse(partition, spec).run()
        serial_steps = sum(a.rounds for a in serial.activations)
        assert parallel.num_super_rounds < serial_steps
