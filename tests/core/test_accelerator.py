"""Tests for the cycle-level GraphPulse accelerator model."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import (
    FunctionalGraphPulse,
    GraphPulseAccelerator,
    baseline_config,
    optimized_config,
)
from repro.graph import chain_graph, random_weights, rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(256, 1600, seed=31)


@pytest.fixture(scope="module")
def pr_result(graph):
    spec = algorithms.make_pagerank_delta()
    return GraphPulseAccelerator(graph, spec).run()


class TestCorrectness:
    def test_values_identical_to_functional_engine(self, graph, pr_result):
        functional = FunctionalGraphPulse(
            graph, algorithms.make_pagerank_delta()
        ).run()
        assert np.array_equal(pr_result.values, functional.values)
        assert pr_result.num_rounds == functional.num_rounds

    def test_values_match_reference(self, graph, pr_result):
        reference = algorithms.pagerank_reference(graph)
        assert np.allclose(pr_result.values, reference, atol=1e-4)

    def test_baseline_config_same_values(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = GraphPulseAccelerator(graph, spec, baseline_config()).run()
        assert np.allclose(
            result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )

    def test_sssp(self, graph):
        g = random_weights(graph, seed=6)
        root = int(np.argmax(g.out_degrees()))
        result = GraphPulseAccelerator(g, algorithms.make_sssp(root=root)).run()
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])

    def test_cc(self, graph):
        g = algorithms.symmetrize(graph)
        result = GraphPulseAccelerator(
            g, algorithms.make_connected_components()
        ).run()
        assert np.array_equal(
            result.values, algorithms.connected_components_reference(g)
        )


class TestTiming:
    def test_cycles_positive_and_converged(self, pr_result):
        assert pr_result.total_cycles > 0
        assert pr_result.converged

    def test_optimizations_speed_things_up(self, graph):
        # Figure 10: the optimized design beats the Section-IV baseline
        spec = algorithms.make_pagerank_delta()
        optimized = GraphPulseAccelerator(graph, spec).run()
        baseline = GraphPulseAccelerator(graph, spec, baseline_config()).run()
        assert optimized.total_cycles < baseline.total_cycles

    def test_seconds_follow_clock(self, graph):
        spec = algorithms.make_pagerank_delta()
        fast = GraphPulseAccelerator(
            graph, spec, optimized_config(clock_ghz=2.0)
        ).run()
        assert fast.seconds == pytest.approx(
            fast.total_cycles * 0.5e-9
        )

    def test_more_rounds_than_zero(self, pr_result):
        assert pr_result.num_rounds >= 1

    def test_rounds_monotonic_time(self, graph):
        # a tighter global threshold must not make the run longer
        spec = algorithms.make_pagerank_delta()
        full = GraphPulseAccelerator(graph, spec).run()
        early = GraphPulseAccelerator(
            graph, spec, global_threshold=1e-2
        ).run()
        assert early.total_cycles <= full.total_cycles


class TestProfiles:
    def test_stage_profile_covers_all_events(self, pr_result):
        assert pr_result.stage_profile.events == pr_result.events_processed

    def test_stage_averages_positive(self, pr_result):
        per_event = pr_result.stage_profile.per_event()
        assert per_event["process"] == pytest.approx(4.0)
        assert per_event["vertex_mem"] > 0
        assert per_event["generate"] > 0

    def test_occupancy_fractions_sum_to_one(self, pr_result):
        cfg = pr_result.config
        proc = pr_result.occupancy.processor_fractions(
            pr_result.total_cycles, cfg.num_processors
        )
        gen = pr_result.occupancy.generator_fractions(
            pr_result.total_cycles, cfg.total_generation_streams
        )
        assert sum(proc.values()) == pytest.approx(1.0)
        assert sum(gen.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in proc.values())
        assert all(0.0 <= v <= 1.0 for v in gen.values())


class TestTraffic:
    def test_offchip_traffic_recorded(self, pr_result):
        assert pr_result.offchip_bytes > 0
        assert pr_result.dram_stats.get("vertex_bytes", 0) > 0
        assert pr_result.dram_stats.get("edge_bytes", 0) > 0

    def test_utilization_in_unit_range(self, pr_result):
        assert 0.0 < pr_result.data_utilization() <= 1.0

    def test_prefetch_reduces_vertex_traffic(self, graph):
        # block prefetch shares vertex lines; the baseline refetches per
        # event
        spec = algorithms.make_pagerank_delta()
        optimized = GraphPulseAccelerator(graph, spec).run()
        baseline = GraphPulseAccelerator(graph, spec, baseline_config()).run()
        assert (
            optimized.dram_stats["vertex_bytes"]
            < baseline.dram_stats["vertex_bytes"]
        )

    def test_queue_stats_reported(self, pr_result):
        assert pr_result.queue_stats["inserted"] > 0
        assert pr_result.queue_stats["drained"] == pr_result.events_processed


class TestQueueCapacity:
    def test_too_large_graph_rejected(self):
        g = chain_graph(100)
        spec = algorithms.make_bfs(root=0)
        with pytest.raises(ValueError, match="slices"):
            GraphPulseAccelerator(
                g, spec, optimized_config(queue_capacity_events=50)
            )
