"""Tests for accelerator configurations (Table III)."""

import pytest

from repro.core import GraphPulseConfig, baseline_config, optimized_config


class TestStandardConfigs:
    def test_optimized_matches_table_iii(self):
        cfg = optimized_config()
        assert cfg.num_processors == 8
        assert cfg.clock_ghz == 1.0
        assert cfg.prefetch_enabled
        assert cfg.parallel_generation_enabled
        assert cfg.generation_streams_per_processor == 4
        assert cfg.total_generation_streams == 32
        assert cfg.num_bins == 64
        assert cfg.dram.num_channels == 4

    def test_baseline_matches_section_iv(self):
        cfg = baseline_config()
        assert cfg.num_processors == 256
        assert not cfg.prefetch_enabled
        assert not cfg.parallel_generation_enabled
        assert cfg.total_generation_streams == 256  # inline generation

    def test_overrides(self):
        cfg = optimized_config(num_processors=16, num_bins=128)
        assert cfg.num_processors == 16
        assert cfg.num_bins == 128
        # other fields retain their defaults
        assert cfg.prefetch_enabled

    def test_with_overrides_returns_copy(self):
        cfg = optimized_config()
        other = cfg.with_overrides(clock_ghz=2.0)
        assert cfg.clock_ghz == 1.0
        assert other.clock_ghz == 2.0

    def test_seconds_per_cycle(self):
        assert optimized_config().seconds_per_cycle() == pytest.approx(1e-9)
        assert optimized_config(clock_ghz=2.0).seconds_per_cycle() == (
            pytest.approx(0.5e-9)
        )


class TestValidation:
    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            GraphPulseConfig(num_processors=0)

    def test_rejects_zero_streams(self):
        with pytest.raises(ValueError):
            GraphPulseConfig(generation_streams_per_processor=0)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            GraphPulseConfig(num_bins=0)

    def test_rejects_zero_drain_rate(self):
        with pytest.raises(ValueError):
            GraphPulseConfig(drain_events_per_cycle=0)
