"""Tests for the functional GraphPulse engine (Algorithm 1 semantics)."""

import math

import numpy as np
import pytest

from repro import algorithms
from repro.core import FunctionalGraphPulse
from repro.graph import (
    chain_graph,
    grid_graph,
    random_weights,
    rmat_graph,
    star_graph,
)


def run(graph, spec, **kwargs):
    return FunctionalGraphPulse(graph, spec, **kwargs).run()


class TestCorrectness:
    """Converged values must match the golden references."""

    @pytest.fixture(scope="class")
    def power_law(self):
        return rmat_graph(400, 2400, seed=21)

    def test_pagerank(self, power_law):
        spec = algorithms.make_pagerank_delta()
        result = run(power_law, spec)
        reference = algorithms.pagerank_reference(power_law)
        assert np.allclose(result.values, reference, atol=1e-4)
        assert result.converged

    def test_pagerank_on_chain(self):
        g = chain_graph(50)
        result = run(g, algorithms.make_pagerank_delta())
        assert np.allclose(
            result.values, algorithms.pagerank_reference(g), atol=1e-6
        )

    def test_sssp(self, power_law):
        g = random_weights(power_law, seed=3)
        root = int(np.argmax(g.out_degrees()))
        result = run(g, algorithms.make_sssp(root=root))
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])
        assert np.all(np.isinf(result.values[~finite]))

    def test_sssp_on_grid(self):
        g = random_weights(grid_graph(8, 8), seed=5)
        result = run(g, algorithms.make_sssp(root=0))
        assert np.allclose(result.values, algorithms.sssp_reference(g, 0))

    def test_bfs(self, power_law):
        root = int(np.argmax(power_law.out_degrees()))
        result = run(power_law, algorithms.make_bfs(root=root))
        reference = algorithms.bfs_reference(power_law, root)
        assert np.array_equal(
            np.nan_to_num(result.values, posinf=-1),
            np.nan_to_num(reference, posinf=-1),
        )

    def test_bfs_reachability(self):
        g = chain_graph(10)
        result = run(g, algorithms.make_bfs_reachability(root=4))
        assert np.all(result.values[4:] == 0.0)
        assert np.all(np.isinf(result.values[:4]))

    def test_cc(self, power_law):
        g = algorithms.symmetrize(power_law)
        result = run(g, algorithms.make_connected_components())
        reference = algorithms.connected_components_reference(g)
        assert np.array_equal(result.values, reference)

    def test_adsorption(self, power_law):
        g = algorithms.normalize_inbound_weights(
            random_weights(power_law, seed=4)
        )
        spec = algorithms.make_adsorption(g)
        result = run(g, spec)
        reference = algorithms.adsorption_reference(
            g, algorithms.injection_values(g)
        )
        assert np.allclose(result.values, reference, atol=1e-4)

    @pytest.mark.parametrize("num_bins", [1, 7, 64, 256])
    def test_bin_count_does_not_change_fixed_point(self, num_bins):
        g = rmat_graph(200, 1000, seed=8)
        result = run(
            g, algorithms.make_pagerank_delta(), num_bins=num_bins,
            block_size=4,
        )
        assert np.allclose(
            result.values, algorithms.pagerank_reference(g), atol=1e-4
        )


class TestEventAccounting:
    def test_coalescing_eliminates_events_on_power_law(self):
        # Figure 4's headline: most events coalesce away on skewed graphs
        g = rmat_graph(500, 5000, seed=13)
        result = run(g, algorithms.make_pagerank_delta())
        assert result.coalesce_rate() > 0.5

    def test_round_records_sum_to_totals(self):
        g = rmat_graph(300, 1500, seed=14)
        result = run(g, algorithms.make_pagerank_delta())
        assert (
            sum(r.events_processed for r in result.rounds)
            == result.total_events_processed
        )

    def test_queue_drains_to_zero(self):
        g = rmat_graph(300, 1500, seed=15)
        result = run(g, algorithms.make_pagerank_delta())
        assert result.rounds[-1].queue_size_after == 0

    def test_event_population_declines(self):
        # "The event population eventually declines as the computation
        # converges"
        g = rmat_graph(500, 3000, seed=16)
        result = run(g, algorithms.make_pagerank_delta())
        first = result.rounds[0].events_remaining
        last = result.rounds[-2].events_remaining if len(result.rounds) > 1 else 0
        assert last < first

    def test_star_coalesces_hub_events(self):
        # all leaves write to the hub: every hub event after the first
        # coalesces within a round
        g = algorithms.symmetrize(star_graph(64, outward=True))
        result = run(g, algorithms.make_connected_components())
        assert result.total_events_produced > result.total_events_processed


class TestLookahead:
    def test_lookahead_tracked_when_enabled(self):
        g = rmat_graph(400, 2400, seed=17)
        result = run(
            g, algorithms.make_pagerank_delta(), track_lookahead=True,
            num_bins=64, block_size=4,
        )
        merged = {}
        for r in result.rounds:
            for bucket, count in r.lookahead_histogram.items():
                merged[bucket] = merged.get(bucket, 0) + count
        assert merged  # something was recorded
        assert sum(merged.values()) == result.total_events_processed

    def test_lookahead_exists_on_multi_bin_queue(self):
        # events generated into later bins are consumed the same round:
        # their generation exceeds the round index
        g = rmat_graph(400, 2400, seed=18)
        result = run(
            g, algorithms.make_pagerank_delta(), track_lookahead=True,
            num_bins=32, block_size=2,
        )
        merged = {}
        for r in result.rounds:
            for bucket, count in r.lookahead_histogram.items():
                merged[bucket] = merged.get(bucket, 0) + count
        ahead = sum(v for k, v in merged.items() if k != "0")
        assert ahead > 0

    def test_disabled_by_default(self):
        g = chain_graph(10)
        result = run(g, algorithms.make_pagerank_delta())
        assert all(not r.lookahead_histogram for r in result.rounds)


class TestTrafficCounters:
    def test_reads_match_processed_events(self):
        g = rmat_graph(300, 1800, seed=19)
        result = run(g, algorithms.make_pagerank_delta())
        assert result.traffic.vertex_reads == result.total_events_processed

    def test_writes_do_not_exceed_reads(self):
        g = rmat_graph(300, 1800, seed=19)
        result = run(g, algorithms.make_pagerank_delta())
        assert result.traffic.vertex_writes <= result.traffic.vertex_reads

    def test_utilization_in_unit_range(self):
        g = rmat_graph(300, 1800, seed=20)
        result = run(g, algorithms.make_pagerank_delta())
        assert 0.0 < result.traffic.utilization() <= 1.0

    def test_useful_bytes_bounded_by_fetched(self):
        g = rmat_graph(300, 1800, seed=20)
        t = run(g, algorithms.make_pagerank_delta()).traffic
        assert t.vertex_bytes_useful <= t.vertex_bytes_fetched
        assert t.edge_bytes_useful <= t.edge_bytes_fetched

    def test_round_bytes_sum_to_total(self):
        g = rmat_graph(300, 1800, seed=22)
        result = run(g, algorithms.make_pagerank_delta())
        per_round = sum(r.offchip_bytes for r in result.rounds)
        assert per_round == result.traffic.total_bytes_fetched


class TestTermination:
    def test_global_threshold_stops_early(self):
        g = rmat_graph(400, 2400, seed=23)
        free_run = run(g, algorithms.make_pagerank_delta(threshold=1e-12))
        capped = run(
            g,
            algorithms.make_pagerank_delta(threshold=1e-12),
            global_threshold=1e-3,
        )
        assert capped.num_rounds < free_run.num_rounds
        assert capped.converged

    def test_max_rounds_guard(self):
        # a single-bin queue defeats lookahead: BFS on a chain needs one
        # round per hop, so a 1-round cap must trip the guard
        g = chain_graph(64)
        with pytest.raises(RuntimeError, match="did not converge"):
            FunctionalGraphPulse(
                g, algorithms.make_bfs(root=0), num_bins=1,
                block_size=1, max_rounds=1,
            ).run()

    def test_convergence_exactly_at_max_rounds_is_not_an_error(self):
        # regression: a run finishing in its last allowed round converges
        g = chain_graph(8)
        spec = algorithms.make_bfs(root=0)
        probe = FunctionalGraphPulse(g, spec, num_bins=1, block_size=1).run()
        result = FunctionalGraphPulse(
            g, spec, num_bins=1, block_size=1, max_rounds=probe.num_rounds
        ).run()
        assert result.converged

    def test_empty_graph_converges_immediately(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(4, [])
        result = run(g, algorithms.make_bfs(root=0))
        assert result.converged
        assert result.values[0] == 0.0
