"""Unit tests for the event abstraction."""

import pytest

from repro.core import Event


class TestCoalescing:
    def test_sum_coalescing(self):
        a = Event(vertex=3, delta=1.5, generation=2, ready=10)
        b = Event(vertex=3, delta=0.5, generation=5, ready=4)
        merged = a.coalesced_with(b, lambda x, y: x + y)
        assert merged.vertex == 3
        assert merged.delta == 2.0
        assert merged.generation == 5  # max of the two
        assert merged.ready == 10  # max of the two

    def test_min_coalescing(self):
        a = Event(vertex=0, delta=7.0)
        b = Event(vertex=0, delta=3.0)
        assert a.coalesced_with(b, min).delta == 3.0

    def test_mismatched_vertices_rejected(self):
        a = Event(vertex=0, delta=1.0)
        b = Event(vertex=1, delta=1.0)
        with pytest.raises(ValueError, match="cannot coalesce"):
            a.coalesced_with(b, min)

    def test_defaults(self):
        e = Event(vertex=1, delta=0.5)
        assert e.generation == 0
        assert e.ready == 0
