"""Typed queue-capacity errors and the auto-slicing remedy."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import CoalescingQueue, SlicedGraphPulse, run_sliced
from repro.core.slicing import contiguous_partition
from repro.errors import QueueCapacityError
from repro.graph import erdos_renyi_graph


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(200, 1200, seed=5)


class TestQueueCapacityError:
    def test_queue_raises_typed_error(self):
        with pytest.raises(QueueCapacityError) as info:
            CoalescingQueue(100, min, capacity_vertices=64)
        error = info.value
        assert error.num_vertices == 100
        assert error.capacity == 64
        assert error.required_slices == 2
        assert "at least 2 slices" in str(error)

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            CoalescingQueue(100, min, capacity_vertices=64)

    def test_required_slices_is_a_ceiling(self):
        assert QueueCapacityError(300, 50).required_slices == 6
        assert QueueCapacityError(301, 50).required_slices == 7
        assert QueueCapacityError(50, 50).required_slices == 1

    def test_sliced_runner_checks_slice_sizes(self, graph):
        spec = algorithms.make_pagerank_delta()
        partition = contiguous_partition(graph, 2)
        with pytest.raises(QueueCapacityError) as info:
            SlicedGraphPulse(partition, spec, queue_capacity=60)
        assert info.value.required_slices == 4  # ceil(200 / 60)


class TestAutoSlice:
    def test_auto_slice_repartitions_and_converges(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = run_sliced(graph, spec, num_slices=2, queue_capacity=60)
        reference = run_sliced(graph, spec, num_slices=4)
        assert result.converged
        # auto-slice lands on the minimum fitting slice count, so the
        # schedules (and therefore the values) match a manual 4-way run
        assert np.array_equal(result.values, reference.values)

    def test_auto_slice_disabled_raises(self, graph):
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(QueueCapacityError):
            run_sliced(
                graph, spec, num_slices=2, queue_capacity=60,
                auto_slice=False,
            )

    def test_sufficient_capacity_keeps_requested_slices(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = run_sliced(graph, spec, num_slices=2, queue_capacity=100)
        reference = run_sliced(graph, spec, num_slices=2)
        assert np.array_equal(result.values, reference.values)
