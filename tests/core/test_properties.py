"""Property-based tests of the event-driven execution core.

The central invariant of the paper's model: for algorithms satisfying
the Reordering + Simplification properties, *any* execution order —
synchronous, asynchronous, coalesced, sliced — converges to the same
fixed point.  Hypothesis generates random graphs and checks the engines
against a naive worklist oracle and against each other.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import algorithms
from repro.baselines import SynchronousDeltaEngine
from repro.core import CoalescingQueue, Event, FunctionalGraphPulse, SlicedGraphPulse
from repro.graph import CSRGraph, contiguous_partition


@st.composite
def small_graphs(draw, max_vertices=24, max_edges=80):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            max_size=max_edges,
            unique=True,
        )
    )
    return CSRGraph.from_edges(n, edges)


def naive_worklist_fixed_point(graph, spec):
    """Oracle: uncoalesced FIFO worklist, one event per edge, no bins."""
    from collections import deque

    state = spec.initial_state(graph)
    queue = deque(
        Event(vertex=v, delta=d)
        for v, d in spec.initial_events(graph).items()
    )
    steps = 0
    while queue:
        steps += 1
        if steps > 2_000_000:  # pragma: no cover - degenerate inputs
            raise RuntimeError("oracle did not converge")
        event = queue.popleft()
        result = spec.apply(float(state[event.vertex]), event.delta)
        if not result.changed:
            continue
        state[event.vertex] = result.state
        if not spec.should_propagate(result.change):
            continue
        u = event.vertex
        degree = graph.out_degree(u)
        weights = graph.edge_weights(u) if spec.uses_weights else None
        for k, dst in enumerate(graph.neighbors(u).tolist()):
            w = float(weights[k]) if weights is not None else 1.0
            delta = spec.propagate(result.change, u, dst, w, degree)
            if delta != spec.identity:
                queue.append(Event(vertex=dst, delta=delta))
    return state


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_coalesced_engine_matches_uncoalesced_oracle_bfs(graph):
    spec = algorithms.make_bfs(root=0)
    oracle = naive_worklist_fixed_point(graph, spec)
    result = FunctionalGraphPulse(graph, spec, num_bins=4, block_size=2).run()
    finite = np.isfinite(oracle)
    assert np.array_equal(result.values[finite], oracle[finite])
    assert np.all(np.isinf(result.values[~finite]))


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_coalesced_engine_matches_uncoalesced_oracle_cc(graph):
    spec = algorithms.make_connected_components()
    oracle = naive_worklist_fixed_point(graph, spec)
    result = FunctionalGraphPulse(graph, spec, num_bins=4, block_size=2).run()
    assert np.array_equal(result.values, oracle)


@st.composite
def small_dags(draw, max_vertices=10, max_edges=24):
    """Random DAG: edges only from lower to higher ids.

    On a DAG, PageRank-Delta with a zero threshold terminates without
    coalescing (no feedback loops), so the uncoalesced oracle computes
    the *exact* fixed point — a threshold on a cyclic graph makes the
    oracle lose sub-threshold mass that coalescing would have compounded
    (the paper's Figure 7 effect), so cyclic exact comparison is
    impossible by construction.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] < e[1]),
            max_size=max_edges,
            unique=True,
        )
    )
    return CSRGraph.from_edges(n, edges)


@given(small_dags())
@settings(max_examples=30, deadline=None)
def test_coalesced_engine_matches_uncoalesced_oracle_pagerank(graph):
    spec = algorithms.make_pagerank_delta(threshold=0.0)
    oracle = naive_worklist_fixed_point(graph, spec)
    result = FunctionalGraphPulse(graph, spec, num_bins=4, block_size=2).run()
    assert np.allclose(result.values, oracle, atol=1e-9)
    # and both equal the classical power-iteration fixed point
    assert np.allclose(
        result.values, algorithms.pagerank_reference(graph), atol=1e-6
    )


@given(small_graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_sliced_equals_unsliced(graph, num_slices):
    num_slices = min(num_slices, graph.num_vertices)
    spec = algorithms.make_connected_components()
    whole = FunctionalGraphPulse(graph, spec).run()
    sliced = SlicedGraphPulse(
        contiguous_partition(graph, num_slices), spec
    ).run()
    assert np.array_equal(whole.values, sliced.values)


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_async_equals_bsp(graph):
    spec = algorithms.make_bfs(root=0)
    async_result = FunctionalGraphPulse(graph, spec).run()
    sync_result = SynchronousDeltaEngine(graph, spec).run()
    both_finite = np.isfinite(async_result.values) == np.isfinite(
        sync_result.values
    )
    assert np.all(both_finite)
    finite = np.isfinite(sync_result.values)
    assert np.array_equal(
        async_result.values[finite], sync_result.values[finite]
    )


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_queue_conserves_delta_mass(inserts):
    """For an additive reduce, the sum of all drained payloads equals
    the sum of all inserted payloads, regardless of coalescing."""
    queue = CoalescingQueue(64, lambda a, b: a + b, num_bins=4, block_size=4)
    for vertex, delta in inserts:
        queue.insert(Event(vertex=vertex, delta=delta))
    drained = queue.drain_all()
    assert queue.is_empty
    assert math.isclose(
        sum(e.delta for e in drained),
        sum(d for _, d in inserts),
        rel_tol=1e-9,
        abs_tol=1e-9,
    )
    # exactly one drained event per distinct vertex
    vertices = [e.vertex for e in drained]
    assert len(vertices) == len(set(vertices))
    assert set(vertices) == {v for v, _ in inserts}


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.integers(min_value=0, max_value=100),  # ready time
        ),
        min_size=1,
        max_size=100,
    ),
    st.integers(min_value=0, max_value=120),
)
@settings(max_examples=60, deadline=None)
def test_ready_split_drains_are_a_partition(inserts, before):
    """Draining with a ready cutoff then draining the rest yields each
    inserted contribution exactly once (min-reduce: the min survives)."""
    queue = CoalescingQueue(32, min, num_bins=4, block_size=4)
    for vertex, delta, ready in inserts:
        queue.insert(Event(vertex=vertex, delta=delta, ready=ready))
    early = {}
    for b in range(queue.num_bins):
        for e in queue.drain_bin(b, before=before):
            early[e.vertex] = e.delta
    late = {e.vertex: e.delta for e in queue.drain_all()}
    assert queue.is_empty
    # each contribution landed in exactly the bucket its ready time says
    for vertex, delta, ready in inserts:
        bucket = early if ready <= before else late
        assert vertex in bucket
        assert bucket[vertex] <= delta  # min-reduce can only improve
    # per-vertex minimum over all contributions survives across buckets
    for vertex in {v for v, _, _ in inserts}:
        overall = min(d for v, d, _ in inserts if v == vertex)
        candidates = [b[vertex] for b in (early, late) if vertex in b]
        assert min(candidates) == overall
