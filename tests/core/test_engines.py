"""Tests for the Engine API: registry, RunResult schema, cross-engine
bit-identity.

Every engine is constructed exclusively through ``build_engine`` here —
the same path the CLI, the crash harness and the benchmarks use — so
these tests pin the one construction/result contract everything else
relies on.
"""

import json

import numpy as np
import pytest

from repro import algorithms
from repro.core import (
    RUN_RESULT_SCHEMA,
    RUN_RESULT_SCHEMA_VERSION,
    BspOptions,
    RunResult,
    SlicedMpOptions,
    SlicedOptions,
    build_engine,
    engine_names,
    engine_spec,
    resilient_engine_names,
    resumable_engine_names,
    validate_run_result,
)
from repro.errors import ReproError
from repro.graph import erdos_renyi_graph, random_weights, rmat_graph
from repro.resilience import ResilienceConfig

ALL_ENGINES = (
    "functional",
    "cycle",
    "sliced",
    "sliced-mp",
    "sliced-hosts",
    "parallel-sliced",
    "bsp",
    "ligra",
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(250, 1500, seed=11)


@pytest.fixture(scope="module")
def small_graph():
    return erdos_renyi_graph(120, 700, seed=5)


def _options(engine, tmp_path=None):
    if engine in ("sliced", "parallel-sliced"):
        return {"num_slices": 3}
    if engine == "sliced-mp":
        return {"num_slices": 3, "num_workers": 2}
    if engine == "sliced-hosts":
        # a virgin substrate dir per call; constructing without one is
        # itself an error the registry tests exercise
        hosts = tmp_path / "hosts" if tmp_path is not None else None
        return {"num_slices": 3, "hosts_dir": hosts, "lease_timeout": 1.0}
    return {}


class TestRegistry:
    def test_all_engines_registered(self):
        assert set(ALL_ENGINES) <= set(engine_names())

    def test_unknown_engine_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(ReproError, match="unknown engine"):
            build_engine("warp-drive", (graph, spec))

    def test_unknown_option_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(ReproError, match="does not accept option"):
            build_engine("bsp", (graph, spec), {"num_slices": 2})

    def test_resilience_refused_by_nonresilient_engines(self, graph):
        spec = algorithms.make_pagerank_delta()
        config = ResilienceConfig()
        for engine in ("bsp", "ligra", "parallel-sliced"):
            with pytest.raises(ReproError, match="does not support"):
                build_engine(
                    engine,
                    (graph, spec),
                    _options(engine),
                    resilience=config,
                )

    def test_capability_flags(self):
        resilient = set(resilient_engine_names())
        assert resilient == {"functional", "cycle", "sliced", "sliced-mp"}
        resumable = set(resumable_engine_names())
        assert resumable == {"functional", "cycle", "sliced", "sliced-mp"}

    def test_resumable_flag_matches_runner_restore(self, small_graph, tmp_path):
        """The registry flag must be truthful: every resumable engine's
        runner exposes ``restore()`` and no non-resumable engine does.
        In particular parallel-sliced stays excluded from crash-resume
        coverage — its mid-super-round in-flight accelerator buffers
        have no durable-queue representation (see the registration
        comment in core/engines.py)."""
        spec = algorithms.make_pagerank_delta()
        resumable = set(resumable_engine_names())
        for name in engine_names():
            handle = build_engine(
                name, (small_graph, spec), _options(name, tmp_path)
            )
            has_restore = callable(getattr(handle.runner, "restore", None))
            assert has_restore == (name in resumable), name
        assert "parallel-sliced" not in resumable

    def test_engine_spec_lookup(self):
        spec = engine_spec("sliced-mp")
        assert spec.resilient and spec.resumable
        assert spec.description


class TestRunResultSchema:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_payload_validates_for_every_engine(self, graph, engine, tmp_path):
        spec = algorithms.make_pagerank_delta()
        result = build_engine(
            engine, (graph, spec), _options(engine, tmp_path)
        ).run()
        assert isinstance(result, RunResult)
        payload = result.to_json()
        validate_run_result(payload)  # raises on any schema violation
        assert payload["engine"] == engine
        assert payload["converged"] is True
        json.dumps(payload)  # JSON-serializable as-is
        assert result.values.dtype == np.float64
        assert result.raw is not None

    def test_validation_catches_missing_key(self):
        payload = {key: None for key in RUN_RESULT_SCHEMA}
        payload.update(engine="functional", converged=True, stats={})
        del payload["rounds"]
        with pytest.raises(ValueError, match="missing"):
            validate_run_result(payload)

    def test_validation_catches_extra_key(self):
        payload = {
            "schema_version": RUN_RESULT_SCHEMA_VERSION,
            "engine": "bsp",
            "converged": True,
            "rounds": 3,
            "passes": None,
            "stats": {},
            "resilience": None,
            "options": None,
            "surprise": 1,
        }
        with pytest.raises(ValueError, match="unexpected"):
            validate_run_result(payload)

    def test_validation_catches_wrong_type(self):
        payload = {
            "schema_version": RUN_RESULT_SCHEMA_VERSION,
            "engine": "bsp",
            "converged": "yes",
            "rounds": 3,
            "passes": None,
            "stats": {},
            "resilience": None,
            "options": None,
        }
        with pytest.raises(ValueError, match="converged"):
            validate_run_result(payload)

    def test_validation_catches_wrong_schema_version(self):
        payload = {
            "schema_version": RUN_RESULT_SCHEMA_VERSION + 1,
            "engine": "bsp",
            "converged": True,
            "rounds": 3,
            "passes": None,
            "stats": {},
            "resilience": None,
            "options": None,
        }
        with pytest.raises(ValueError, match="schema_version"):
            validate_run_result(payload)

    @staticmethod
    def _mp_payload():
        worker_stats = [
            {
                "worker": w,
                "activations": 2,
                "events_drained": 10,
                "rounds": 5,
                "barrier_wait_rounds": 5,
                "journal_replays": 0,
                "lease_recoveries": 0,
            }
            for w in range(2)
        ]
        return {
            "schema_version": RUN_RESULT_SCHEMA_VERSION,
            "engine": "sliced-mp",
            "converged": True,
            "rounds": 10,
            "passes": 4,
            "stats": {
                "events_processed": 20,
                "spill_bytes": 0,
                "spill_overhead": 0.0,
                "workers": 2,
                "recoveries": 0,
                "max_inflight": 2,
                "worker_stats": worker_stats,
            },
            "resilience": None,
            "options": None,
        }

    def test_sliced_mp_requires_worker_stats(self):
        payload = self._mp_payload()
        validate_run_result(payload)  # complete payload passes
        del payload["stats"]["worker_stats"]
        with pytest.raises(ValueError, match="worker_stats"):
            validate_run_result(payload)

    def test_sliced_mp_worker_stats_length_must_match_workers(self):
        payload = self._mp_payload()
        payload["stats"]["worker_stats"].pop()
        with pytest.raises(ValueError, match="worker_stats"):
            validate_run_result(payload)

    def test_sliced_mp_worker_entry_missing_key_rejected(self):
        payload = self._mp_payload()
        del payload["stats"]["worker_stats"][1]["barrier_wait_rounds"]
        with pytest.raises(ValueError, match="barrier_wait_rounds"):
            validate_run_result(payload)

    def test_sliced_mp_worker_entry_wrong_type_rejected(self):
        payload = self._mp_payload()
        payload["stats"]["worker_stats"][0]["events_drained"] = "many"
        with pytest.raises(ValueError, match="events_drained"):
            validate_run_result(payload)

    def test_other_engines_do_not_require_worker_stats(self):
        payload = {
            "schema_version": RUN_RESULT_SCHEMA_VERSION,
            "engine": "sliced",
            "converged": True,
            "rounds": 10,
            "passes": 4,
            "stats": {"events_processed": 20},
            "resilience": None,
            "options": None,
        }
        validate_run_result(payload)


class TestEngineOptions:
    """The typed options API: coercion, validation, and the echo."""

    def test_dict_input_is_coerced_and_echoed(self, graph):
        spec = algorithms.make_pagerank_delta()
        handle = build_engine(
            "sliced-mp", (graph, spec), {"num_slices": 3, "num_workers": 2}
        )
        assert isinstance(handle.options, SlicedMpOptions)
        assert handle.options.num_slices == 3
        assert handle.options.num_workers == 2
        assert handle.options.dispatch == "barrier"
        payload = handle.run().to_json()
        validate_run_result(payload)
        echoed = payload["options"]
        assert echoed["num_workers"] == 2
        assert echoed["dispatch"] == "barrier"
        # callables echo by name, so the payload stays JSON-serializable
        assert echoed["partition_fn"] == "contiguous_partition"
        json.dumps(payload)

    def test_typed_instance_accepted_directly(self, graph):
        spec = algorithms.make_pagerank_delta()
        options = SlicedOptions(num_slices=3, dispatch="chained")
        handle = build_engine("sliced", (graph, spec), options)
        assert handle.options is options
        from_dict = build_engine(
            "sliced",
            (graph, spec),
            {"num_slices": 3, "dispatch": "chained"},
        )
        assert (
            handle.run().values.tobytes()
            == from_dict.run().values.tobytes()
        )

    def test_wrong_options_class_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(ReproError, match="takes BspOptions"):
            build_engine("bsp", (graph, spec), SlicedOptions(num_slices=2))

    def test_wrong_field_type_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(ReproError, match="should be int"):
            build_engine(
                "sliced-mp",
                (graph, spec),
                {"num_slices": 3, "num_workers": "two"},
            )

    def test_bad_dispatch_value_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(ReproError, match="dispatch"):
            build_engine(
                "sliced", (graph, spec), {"num_slices": 2, "dispatch": "zig"}
            )

    def test_defaults_resolve_without_config(self, graph):
        spec = algorithms.make_pagerank_delta()
        handle = build_engine("bsp", (graph, spec))
        assert isinstance(handle.options, BspOptions)
        assert handle.options.max_iterations == 100_000

    def test_options_are_frozen(self):
        options = SlicedOptions(num_slices=2)
        with pytest.raises(AttributeError):
            options.num_slices = 4


class TestCrossEngineIdentity:
    """All engines compute the same fixed point on the same workload."""

    @pytest.mark.parametrize("fixture", ["graph", "small_graph"])
    def test_pagerank_matches_functional_reference(
        self, fixture, request, tmp_path
    ):
        g = request.getfixturevalue(fixture)
        reference = algorithms.pagerank_reference(g)
        for engine in ALL_ENGINES:
            result = build_engine(
                engine,
                (g, algorithms.make_pagerank_delta()),
                _options(engine, tmp_path / engine),
            ).run()
            assert np.allclose(result.values, reference, atol=1e-4), engine
            assert result.converged, engine

    @pytest.mark.parametrize("fixture", ["graph", "small_graph"])
    def test_sssp_exact_across_engines(self, fixture, request, tmp_path):
        g = random_weights(request.getfixturevalue(fixture), seed=7)
        root = int(np.argmax(g.out_degrees()))
        spec = algorithms.make_sssp(root=root)
        reference = algorithms.sssp_reference(g, root)
        for engine in ALL_ENGINES:
            result = build_engine(
                engine, (g, spec), _options(engine, tmp_path / engine)
            ).run()
            finite = np.isfinite(reference)
            assert np.array_equal(
                result.values[finite], reference[finite]
            ), engine
            assert np.array_equal(
                np.isfinite(result.values), finite
            ), engine

    def test_sliced_mp_bit_identical_to_sliced(self, graph):
        spec = algorithms.make_pagerank_delta()
        sequential = build_engine(
            "sliced", (graph, spec), {"num_slices": 3}
        ).run()
        parallel = build_engine(
            "sliced-mp", (graph, spec), {"num_slices": 3, "num_workers": 2}
        ).run()
        assert sequential.values.tobytes() == parallel.values.tobytes()
        assert sequential.passes == parallel.passes
        assert sequential.rounds == parallel.rounds
        assert (
            sequential.stats["spill_bytes"] == parallel.stats["spill_bytes"]
        )

    def test_sliced_hosts_bit_identical_to_sliced(self, graph, tmp_path):
        # sliced-hosts executes slices strictly in sequence (step k =
        # slice k % N), so its reference is the *chained* order, not
        # the barrier default
        spec = algorithms.make_pagerank_delta()
        sequential = build_engine(
            "sliced", (graph, spec), {"num_slices": 3, "dispatch": "chained"}
        ).run()
        hosted = build_engine(
            "sliced-hosts",
            (graph, spec),
            {
                "num_slices": 3,
                "hosts_dir": tmp_path / "hosts",
                "lease_timeout": 1.0,
            },
        ).run()
        assert sequential.values.tobytes() == hosted.values.tobytes()
        assert sequential.passes == hosted.passes
        assert sequential.rounds == hosted.rounds
        assert (
            sequential.stats["spill_bytes"] == hosted.stats["spill_bytes"]
        )
