"""Tests for the large-graph slicing runtime (Section IV-F)."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import SlicedGraphPulse
from repro.graph import (
    chain_graph,
    contiguous_partition,
    greedy_edge_cut_partition,
    random_weights,
    rmat_graph,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(300, 1800, seed=41)


class TestCorrectness:
    @pytest.mark.parametrize("num_slices", [1, 2, 3, 5])
    def test_pagerank_fixed_point_independent_of_slicing(
        self, graph, num_slices
    ):
        partition = contiguous_partition(graph, num_slices)
        result = SlicedGraphPulse(
            partition, algorithms.make_pagerank_delta()
        ).run()
        assert np.allclose(
            result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )
        assert result.converged

    def test_sssp_across_slices(self, graph):
        g = random_weights(graph, seed=7)
        root = int(np.argmax(g.out_degrees()))
        partition = contiguous_partition(g, 3)
        result = SlicedGraphPulse(partition, algorithms.make_sssp(root=root)).run()
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])
        assert np.all(np.isinf(result.values[~finite]))

    def test_cc_across_slices(self, graph):
        g = algorithms.symmetrize(graph)
        partition = contiguous_partition(g, 4)
        result = SlicedGraphPulse(
            partition, algorithms.make_connected_components()
        ).run()
        assert np.array_equal(
            result.values, algorithms.connected_components_reference(g)
        )

    def test_greedy_partition_also_correct(self, graph):
        partition = greedy_edge_cut_partition(graph, 3)
        result = SlicedGraphPulse(
            partition, algorithms.make_pagerank_delta()
        ).run()
        assert np.allclose(
            result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )

    def test_chain_crossing_every_slice(self):
        # worst case: the chain repeatedly crosses slice boundaries
        g = chain_graph(30)
        partition = contiguous_partition(g, 3)
        result = SlicedGraphPulse(partition, algorithms.make_bfs(root=0)).run()
        assert np.array_equal(
            result.values, algorithms.bfs_reference(g, 0)
        )


class TestSpillAccounting:
    def test_single_slice_never_spills(self, graph):
        partition = contiguous_partition(graph, 1)
        result = SlicedGraphPulse(
            partition, algorithms.make_pagerank_delta()
        ).run()
        # only the bootstrap events flow through the spill buffers
        assert result.spill_bytes_written == 0

    def test_more_slices_spill_more(self, graph):
        spec = algorithms.make_pagerank_delta()
        two = SlicedGraphPulse(contiguous_partition(graph, 2), spec).run()
        five = SlicedGraphPulse(contiguous_partition(graph, 5), spec).run()
        assert five.spill_bytes_written >= two.spill_bytes_written
        assert two.spill_bytes_written > 0

    def test_spill_overhead_fraction(self, graph):
        result = SlicedGraphPulse(
            contiguous_partition(graph, 3), algorithms.make_pagerank_delta()
        ).run()
        assert 0.0 < result.spill_overhead() < 1.0

    def test_activation_log(self, graph):
        result = SlicedGraphPulse(
            contiguous_partition(graph, 3), algorithms.make_pagerank_delta()
        ).run()
        assert result.num_passes >= 1
        processed = sum(a.events_processed for a in result.activations)
        assert processed == result.traffic.vertex_reads
        assert all(a.rounds >= 1 for a in result.activations)

    def test_better_partition_spills_less(self):
        # a clustered graph: greedy cut should spill fewer events than a
        # deliberately bad round-robin-style split
        g = algorithms.symmetrize(rmat_graph(200, 2400, seed=42))
        spec = algorithms.make_pagerank_delta()
        good = SlicedGraphPulse(greedy_edge_cut_partition(g, 2), spec).run()
        # contiguous on a permuted R-MAT is close to random
        bad_cut = contiguous_partition(g, 2)
        bad = SlicedGraphPulse(bad_cut, spec).run()
        if greedy_edge_cut_partition(g, 2).cut_fraction() < bad_cut.cut_fraction():
            assert good.spill_bytes_written <= bad.spill_bytes_written


class TestActivationCaps:
    def test_rounds_per_activation_cap_still_converges(self, graph):
        partition = contiguous_partition(graph, 3)
        capped = SlicedGraphPulse(
            partition,
            algorithms.make_pagerank_delta(),
            rounds_per_activation=1,
        ).run()
        assert np.allclose(
            capped.values, algorithms.pagerank_reference(graph), atol=1e-4
        )

    def test_max_passes_guard(self):
        # capping both rounds-per-activation and passes leaves the chain
        # unfinished, which must trip the guard rather than loop forever
        g = chain_graph(40)
        partition = contiguous_partition(g, 4)
        with pytest.raises(RuntimeError, match="did not converge"):
            SlicedGraphPulse(
                partition,
                algorithms.make_bfs(root=0),
                max_passes=1,
                rounds_per_activation=1,
            ).run()

    def test_one_pass_can_finish_a_chain_when_chained(self):
        # chained dispatch visits slices in order within a pass, so a
        # forward chain completes in a single pass (no spurious guard
        # trip)
        g = chain_graph(40)
        partition = contiguous_partition(g, 4)
        result = SlicedGraphPulse(
            partition,
            algorithms.make_bfs(root=0),
            max_passes=1,
            dispatch="chained",
        ).run()
        assert result.converged
        assert result.num_passes == 1

    def test_barrier_chain_needs_one_pass_per_slice(self):
        # under the barrier default outbound spills only become visible
        # at the next pass, so the same chain takes one pass per slice
        # hop — the documented chained -> barrier semantic difference
        g = chain_graph(40)
        partition = contiguous_partition(g, 4)
        result = SlicedGraphPulse(
            partition, algorithms.make_bfs(root=0), max_passes=10
        ).run()
        assert result.converged
        assert result.num_passes == 4
