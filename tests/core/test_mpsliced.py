"""Tests for the multi-process sliced runtime (leases, crash recovery).

The load-bearing property is *bit-identity with the sequential sliced
engine* — with and without a worker being SIGKILLed mid-pass, and for
every worker count.  Under the default barrier dispatch all workers
drain their slices concurrently within a pass and the supervisor merges
the buffered outbound spills in deterministic (slice, emission) order,
so every float64 of the final state (and the pass/round/spill
accounting) must match the sequential engine exactly.
"""

import os

import numpy as np
import pytest

from repro import algorithms
from repro.core import build_engine
from repro.core.mpsliced import (
    KILL_WORKER_ENV,
    MultiprocessSlicedGraphPulse,
    _parse_kill_spec,
)
from repro.core.slicing import resolve_partition
from repro.errors import LeaseHeldError, ReproError
from repro.graph import random_weights, rmat_graph
from repro.resilience import FaultPlan, ResilienceConfig
from repro.resilience.lease import SliceLease, lease_path

WORKLOAD = {"num_slices": 3, "num_workers": 2}


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(300, 1800, seed=41)


def _run_sequential(graph, spec):
    return build_engine("sliced", (graph, spec), {"num_slices": 3}).run()


class TestBitIdentity:
    def test_pagerank_matches_sequential_exactly(self, graph):
        spec = algorithms.make_pagerank_delta()
        sequential = _run_sequential(graph, spec)
        mp = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD)).run()
        assert mp.values.tobytes() == sequential.values.tobytes()
        assert mp.passes == sequential.passes
        assert mp.rounds == sequential.rounds
        assert mp.stats["spill_bytes"] == sequential.stats["spill_bytes"]
        assert mp.stats["workers"] == 2
        assert mp.stats["recoveries"] == 0

    def test_sssp_matches_sequential_exactly(self, graph):
        g = random_weights(graph, seed=7)
        root = int(np.argmax(g.out_degrees()))
        spec = algorithms.make_sssp(root=root)
        sequential = _run_sequential(g, spec)
        mp = build_engine("sliced-mp", (g, spec), dict(WORKLOAD)).run()
        assert mp.values.tobytes() == sequential.values.tobytes()

    def test_more_workers_than_slices_is_rejected(self, graph):
        # a typed error, never a silent clamp: every worker must own at
        # least one slice or the extras idle while costing spawn time
        spec = algorithms.make_pagerank_delta()
        with pytest.raises(ReproError, match="exceeds the slice count"):
            build_engine(
                "sliced-mp",
                (graph, spec),
                {"num_slices": 2, "num_workers": 16},
            )


class TestConcurrentDispatch:
    """The tentpole oracle: concurrency must never show in the bits."""

    ALGORITHM_SET = ("pagerank", "bfs", "cc", "sssp", "adsorption")

    @pytest.fixture(scope="class")
    def workloads(self):
        from repro.analysis import prepare_workload

        return {
            name: prepare_workload("WG", name, scale=0.03)
            for name in self.ALGORITHM_SET
        }

    @pytest.mark.parametrize("algorithm", ALGORITHM_SET)
    def test_worker_matrix_bit_identical(self, workloads, algorithm):
        graph, spec = workloads[algorithm]
        sequential = build_engine(
            "sliced", (graph, spec), {"num_slices": 4}
        ).run()
        for workers in (1, 2, 4):
            mp = build_engine(
                "sliced-mp",
                (graph, spec),
                {"num_slices": 4, "num_workers": workers},
            ).run()
            label = (algorithm, workers)
            assert (
                mp.values.tobytes() == sequential.values.tobytes()
            ), label
            assert mp.passes == sequential.passes, label
            assert mp.rounds == sequential.rounds, label
            assert (
                mp.stats["spill_bytes"] == sequential.stats["spill_bytes"]
            ), label
            assert 1 <= mp.stats["max_inflight"] <= workers, label

    def test_workers_overlap_within_a_pass(self, workloads):
        # the concurrency proof: the supervisor saw every worker holding
        # an outstanding activation at once during some committed pass
        # (the first pagerank pass activates all four seeded slices)
        graph, spec = workloads["pagerank"]
        mp = build_engine(
            "sliced-mp",
            (graph, spec),
            {"num_slices": 4, "num_workers": 4},
        ).run()
        assert mp.stats["max_inflight"] == 4

    def test_chained_dispatch_matches_chained_sequential(self, workloads):
        # the pre-barrier order survives behind dispatch="chained", and
        # chaining serializes the pass: never more than one in flight
        graph, spec = workloads["pagerank"]
        sequential = build_engine(
            "sliced",
            (graph, spec),
            {"num_slices": 4, "dispatch": "chained"},
        ).run()
        mp = build_engine(
            "sliced-mp",
            (graph, spec),
            {"num_slices": 4, "num_workers": 2, "dispatch": "chained"},
        ).run()
        assert mp.values.tobytes() == sequential.values.tobytes()
        assert mp.passes == sequential.passes
        assert mp.stats["max_inflight"] == 1

    def test_dispatch_modes_reach_the_same_fixed_point(self, workloads):
        # barrier and chained take different float trajectories to the
        # same answer within tolerance — the documented semantic shift
        graph, spec = workloads["pagerank"]
        barrier = build_engine(
            "sliced", (graph, spec), {"num_slices": 4}
        ).run()
        chained = build_engine(
            "sliced",
            (graph, spec),
            {"num_slices": 4, "dispatch": "chained"},
        ).run()
        assert barrier.values.tobytes() != chained.values.tobytes()
        np.testing.assert_allclose(
            barrier.values, chained.values, rtol=1e-6, atol=1e-9
        )


class TestKillRecovery:
    def test_worker_sigkill_recovers_bit_identically(
        self, graph, monkeypatch
    ):
        spec = algorithms.make_pagerank_delta()
        sequential = _run_sequential(graph, spec)
        # kill the worker owning slice 1 while it drains pass 2
        monkeypatch.setenv(KILL_WORKER_ENV, "1:2")
        mp = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD)).run()
        assert mp.stats["recoveries"] == 1
        assert mp.values.tobytes() == sequential.values.tobytes()
        assert mp.passes == sequential.passes
        assert mp.rounds == sequential.rounds
        assert mp.stats["spill_bytes"] == sequential.stats["spill_bytes"]

    def test_concurrent_pass_sigkill_recovers_bit_identically(
        self, graph, monkeypatch
    ):
        # kill one of THREE live workers mid-pass: the supervisor must
        # drain the survivors' stale results (straggler drain), roll
        # back the pass snapshot, respawn, and still finish bit-equal
        spec = algorithms.make_pagerank_delta()
        sequential = _run_sequential(graph, spec)
        monkeypatch.setenv(KILL_WORKER_ENV, "1:2")
        mp = build_engine(
            "sliced-mp",
            (graph, spec),
            {"num_slices": 3, "num_workers": 3},
        ).run()
        assert mp.stats["recoveries"] == 1
        assert mp.stats["max_inflight"] >= 2
        assert mp.raw.worker_stats[1]["lease_recoveries"] == 1
        assert mp.values.tobytes() == sequential.values.tobytes()
        assert mp.passes == sequential.passes
        assert mp.rounds == sequential.rounds

    def test_kill_at_first_pass_first_slice(self, graph, monkeypatch):
        spec = algorithms.make_pagerank_delta()
        sequential = _run_sequential(graph, spec)
        monkeypatch.setenv(KILL_WORKER_ENV, "0:0")
        mp = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD)).run()
        assert mp.stats["recoveries"] == 1
        assert mp.values.tobytes() == sequential.values.tobytes()

    def test_kill_during_durable_run_replays_journal(
        self, graph, monkeypatch, tmp_path
    ):
        # NOTE: resilience mode changes the sliced trajectory (journal
        # coalescing and watchdog accounting), so the bit-identity
        # reference is a *durable* sequential run, not a plain one.
        spec = algorithms.make_pagerank_delta()

        def _config(run_dir, options):
            return ResilienceConfig(
                checkpoint_interval=2,
                checkpoint_dir=str(run_dir),
                run_meta={
                    "workload": {
                        "algorithm": "pagerank",
                        "dataset": "x",
                        "scale": 1.0,
                    },
                    "engine_options": options,
                },
            )

        sequential = build_engine(
            "sliced",
            (graph, spec),
            {"num_slices": 3},
            resilience=_config(tmp_path / "seq", {"num_slices": 3}),
        ).run()
        run_dir = tmp_path / "run"
        monkeypatch.setenv(KILL_WORKER_ENV, "2:3")
        mp = build_engine(
            "sliced-mp",
            (graph, spec),
            dict(WORKLOAD),
            resilience=_config(run_dir, dict(WORKLOAD)),
        ).run()
        assert mp.stats["recoveries"] == 1
        assert mp.values.tobytes() == sequential.values.tobytes()
        assert mp.passes == sequential.passes
        # the journal survived the kill and stayed replayable
        assert (run_dir / "journal.bin").exists()

    def test_kill_spec_parsing(self):
        assert _parse_kill_spec("1:2") == (1, 2)
        assert _parse_kill_spec(None) is None
        assert _parse_kill_spec("") is None
        assert _parse_kill_spec("nonsense") is None


class TestLeaseProtocol:
    def test_run_writes_and_releases_leases(self, graph, tmp_path):
        spec = algorithms.make_pagerank_delta()
        mp = build_engine(
            "sliced-mp",
            (graph, spec),
            {**WORKLOAD, "lease_dir": str(tmp_path)},
        ).run()
        assert mp.converged
        # all leases released on clean shutdown
        for slice_index in range(3):
            assert not lease_path(tmp_path, slice_index).exists()

    def test_live_foreign_lease_rejects_the_run(self, graph, tmp_path):
        spec = algorithms.make_pagerank_delta()
        SliceLease.acquire(tmp_path, 1, owner="another-live-run")
        with pytest.raises(LeaseHeldError):
            build_engine(
                "sliced-mp",
                (graph, spec),
                {**WORKLOAD, "lease_dir": str(tmp_path)},
            ).run()

    def test_stale_leftover_leases_are_swept(self, graph, tmp_path):
        spec = algorithms.make_pagerank_delta()
        # a dead pid's leftover lease (prior SIGKILLed run)
        SliceLease.acquire(tmp_path, 0, owner="dead-run", pid=2**22 + 12345)
        mp = build_engine(
            "sliced-mp",
            (graph, spec),
            {**WORKLOAD, "lease_dir": str(tmp_path)},
        ).run()
        assert mp.converged


class TestGuards:
    def test_fault_plans_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        config = ResilienceConfig(
            fault_plan=FaultPlan.uniform(0.01, seed=0, kinds=("drop",))
        )
        with pytest.raises(ReproError, match="fault injection"):
            build_engine(
                "sliced-mp", (graph, spec), dict(WORKLOAD), resilience=config
            )

    def test_zero_workers_rejected(self, graph):
        spec = algorithms.make_pagerank_delta()
        partition = resolve_partition(graph, num_slices=2)
        with pytest.raises(ReproError, match="num_workers"):
            MultiprocessSlicedGraphPulse(partition, spec, num_workers=0)

    def test_resilience_without_faults_is_accepted(self, graph):
        spec = algorithms.make_pagerank_delta()
        config = ResilienceConfig()
        mp = build_engine(
            "sliced-mp", (graph, spec), dict(WORKLOAD), resilience=config
        ).run()
        assert mp.converged
        assert mp.resilience is not None


class TestWorkerTelemetry:
    def test_fault_free_telemetry_accounts_for_all_work(self, graph):
        spec = algorithms.make_pagerank_delta()
        result = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD))
        mp = result.run()
        raw = mp.raw
        assert len(raw.worker_stats) == 2
        assert [w["worker"] for w in raw.worker_stats] == [0, 1]
        # every activation/event/round is attributed to exactly one worker
        assert sum(w["activations"] for w in raw.worker_stats) == len(
            raw.activations
        )
        assert sum(w["events_drained"] for w in raw.worker_stats) == sum(
            a.events_processed for a in raw.activations
        )
        assert sum(w["rounds"] for w in raw.worker_stats) == raw.total_rounds
        # at the pass barrier each worker waits out the others' rounds:
        # summed over workers, waits equal (workers-1) x total rounds
        assert sum(
            w["barrier_wait_rounds"] for w in raw.worker_stats
        ) == raw.total_rounds * (len(raw.worker_stats) - 1)
        assert all(w["lease_recoveries"] == 0 for w in raw.worker_stats)
        assert all(w["journal_replays"] == 0 for w in raw.worker_stats)

    def test_kill_rollback_keeps_committed_telemetry_identical(
        self, graph, monkeypatch
    ):
        spec = algorithms.make_pagerank_delta()
        clean = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD)).run()
        monkeypatch.setenv(KILL_WORKER_ENV, "1:2")
        killed = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD)).run()
        # recovery counters record the death on the owning worker...
        assert killed.raw.worker_stats[1]["lease_recoveries"] == 1
        # (non-durable run: nothing to replay from a journal)
        assert killed.raw.worker_stats[1]["journal_replays"] == 0
        assert killed.raw.worker_stats[0]["lease_recoveries"] == 0
        # ...while the committed work counters match the clean run exactly:
        # the aborted pass's partial telemetry was rolled back with the state
        for kw, cw in zip(killed.raw.worker_stats, clean.raw.worker_stats):
            for key in ("activations", "events_drained", "rounds",
                        "barrier_wait_rounds"):
                assert kw[key] == cw[key]

    def test_durable_kill_counts_journal_replay(
        self, graph, monkeypatch, tmp_path
    ):
        spec = algorithms.make_pagerank_delta()
        config = ResilienceConfig(
            checkpoint_interval=2,
            checkpoint_dir=str(tmp_path / "run"),
            run_meta={
                "workload": {
                    "algorithm": "pagerank", "dataset": "x", "scale": 1.0,
                },
                "engine_options": dict(WORKLOAD),
            },
        )
        monkeypatch.setenv(KILL_WORKER_ENV, "2:3")
        mp = build_engine(
            "sliced-mp", (graph, spec), dict(WORKLOAD), resilience=config
        ).run()
        assert mp.stats["recoveries"] == 1
        dead_worker = 2 % 2  # slice 2 is owned by worker 0
        assert mp.stats["worker_stats"][dead_worker]["lease_recoveries"] == 1
        assert mp.stats["worker_stats"][dead_worker]["journal_replays"] == 1

    def test_worker_stats_survive_run_result_validation(self, graph):
        from repro.core import validate_run_result

        spec = algorithms.make_pagerank_delta()
        mp = build_engine("sliced-mp", (graph, spec), dict(WORKLOAD)).run()
        payload = mp.to_json()
        validate_run_result(payload)
        assert payload["stats"]["worker_stats"] == mp.raw.worker_stats
