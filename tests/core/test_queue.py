"""Unit tests for the in-place coalescing event queue (Section IV-D)."""

import pytest

from repro.core import CoalescingQueue, Event, VertexBinMap


def sum_queue(n=1024, bins=4, block=8):
    return CoalescingQueue(
        n, lambda a, b: a + b, num_bins=bins, block_size=block
    )


class TestVertexBinMap:
    def test_blocks_stay_together(self):
        m = VertexBinMap(1024, num_bins=4, block_size=8)
        # vertices 0..7 share block 0 -> bin 0
        assert {m.bin_of(v) for v in range(8)} == {0}
        # next block goes to the next bin
        assert m.bin_of(8) == 1

    def test_blocks_spread_over_bins(self):
        m = VertexBinMap(1024, num_bins=4, block_size=8)
        bins = {m.bin_of(block * 8) for block in range(4)}
        assert bins == {0, 1, 2, 3}

    def test_slots_unique_within_bin(self):
        m = VertexBinMap(512, num_bins=4, block_size=8)
        for b in range(4):
            vertices = list(m.vertices_of_bin(b))
            slots = [m.slot_of(v) for v in vertices]
            assert len(set(slots)) == len(slots)

    def test_vertices_of_bin_partitions_vertex_space(self):
        m = VertexBinMap(100, num_bins=3, block_size=7)
        seen = []
        for b in range(3):
            seen.extend(m.vertices_of_bin(b))
        assert sorted(seen) == list(range(100))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            VertexBinMap(10, num_bins=0, block_size=1)
        with pytest.raises(ValueError):
            VertexBinMap(10, num_bins=1, block_size=0)


class TestInsertAndCoalesce:
    def test_insert_claims_slot(self):
        q = sum_queue()
        assert q.insert(Event(vertex=1, delta=1.0)) is False
        assert len(q) == 1

    def test_coalesce_does_not_grow(self):
        q = sum_queue()
        q.insert(Event(vertex=1, delta=1.0))
        assert q.insert(Event(vertex=1, delta=2.0)) is True
        assert len(q) == 1
        assert q.stats.coalesced == 1

    def test_coalesced_payload_uses_reduce(self):
        q = sum_queue()
        q.insert(Event(vertex=1, delta=1.0))
        q.insert(Event(vertex=1, delta=2.0))
        [event] = q.drain_bin(q.mapping.bin_of(1))
        assert event.delta == 3.0

    def test_min_reduce_coalescing(self):
        q = CoalescingQueue(64, min, num_bins=2, block_size=4)
        q.insert(Event(vertex=5, delta=9.0))
        q.insert(Event(vertex=5, delta=4.0))
        [event] = q.drain_bin(q.mapping.bin_of(5))
        assert event.delta == 4.0

    def test_peak_occupancy(self):
        q = sum_queue()
        for v in range(10):
            q.insert(Event(vertex=v, delta=1.0))
        q.drain_all()
        assert q.stats.peak_occupancy == 10

    def test_coalesce_rate(self):
        q = sum_queue()
        for _ in range(4):
            q.insert(Event(vertex=0, delta=1.0))
        assert q.stats.coalesce_rate == 0.75

    def test_capacity_guard(self):
        with pytest.raises(ValueError, match="slices"):
            CoalescingQueue(100, min, capacity_vertices=50)


class TestDrain:
    def test_drain_in_sweep_order(self):
        q = sum_queue(bins=2, block=4)
        # vertices 0..3 in bin 0; insert out of order
        for v in [3, 0, 2, 1]:
            q.insert(Event(vertex=v, delta=1.0))
        drained = q.drain_bin(0)
        assert [e.vertex for e in drained] == [0, 1, 2, 3]

    def test_drain_empties_bin(self):
        q = sum_queue()
        q.insert(Event(vertex=0, delta=1.0))
        q.drain_bin(0)
        assert q.is_empty
        assert q.drain_bin(0) == []

    def test_one_event_per_vertex_per_drain(self):
        q = sum_queue()
        for _ in range(5):
            q.insert(Event(vertex=7, delta=1.0))
        drained = q.drain_bin(q.mapping.bin_of(7))
        assert len(drained) == 1
        assert drained[0].delta == 5.0

    def test_drain_all_covers_every_bin(self):
        q = sum_queue(bins=4, block=4)
        for v in range(64):
            q.insert(Event(vertex=v, delta=1.0))
        assert len(q.drain_all()) == 64
        assert q.is_empty

    def test_iteration_does_not_remove(self):
        q = sum_queue()
        q.insert(Event(vertex=0, delta=1.0))
        assert len(list(q)) == 1
        assert len(q) == 1

    def test_bin_occupancy(self):
        q = sum_queue(bins=2, block=4)
        q.insert(Event(vertex=0, delta=1.0))
        q.insert(Event(vertex=4, delta=1.0))  # block 1 -> bin 1
        assert q.bin_occupancy(0) == 1
        assert q.bin_occupancy(1) == 1


class TestReadyTimeSemantics:
    """The cycle-level race: insertions landing after the sweep wait."""

    def test_late_events_stay_queued(self):
        q = sum_queue()
        q.insert(Event(vertex=0, delta=1.0, ready=5))
        q.insert(Event(vertex=1, delta=1.0, ready=20))
        drained = q.drain_bin(0, before=10)
        assert [e.vertex for e in drained] == [0]
        assert len(q) == 1
        # the late event is picked up by a later sweep
        assert [e.vertex for e in q.drain_bin(0, before=30)] == [1]

    def test_slot_splits_by_ready(self):
        q = sum_queue()
        q.insert(Event(vertex=0, delta=1.0, ready=5))
        q.insert(Event(vertex=0, delta=2.0, ready=50))
        [committed] = q.drain_bin(0, before=10)
        assert committed.delta == 1.0
        [pending] = q.drain_bin(0, before=100)
        assert pending.delta == 2.0
        assert q.is_empty

    def test_eligible_entries_merge_at_drain(self):
        q = sum_queue()
        q.insert(Event(vertex=0, delta=1.0, ready=3))
        q.insert(Event(vertex=0, delta=2.0, ready=7))
        [event] = q.drain_bin(0, before=10)
        assert event.delta == 3.0
        assert event.ready == 7

    def test_unconditional_drain_takes_everything(self):
        q = sum_queue()
        q.insert(Event(vertex=0, delta=1.0, ready=1000))
        assert len(q.drain_bin(0)) == 1
