"""White-box tests for cycle-accelerator internals."""

import numpy as np
import pytest

from repro import algorithms
from repro.core import Event, GraphPulseAccelerator, optimized_config
from repro.core.accelerator import _GenerationStream
from repro.graph import CSRGraph, chain_graph, star_graph


def make_accel(graph, spec=None, **overrides):
    spec = spec or algorithms.make_pagerank_delta()
    return GraphPulseAccelerator(graph, spec, optimized_config(**overrides))


class TestBlockGrouping:
    def test_adjacent_vertices_grouped(self):
        acc = make_accel(chain_graph(300))
        batch = [Event(vertex=v, delta=1.0) for v in (0, 1, 2, 130, 131)]
        groups = acc._group_by_block(batch)
        assert [len(g) for g in groups] == [3, 2]

    def test_block_size_follows_config(self):
        acc = make_accel(chain_graph(300), prefetch_block_size=2)
        batch = [Event(vertex=v, delta=1.0) for v in (0, 1, 2, 3)]
        groups = acc._group_by_block(batch)
        assert [len(g) for g in groups] == [2, 2]

    def test_sweep_order_preserved_within_groups(self):
        acc = make_accel(chain_graph(300))
        batch = [Event(vertex=v, delta=1.0) for v in (5, 6, 7)]
        [group] = acc._group_by_block(batch)
        assert [e.vertex for e in group] == [5, 6, 7]


class TestGenerationStream:
    def test_admission_immediate_when_buffer_free(self):
        stream = _GenerationStream(0, buffer_entries=2)
        assert stream.admission_time(10) == 10

    def test_admission_waits_when_buffer_full(self):
        stream = _GenerationStream(0, buffer_entries=2)
        stream.admit(100)
        stream.admit(200)
        # both jobs unfinished at cycle 50; a slot frees at cycle 100
        assert stream.admission_time(50) == 100

    def test_finished_jobs_free_slots(self):
        stream = _GenerationStream(0, buffer_entries=2)
        stream.admit(10)
        stream.admit(20)
        assert stream.admission_time(30) == 30  # both completed

    def test_job_list_is_bounded(self):
        stream = _GenerationStream(0, buffer_entries=2)
        for i in range(1000):
            stream.admit(i)
        assert len(stream.jobs) <= 8  # trimmed to a small window
        assert stream.cursor == 999


class TestHubFanOut:
    def test_star_generates_one_event_per_leaf(self):
        g = star_graph(50, outward=True)
        spec = algorithms.make_bfs(root=0)
        acc = make_accel(g, spec)
        result = acc.run()
        # the hub's single event fans out to all 50 leaves exactly once
        assert result.events_processed == 51  # hub + leaves
        assert result.queue_stats["inserted"] == 51  # initial + 50

    def test_generation_paced_by_degree(self):
        # a 200-leaf hub needs >= 200 generation cycles on one stream
        g = star_graph(200, outward=True)
        spec = algorithms.make_bfs(root=0)
        result = make_accel(g, spec).run()
        assert result.stage_profile.generate >= 200


class TestEmitPath:
    def test_emitted_events_carry_ready_times(self):
        g = chain_graph(40)
        spec = algorithms.make_bfs(root=0)
        acc = make_accel(g, spec)
        acc.queue.insert(Event(vertex=0, delta=0.0))
        acc._run_round(0)
        remaining = list(acc.queue)
        assert remaining, "chain propagation must enqueue successors"
        assert all(e.ready > 0 for e in remaining)

    def test_bin_insert_done_monotone_per_round(self):
        g = chain_graph(40)
        spec = algorithms.make_bfs(root=0)
        acc = make_accel(g, spec)
        result = acc.run()
        assert result.converged
        assert max(acc._bin_insert_done) <= result.total_cycles


class TestEdgeLineAttribution:
    def test_every_edge_generated_exactly_once(self):
        # vertices with unaligned edge slices: each edge must produce
        # exactly one generation cycle
        g = CSRGraph.from_edges(
            7, [(0, i) for i in range(1, 7)] + [(1, 2), (1, 3), (2, 3)]
        )
        spec = algorithms.make_connected_components()
        sym = algorithms.symmetrize(g)
        acc = make_accel(sym, spec)
        result = acc.run()
        fun_edges = result.stage_profile.generate
        # generation cycles == edges scanned by propagating events
        from repro.core import FunctionalGraphPulse

        functional = FunctionalGraphPulse(sym, spec).run()
        assert fun_edges == functional.traffic.edge_reads
