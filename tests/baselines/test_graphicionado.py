"""Tests for the Graphicionado accelerator model."""

import numpy as np
import pytest

from repro import algorithms
from repro.baselines import GraphicionadoAccelerator
from repro.graph import random_weights, rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(256, 1500, seed=71)


@pytest.fixture(scope="module")
def pr_result(graph):
    return GraphicionadoAccelerator(
        graph, algorithms.make_pagerank_delta()
    ).run()


class TestCorrectness:
    def test_pagerank(self, graph, pr_result):
        assert np.allclose(
            pr_result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )
        assert pr_result.converged

    def test_sssp(self, graph):
        g = random_weights(graph, seed=10)
        root = int(np.argmax(g.out_degrees()))
        result = GraphicionadoAccelerator(
            g, algorithms.make_sssp(root=root)
        ).run()
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])


class TestTiming:
    def test_cycles_accumulate(self, pr_result):
        assert pr_result.total_cycles > 0
        assert pr_result.num_iterations > 0
        assert pr_result.seconds == pytest.approx(
            pr_result.total_cycles * 1e-9
        )

    def test_more_streams_is_not_slower(self, graph):
        spec = algorithms.make_pagerank_delta()
        narrow = GraphicionadoAccelerator(graph, spec, num_streams=2).run()
        wide = GraphicionadoAccelerator(graph, spec, num_streams=16).run()
        assert wide.total_cycles <= narrow.total_cycles

    def test_edges_processed_counted(self, graph, pr_result):
        assert pr_result.edges_processed > graph.num_edges  # multi-iteration


class TestTraffic:
    def test_offchip_bytes_positive(self, pr_result):
        assert pr_result.offchip_bytes > 0

    def test_edge_traffic_dominates(self, pr_result):
        # vertex-centric BSP streams edges repeatedly
        assert (
            pr_result.dram_stats.get("edge_bytes", 0)
            > pr_result.dram_stats.get("vertex_bytes", 0)
        )
