"""Tests for the bulk-synchronous delta engine."""

import numpy as np
import pytest

from repro import algorithms
from repro.baselines import SynchronousDeltaEngine
from repro.graph import chain_graph, random_weights, rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(300, 1800, seed=51)


class TestFixedPoints:
    def test_pagerank(self, graph):
        result = SynchronousDeltaEngine(
            graph, algorithms.make_pagerank_delta()
        ).run()
        assert np.allclose(
            result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )
        assert result.converged

    def test_sssp(self, graph):
        g = random_weights(graph, seed=8)
        root = int(np.argmax(g.out_degrees()))
        result = SynchronousDeltaEngine(g, algorithms.make_sssp(root=root)).run()
        reference = algorithms.sssp_reference(g, root)
        finite = np.isfinite(reference)
        assert np.allclose(result.values[finite], reference[finite])

    def test_bfs_iterations_track_frontier_depth(self):
        g = chain_graph(10)
        result = SynchronousDeltaEngine(g, algorithms.make_bfs(root=0)).run()
        # one superstep per hop plus the bootstrap
        assert result.num_iterations == 10
        assert np.array_equal(
            result.values, algorithms.bfs_reference(g, 0)
        )

    def test_cc(self, graph):
        g = algorithms.symmetrize(graph)
        result = SynchronousDeltaEngine(
            g, algorithms.make_connected_components()
        ).run()
        assert np.array_equal(
            result.values, algorithms.connected_components_reference(g)
        )

    def test_adsorption(self, graph):
        g = algorithms.normalize_inbound_weights(random_weights(graph, seed=9))
        result = SynchronousDeltaEngine(g, algorithms.make_adsorption(g)).run()
        reference = algorithms.adsorption_reference(
            g, algorithms.injection_values(g)
        )
        assert np.allclose(result.values, reference, atol=1e-4)


class TestIterationRecords:
    def test_edges_scanned_matches_active_degrees(self, graph):
        result = SynchronousDeltaEngine(
            graph, algorithms.make_pagerank_delta()
        ).run()
        degrees = graph.out_degrees()
        for it in result.iterations:
            expected = int(degrees[it.active_vertices].sum())
            assert it.edges_scanned == expected

    def test_changes_align_with_active(self, graph):
        result = SynchronousDeltaEngine(
            graph, algorithms.make_pagerank_delta()
        ).run()
        for it in result.iterations:
            assert len(it.changes) == len(it.active_vertices)

    def test_on_iteration_hook_called_every_superstep(self, graph):
        seen = []
        result = SynchronousDeltaEngine(
            graph, algorithms.make_pagerank_delta()
        ).run(on_iteration=lambda it: seen.append(it.index))
        assert seen == list(range(result.num_iterations))

    def test_total_edges(self, graph):
        result = SynchronousDeltaEngine(
            graph, algorithms.make_pagerank_delta()
        ).run()
        assert result.total_edges_scanned == sum(
            it.edges_scanned for it in result.iterations
        )

    def test_max_iterations_guard(self):
        g = chain_graph(30)
        with pytest.raises(RuntimeError, match="did not converge"):
            SynchronousDeltaEngine(
                g, algorithms.make_bfs(root=0), max_iterations=2
            ).run()


class TestAgainstAsynchronous:
    def test_async_needs_no_more_work(self, graph):
        """The asynchronous engine's key claim: coalescing + lookahead
        never increase (and usually reduce) total edge work."""
        from repro.core import FunctionalGraphPulse

        spec = algorithms.make_pagerank_delta()
        sync = SynchronousDeltaEngine(graph, spec).run()
        fun = FunctionalGraphPulse(graph, spec).run()
        assert fun.traffic.edge_reads <= 1.05 * sync.total_edges_scanned
        assert fun.num_rounds <= sync.num_iterations
