"""Tests for the CPU cost model."""

import pytest

from repro.baselines import CPUCostModel, CPUModelConfig, OpCounts


def model(footprint=100 * 2 ** 20, **kwargs):
    return CPUCostModel(
        config=CPUModelConfig(**kwargs), random_footprint_bytes=footprint
    )


class TestCacheModel:
    def test_small_footprint_always_hits(self):
        assert model(footprint=1024).llc_hit_fraction() == 1.0

    def test_zero_footprint_hits(self):
        assert model(footprint=0).llc_hit_fraction() == 1.0

    def test_large_footprint_mostly_misses(self):
        m = model(footprint=120 * 2 ** 20)  # 10x the 12 MB LLC
        assert m.llc_hit_fraction() == pytest.approx(0.1, rel=0.1)


class TestCostComposition:
    def test_empty_counts_cost_nothing(self):
        assert model().seconds(OpCounts()) == 0.0

    def test_random_accesses_cost_more_when_missing(self):
        counts = OpCounts(random_reads=1_000_000)
        hot = model(footprint=1024).seconds(counts)
        cold = model(footprint=1 * 2 ** 30).seconds(counts)
        assert cold > hot

    def test_atomics_cost_extra(self):
        base = OpCounts(random_reads=1000)
        with_atomics = OpCounts(random_reads=1000, atomic_updates=1000)
        m = model()
        assert m.seconds(with_atomics) > m.seconds(base)

    def test_barriers_add_fixed_cost(self):
        m = model()
        one = m.seconds(OpCounts(iterations=1))
        ten = m.seconds(OpCounts(iterations=10))
        assert ten == pytest.approx(10 * one)

    def test_bandwidth_bound_scales_with_bytes(self):
        m = model()
        small = m.seconds(OpCounts(sequential_bytes=1e6))
        large = m.seconds(OpCounts(sequential_bytes=1e9))
        assert large > small

    def test_merge(self):
        a = OpCounts(random_reads=1, iterations=1, edge_work=5)
        b = OpCounts(random_writes=2, iterations=2)
        merged = a.merged_with(b)
        assert merged.random_reads == 1
        assert merged.random_writes == 2
        assert merged.iterations == 3
        assert merged.edge_work == 5
