"""Tests for the Ligra-like direction-optimizing baseline."""

import numpy as np
import pytest

from repro import algorithms
from repro.baselines import CPUModelConfig, LigraEngine
from repro.graph import chain_graph, rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(300, 1800, seed=61)


class TestCorrectness:
    def test_pagerank_values(self, graph):
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        assert np.allclose(
            result.values, algorithms.pagerank_reference(graph), atol=1e-4
        )
        assert result.converged

    def test_bfs_values(self, graph):
        root = int(np.argmax(graph.out_degrees()))
        result = LigraEngine(graph, algorithms.make_bfs(root=root)).run()
        reference = algorithms.bfs_reference(graph, root)
        finite = np.isfinite(reference)
        assert np.array_equal(result.values[finite], reference[finite])


class TestDirectionOptimization:
    def test_dense_frontier_pulls(self, graph):
        # PageRank activates everything initially -> dense iterations
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        assert result.directions[0] == "pull"
        assert result.pull_fraction > 0.0

    def test_sparse_frontier_pushes(self):
        # BFS from a chain tip keeps the frontier at one vertex
        g = chain_graph(50)
        result = LigraEngine(g, algorithms.make_bfs(root=0)).run()
        assert all(d == "push" for d in result.directions)
        assert result.pull_fraction == 0.0

    def test_directions_recorded_per_iteration(self, graph):
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        assert len(result.directions) == result.num_iterations


class TestOperationCounts:
    def test_push_counts_atomics(self):
        g = chain_graph(50)
        result = LigraEngine(g, algorithms.make_bfs(root=0)).run()
        # every traversed edge costs one atomic in push mode
        assert result.counts.atomic_updates == 49

    def test_pull_counts_no_atomics(self, graph):
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        pull_iters = result.directions.count("pull")
        if pull_iters == result.num_iterations:
            assert result.counts.atomic_updates == 0

    def test_pull_scans_whole_edge_list(self, graph):
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        pulls = result.directions.count("pull")
        assert result.counts.random_reads >= pulls * graph.num_edges

    def test_iterations_counted(self, graph):
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        assert result.counts.iterations == result.num_iterations


class TestCostModel:
    def test_seconds_positive(self, graph):
        result = LigraEngine(graph, algorithms.make_pagerank_delta()).run()
        assert result.seconds > 0

    def test_bigger_footprint_is_slower(self, graph):
        spec = algorithms.make_pagerank_delta()
        small = LigraEngine(
            graph, spec, random_footprint_bytes=1024
        ).run()
        large = LigraEngine(
            graph, spec, random_footprint_bytes=10 * 2 ** 30
        ).run()
        assert large.seconds > small.seconds

    def test_more_cores_is_faster(self, graph):
        spec = algorithms.make_pagerank_delta()
        few = LigraEngine(
            graph, spec, cpu_config=CPUModelConfig(num_cores=1)
        ).run()
        many = LigraEngine(
            graph, spec, cpu_config=CPUModelConfig(num_cores=12)
        ).run()
        assert many.seconds < few.seconds
