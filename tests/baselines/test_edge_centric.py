"""Tests for the Table I / Figure 1 model access-pattern profiles."""

import pytest

from repro import algorithms
from repro.baselines import profile_models
from repro.graph import rmat_graph


@pytest.fixture(scope="module")
def profiles():
    graph = rmat_graph(200, 1200, seed=81)
    return profile_models(graph, algorithms.make_pagerank_delta())


class TestTableIRelations:
    """The qualitative claims of Table I, verified quantitatively."""

    def test_all_four_models_profiled(self, profiles):
        assert set(profiles) == {
            "push",
            "pull",
            "edge-centric",
            "event-driven",
        }

    def test_pull_has_high_random_reads(self, profiles):
        assert (
            profiles["pull"].random_reads
            >= profiles["event-driven"].random_reads
        )
        assert profiles["pull"].random_reads > 0

    def test_push_has_random_atomic_writes(self, profiles):
        push = profiles["push"]
        assert push.random_writes > 0
        assert push.atomic_updates == push.random_writes

    def test_event_driven_needs_no_atomics(self, profiles):
        assert profiles["event-driven"].atomic_updates == 0

    def test_event_driven_needs_no_barriers(self, profiles):
        assert profiles["event-driven"].synchronizations == 0

    def test_event_driven_has_no_random_accesses(self, profiles):
        ev = profiles["event-driven"]
        assert ev.random_reads == 0
        assert ev.random_writes == 0

    def test_event_driven_tracks_no_active_set(self, profiles):
        assert profiles["event-driven"].active_set_ops == 0
        assert profiles["push"].active_set_ops > 0

    def test_pull_reads_redundantly(self, profiles):
        # pull re-reads all sources each iteration; push touches only
        # the frontier's edges
        assert profiles["pull"].random_reads >= profiles["push"].random_reads

    def test_edge_centric_streams_whole_edge_list_every_iteration(
        self, profiles
    ):
        ec = profiles["edge-centric"]
        graph = rmat_graph(200, 1200, seed=81)
        assert ec.sequential_reads == ec.synchronizations * graph.num_edges
        assert ec.atomic_updates > 0

    def test_as_dict_round_trip(self, profiles):
        d = profiles["push"].as_dict()
        assert d["atomic_updates"] == profiles["push"].atomic_updates
        assert set(d) == {
            "random_reads",
            "random_writes",
            "sequential_reads",
            "sequential_writes",
            "atomic_updates",
            "synchronizations",
            "active_set_ops",
        }
