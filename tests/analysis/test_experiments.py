"""Tests for the end-to-end experiment runner."""

import numpy as np
import pytest

from repro.analysis import ALGORITHMS, prepare_workload, run_comparison


class TestPrepareWorkload:
    def test_roster(self):
        assert ALGORITHMS == ("pagerank", "adsorption", "sssp", "bfs", "cc")

    def test_sssp_gets_weights(self):
        graph, spec = prepare_workload("WG", "sssp", scale=0.05)
        assert graph.is_weighted
        assert spec.name == "sssp"

    def test_adsorption_normalized(self):
        graph, __ = prepare_workload("WG", "adsorption", scale=0.05)
        in_sums = np.zeros(graph.num_vertices)
        np.add.at(in_sums, graph.adjacency, graph.weights)
        assert np.allclose(in_sums[in_sums > 0], 1.0)

    def test_cc_symmetrized(self):
        plain, __ = prepare_workload("WG", "pagerank", scale=0.05)
        sym, __ = prepare_workload("WG", "cc", scale=0.05)
        assert sym.num_edges == 2 * plain.num_edges

    def test_default_root_is_hub(self):
        graph, spec = prepare_workload("WG", "bfs", scale=0.05)
        hub = int(np.argmax(graph.out_degrees()))
        assert spec.initial_delta(hub, graph) == 0.0

    def test_explicit_root(self):
        graph, spec = prepare_workload("WG", "bfs", scale=0.05, root=3)
        assert spec.initial_delta(3, graph) == 0.0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            prepare_workload("WG", "sorting")


class TestRunComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_comparison("WG", "cc", scale=0.2)

    def test_summary_keys(self, result):
        summary = result.summary()
        assert set(summary) == {
            "speedup_vs_ligra",
            "baseline_speedup_vs_ligra",
            "speedup_vs_graphicionado",
            "traffic_vs_graphicionado",
            "data_utilization",
            "graphpulse_rounds",
            "bsp_iterations",
        }

    def test_paper_shape_holds(self, result):
        # the orderings Figure 10/11 report
        assert result.speedup_over_ligra > 1.0
        assert result.speedup_over_graphicionado > 1.0
        assert result.traffic_vs_graphicionado < 1.0

    def test_optimizations_help(self, result):
        assert (
            result.speedup_over_ligra > result.baseline_speedup_over_ligra
        )

    def test_utilization_unit_range(self, result):
        assert 0.0 < result.data_utilization <= 1.0

    def test_async_converges_in_fewer_rounds(self, result):
        assert result.functional.num_rounds <= result.bsp_iterations

    def test_verification_catches_divergence(self, monkeypatch):
        # sabotage the functional engine and expect the cross-check to fire
        from repro.core import functional as functional_module

        original = functional_module.FunctionalGraphPulse.run

        def broken(self):
            result = original(self)
            result.values[:] = 0.0
            return result

        monkeypatch.setattr(
            functional_module.FunctionalGraphPulse, "run", broken
        )
        with pytest.raises(AssertionError, match="diverged"):
            run_comparison("WG", "cc", scale=0.1)
