"""Tests for the dataflow layer under ``repro.analysis.staticcheck``.

Split by layer, mirroring the analysis stack:

- CFG construction mechanics (branch joins, loop back-edges,
  try/finally, raise routing) — independent of any shipped rule;
- the forward taint engine driven by a throwaway test policy
  (joins, kills, unpacking, cross-module summaries);
- the protocol automaton (ordering, prerequisites, escapes);
- the shipped flow rules (DET-003, DUR-002, CONC-001, SUB-002)
  against purpose-built snippets AND the real tree, including the
  acceptance mutations (cursor-before-shard, time-through-helper);
- suppression-span edge cases (decorated defs, multi-line calls);
- the lint CLI's --baseline ratchet and --format github output.
"""

import ast
import json
import os
import textwrap

import pytest

import repro
from repro.analysis.staticcheck import (
    RULES_BY_ID,
    ProjectContext,
    build_cfg,
    lint_paths,
    lint_source,
)
from repro.analysis.staticcheck.baseline import (
    apply_baseline,
    finding_key,
    read_baseline,
    write_baseline,
)
from repro.analysis.staticcheck.dataflow import (
    EMPTY,
    ProtocolAnalysis,
    ProtocolSpec,
    TaintAnalysis,
    TaintPolicy,
)
from repro.cli import main

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))
HOSTSLICED = os.path.join(PACKAGE_DIR, "core", "hostsliced.py")


def unsuppressed(findings):
    return [f for f in findings if not f.suppressed]


def fn_cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[-1]
    return fn, build_cfg(fn)


# ----------------------------------------------------------------------
# CFG mechanics
# ----------------------------------------------------------------------


class TestCFG:
    def test_if_else_branches_join(self):
        _fn, cfg = fn_cfg(
            """
            def f(cond):
                if cond:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        header = next(b for b in cfg.blocks if b.test is not None)
        assert len(header.successors) == 2
        joins = [b.successors for b in header.successors]
        # both arms converge on the same join block
        assert joins[0] == joins[1]
        join = joins[0][0]
        assert any(isinstance(s, ast.Return) for s in join.statements)

    def test_if_without_else_falls_through(self):
        _fn, cfg = fn_cfg(
            """
            def f(cond):
                if cond:
                    a = 1
                return 0
            """
        )
        header = next(b for b in cfg.blocks if b.test is not None)
        then_block, false_target = header.successors
        # the false edge skips the then-arm and lands on its join
        assert false_target in then_block.successors

    def test_while_loop_has_back_edge(self):
        _fn, cfg = fn_cfg(
            """
            def f(n):
                while n:
                    n = n - 1
                return n
            """
        )
        header = next(b for b in cfg.blocks if b.kind == "loop-header")
        body = header.successors[0]
        assert header in body.successors  # the back edge

    def test_for_loop_has_back_edge_and_exit_path(self):
        _fn, cfg = fn_cfg(
            """
            def f(items):
                total = 0
                for item in items:
                    total += item
                return total
            """
        )
        header = next(b for b in cfg.blocks if b.kind == "loop-header")
        body, after = header.successors
        assert header in body.successors
        assert any(isinstance(s, ast.Return) for s in after.statements)

    def test_return_routes_to_exit(self):
        _fn, cfg = fn_cfg(
            """
            def f():
                return 1
            """
        )
        block = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.statements)
        )
        assert cfg.exit in block.successors

    def test_raise_routes_to_matching_handler(self):
        _fn, cfg = fn_cfg(
            """
            def f():
                try:
                    raise ValueError("x")
                except ValueError:
                    return 1
            """
        )
        assert cfg.escaping_raises == set()
        raiser = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Raise) for s in b.statements)
        )
        handler = next(b for b in cfg.blocks if b.kind == "handler")
        assert handler in raiser.successors

    def test_uncaught_raise_escapes(self):
        fn, cfg = fn_cfg(
            """
            def f():
                raise RuntimeError("boom")
            """
        )
        raise_node = fn.body[0]
        assert id(raise_node) in cfg.escaping_raises
        raiser = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Raise) for s in b.statements)
        )
        assert cfg.raise_exit in raiser.successors

    def test_try_finally_lies_on_the_exit_path(self):
        _fn, cfg = fn_cfg(
            """
            def f(fh):
                try:
                    fh.write(b"x")
                finally:
                    fh.close()
                return 0
            """
        )
        final = next(
            b for b in cfg.blocks
            if any(
                isinstance(s, ast.Expr)
                and isinstance(s.value, ast.Call)
                and isinstance(s.value.func, ast.Attribute)
                and s.value.func.attr == "close"
                for s in b.statements
            )
        )
        # the finally body flows onward to the return, not dead-ends
        reachable, frontier = set(), [final]
        while frontier:
            block = frontier.pop()
            if block.index in reachable:
                continue
            reachable.add(block.index)
            frontier.extend(block.successors)
        assert cfg.exit.index in reachable


# ----------------------------------------------------------------------
# Taint engine mechanics (throwaway policy, no shipped rule involved)
# ----------------------------------------------------------------------

TAINT = frozenset({("t", "source")})


class TracingPolicy(TaintPolicy):
    """source() taints; sink(x) records the argument tags."""

    def __init__(self):
        self.sinks = []
        self.returns = []

    def call_tags(self, node, arg_tags, state):
        if isinstance(node.func, ast.Name) and node.func.id == "source":
            return TAINT | arg_tags
        return arg_tags

    def call_site(self, node, arg_tags, state):
        if isinstance(node.func, ast.Name) and node.func.id == "sink":
            self.sinks.append((node.lineno, arg_tags))

    def returned(self, node, tags, state):
        self.returns.append(tags)


def run_taint(source):
    fn, cfg = fn_cfg(source)
    policy = TracingPolicy()
    TaintAnalysis(cfg, fn, policy).run()
    return policy


class TestTaintEngine:
    def test_branch_join_unions_taint(self):
        policy = run_taint(
            """
            def f(cond):
                if cond:
                    x = source()
                else:
                    x = 0
                sink(x)
            """
        )
        assert policy.sinks and policy.sinks[0][1] == TAINT

    def test_loop_back_edge_reaches_fixed_point(self):
        # x is clean on iteration 1 and tainted on iteration 2; the
        # may-analysis must report the union at the loop-carried sink
        policy = run_taint(
            """
            def f(items):
                x = 0
                for item in items:
                    sink(x)
                    x = source()
            """
        )
        assert policy.sinks and policy.sinks[0][1] == TAINT

    def test_reassignment_kills_taint(self):
        policy = run_taint(
            """
            def f():
                x = source()
                x = 0
                sink(x)
            """
        )
        assert policy.sinks and policy.sinks[0][1] == EMPTY

    def test_taint_survives_try_finally(self):
        policy = run_taint(
            """
            def f():
                x = 0
                try:
                    x = source()
                finally:
                    sink(x)
            """
        )
        assert any(tags == TAINT for _line, tags in policy.sinks)

    def test_tuple_unpack_is_element_wise(self):
        policy = run_taint(
            """
            def f():
                a, b = source(), 0
                sink(a)
                sink(b)
            """
        )
        by_line = dict(policy.sinks)
        lines = sorted(by_line)
        assert by_line[lines[0]] == TAINT
        assert by_line[lines[1]] == EMPTY

    def test_taint_propagates_through_expressions(self):
        policy = run_taint(
            """
            def f():
                x = source()
                y = (x + 1) * 2
                z = [y]
                sink(z[0])
            """
        )
        assert policy.sinks and policy.sinks[0][1] == TAINT

    def test_return_hook_sees_taint(self):
        policy = run_taint(
            """
            def f():
                x = source()
                return x
            """
        )
        assert policy.returns == [TAINT]

    def test_taint_through_return_cross_module(self):
        # interprocedural summaries: helper's return taints the caller
        project = ProjectContext.from_sources(
            {
                "repro/util.py": (
                    "def helper():\n"
                    "    return source()\n"
                ),
                "repro/user.py": (
                    "from repro.util import helper\n"
                    "def caller():\n"
                    "    return helper()\n"
                ),
            }
        )

        def sources(call, module):
            func = call.func
            if isinstance(func, ast.Name) and func.id == "source":
                return TAINT
            return EMPTY

        summaries = project.taint_summaries("test", sources)
        assert summaries["repro.util.helper"].own_tags == TAINT
        assert summaries["repro.user.caller"].own_tags == TAINT

    def test_passthrough_summary_flows_params(self):
        project = ProjectContext.from_sources(
            {"repro/util.py": "def ident(x):\n    return x\n"}
        )
        summaries = project.taint_summaries(
            "test", lambda call, module: EMPTY
        )
        info = summaries["repro.util.ident"]
        assert info.params_flow
        assert info.own_tags == EMPTY


# ----------------------------------------------------------------------
# Protocol automaton mechanics
# ----------------------------------------------------------------------


def run_protocol(source, **spec_kwargs):
    fn, cfg = fn_cfg(source)

    def classify(call):
        name = (
            call.func.attr
            if isinstance(call.func, ast.Attribute)
            else getattr(call.func, "id", None)
        )
        return name if name in spec_kwargs["stages"] else None

    spec = ProtocolSpec(
        name="test-proto", classify=classify, **spec_kwargs
    )
    return ProtocolAnalysis(cfg, fn, spec).run()


class TestProtocolAutomaton:
    STAGES = ("journal", "shard", "cursor")

    def test_correct_order_is_clean(self):
        assert (
            run_protocol(
                """
                def f(w):
                    journal()
                    shard()
                    cursor()
                """,
                stages=self.STAGES,
                check_escape=True,
            )
            == []
        )

    def test_inverted_order_is_reported(self):
        violations = run_protocol(
            """
            def f(w):
                shard()
                journal()
            """,
            stages=self.STAGES,
        )
        assert [kind for kind, _n, _m in violations] == ["order"]

    def test_escape_on_early_return(self):
        violations = run_protocol(
            """
            def f(w, bail):
                journal()
                if bail:
                    return None
                shard()
                cursor()
            """,
            stages=self.STAGES,
            check_escape=True,
        )
        kinds = {kind for kind, _n, _m in violations}
        assert kinds == {"escape"}
        _kind, node, message = violations[0]
        assert isinstance(node, ast.Return)
        assert "journal" in message

    def test_final_stage_resets_across_loop(self):
        # a publish loop completes the sequence each iteration — the
        # back edge must not manufacture a phantom inversion
        assert (
            run_protocol(
                """
                def f(steps):
                    for _step in steps:
                        journal()
                        shard()
                        cursor()
                """,
                stages=self.STAGES,
                check_escape=True,
            )
            == []
        )

    def test_requires_must_hold_on_every_path(self):
        violations = run_protocol(
            """
            def f(fd, fast):
                if not fast:
                    fsync(fd)
                replace(fd)
            """,
            stages=("fsync", "replace"),
            check_order=False,
            requires={"replace": ("fsync",)},
        )
        assert [kind for kind, _n, _m in violations] == ["requires"]

    def test_requires_satisfied_on_all_paths_is_clean(self):
        assert (
            run_protocol(
                """
                def f(fd):
                    fsync(fd)
                    replace(fd)
                """,
                stages=("fsync", "replace"),
                check_order=False,
                requires={"replace": ("fsync",)},
            )
            == []
        )


# ----------------------------------------------------------------------
# Shipped flow rules against purpose-built snippets and the real tree
# ----------------------------------------------------------------------


class TestDet003:
    RULE = [RULES_BY_ID["DET-003"]]

    def test_time_through_helper_into_state(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def round_stamp():
                    return time.time()

                class Engine:
                    def step(self):
                        self.committed_at = round_stamp()
                """
            ),
            "repro/core/engine.py",
            self.RULE,
        )
        bad = unsuppressed(findings)
        assert len(bad) == 1
        assert "wall-clock" in bad[0].message
        assert "self.committed_at" in bad[0].message

    def test_telemetry_only_read_is_clean(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def round_stamp():
                    return time.time()

                class Engine:
                    def step(self):
                        print(round_stamp())
                """
            ),
            "repro/core/engine.py",
            self.RULE,
        )
        assert findings == []

    def test_cross_module_helper_flow(self, tmp_path):
        # the acceptance scenario: the wall-clock read lives in another
        # module entirely; only the call graph connects them
        pkg = tmp_path / "repro"
        (pkg / "core").mkdir(parents=True)
        (pkg / "clock.py").write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        (pkg / "core" / "engine.py").write_text(
            "from repro.clock import stamp\n"
            "class Engine:\n"
            "    def step(self):\n"
            "        self.committed_at = stamp()\n"
        )
        findings = lint_paths([str(tmp_path)], self.RULE)
        bad = unsuppressed(findings)
        assert len(bad) == 1
        assert bad[0].path.endswith("engine.py")
        assert "time.time" in bad[0].message


class TestDur002:
    RULE = [RULES_BY_ID["DUR-002"]]

    def test_real_hostsliced_is_clean(self):
        findings = lint_paths([HOSTSLICED], self.RULE)
        assert unsuppressed(findings) == []

    def test_cursor_before_shard_mutation_is_caught(self):
        # the acceptance scenario: reorder the real publish sequence so
        # the cursor advances before the shard it points at exists
        source = open(HOSTSLICED, encoding="utf-8").read()
        original = (
            "        self._publish_shard(s, k, state, totals)\n"
            "        self._maybe_kill(k, \"shard\")\n"
            "        done = not any(spill)\n"
            "        self._check_fence(lease)\n"
            "        self._publish_cursor(k + 1, done)\n"
        )
        reordered = (
            "        done = not any(spill)\n"
            "        self._check_fence(lease)\n"
            "        self._publish_cursor(k + 1, done)\n"
            "        self._maybe_kill(k, \"shard\")\n"
            "        self._publish_shard(s, k, state, totals)\n"
        )
        assert original in source, "publish sequence moved; update test"
        mutated = source.replace(original, reordered)
        findings = unsuppressed(
            lint_source(mutated, "src/repro/core/hostsliced.py", self.RULE)
        )
        assert findings, "reordered publish sequence went undetected"
        assert any("shard" in f.message for f in findings)

    def test_replace_without_fsync_on_one_branch(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import os

                def publish(tmp, final, fd, fast):
                    if not fast:
                        os.fsync(fd)
                    os.replace(tmp, final)
                """
            ),
            "repro/resilience/writer.py",
            self.RULE,
        )
        bad = unsuppressed(findings)
        assert len(bad) == 1
        assert "fsync" in bad[0].message

    def test_fsync_then_replace_is_clean(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import os

                def publish(tmp, final, fd):
                    os.fsync(fd)
                    os.replace(tmp, final)
                """
            ),
            "repro/resilience/writer.py",
            self.RULE,
        )
        assert findings == []


class TestConc001:
    RULE = [RULES_BY_ID["CONC-001"]]
    PATH = "repro/core/mpsliced.py"

    def test_unfenced_reply_application(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def drain(conn, state):
                    epoch, attempt, vertices, shard = conn.recv()
                    state[vertices] = shard
                """
            ),
            self.PATH,
            self.RULE,
        )
        bad = unsuppressed(findings)
        assert len(bad) == 1
        assert "fence" in bad[0].message

    def test_fenced_reply_application_is_clean(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def drain(conn, state, handle, attempt):
                    epoch, reply_attempt, vertices, shard = conn.recv()
                    if (epoch, reply_attempt) != (handle.epoch, attempt):
                        raise RuntimeError("stale reply")
                    state[vertices] = shard
                """
            ),
            self.PATH,
            self.RULE,
        )
        assert findings == []

    def test_second_recv_invalidates_earlier_fence(self):
        # the fence covers one message; reusing it for the next reply
        # is exactly the stale-reply race
        findings = lint_source(
            textwrap.dedent(
                """
                def drain(conn, state, handle, attempt):
                    epoch, reply_attempt, vertices, shard = conn.recv()
                    if (epoch, reply_attempt) != (handle.epoch, attempt):
                        raise RuntimeError("stale reply")
                    state[vertices] = shard
                    epoch, reply_attempt, vertices, shard = conn.recv()
                    state[vertices] = shard
                """
            ),
            self.PATH,
            self.RULE,
        )
        assert len(unsuppressed(findings)) == 1

    def test_worker_function_writing_module_global(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import multiprocessing

                PENDING = {}

                def worker_main(conn):
                    record(conn)

                def record(conn):
                    PENDING["x"] = 1

                def start():
                    return multiprocessing.Process(target=worker_main)
                """
            ),
            self.PATH,
            self.RULE,
        )
        bad = unsuppressed(findings)
        assert len(bad) == 1
        assert "PENDING" in bad[0].message

    def test_supervisor_side_global_write_is_fine(self):
        findings = lint_source(
            textwrap.dedent(
                """
                PENDING = {}

                def supervisor():
                    PENDING["x"] = 1
                """
            ),
            self.PATH,
            self.RULE,
        )
        assert findings == []


class TestSub002:
    RULE = [RULES_BY_ID["SUB-002"]]
    PATH = "repro/resilience/substrate/store.py"

    def test_transitive_escape_through_helper_module(self, tmp_path):
        pkg = tmp_path / "repro" / "resilience"
        (pkg / "substrate").mkdir(parents=True)
        (pkg / "rawio.py").write_text(
            "def slurp(path):\n"
            "    with open(path, 'rb') as fh:\n"
            "        return fh.read()\n"
        )
        (pkg / "substrate" / "store.py").write_text(
            "from repro.resilience.rawio import slurp\n"
            "def load(path):\n"
            "    return slurp(path)\n"
        )
        findings = unsuppressed(lint_paths([str(tmp_path)], self.RULE))
        assert findings
        assert all(f.path.endswith("store.py") for f in findings)
        assert any("slurp" in f.message for f in findings)

    def test_sanctioned_io_is_clean(self):
        findings = lint_source(
            textwrap.dedent(
                """
                from repro.ioutil import read_bytes

                def load(path):
                    return read_bytes(path)
                """
            ),
            self.PATH,
            self.RULE,
        )
        assert findings == []

    def test_direct_raw_open_in_substrate(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def load(path):
                    with open(path, "rb") as fh:
                        return fh.read()
                """
            ),
            self.PATH,
            self.RULE,
        )
        assert len(unsuppressed(findings)) == 1


# ----------------------------------------------------------------------
# Suppression-span edge cases
# ----------------------------------------------------------------------


class TestSuppressionSpans:
    def test_allow_on_closing_paren_of_multiline_call(self):
        source = (
            "import time\n"
            "stamp = time.time(\n"
            ")  # repro: allow(DET-001)\n"
        )
        findings = lint_source(
            source, "repro/core/mod.py", [RULES_BY_ID["DET-001"]]
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].line == 2  # reported at the call, not the )

    def test_allow_on_decorator_line_of_decorated_def(self):
        # DUR-002's fall-off escape anchors at the def node; the span
        # must stretch up over the decorator list
        source = (
            "import functools\n"
            "\n"
            "@functools.lru_cache  # repro: allow(DUR-002)\n"
            "def publish(writer, k):\n"
            "    writer.commit(k)\n"
        )
        findings = lint_source(
            source, "x/core/hostsliced.py", [RULES_BY_ID["DUR-002"]]
        )
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_decorated_def_without_allow_still_fires(self):
        source = (
            "import functools\n"
            "\n"
            "@functools.lru_cache\n"
            "def publish(writer, k):\n"
            "    writer.commit(k)\n"
        )
        findings = lint_source(
            source, "x/core/hostsliced.py", [RULES_BY_ID["DUR-002"]]
        )
        assert len(unsuppressed(findings)) == 1

    def test_allow_inside_body_does_not_cover_the_def(self):
        # the span stops at the first body statement: a directive deep
        # in the body must not silently absolve the whole function
        source = (
            "def publish(writer, k):\n"
            "    writer.commit(k)\n"
            "    x = 1  # repro: allow(DUR-002)\n"
        )
        findings = lint_source(
            source, "x/core/hostsliced.py", [RULES_BY_ID["DUR-002"]]
        )
        assert len(unsuppressed(findings)) == 1


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------


def _violation_tree(tmp_path, copies=1):
    victim = tmp_path / "core" / "mod.py"
    victim.parent.mkdir(parents=True, exist_ok=True)
    body = "import time\n" + "".join(
        f"def stamp{i}():\n    return time.time()\n" for i in range(copies)
    )
    victim.write_text(body)
    return victim


class TestBaseline:
    def test_roundtrip_and_apply(self, tmp_path):
        victim = _violation_tree(tmp_path, copies=2)
        findings = unsuppressed(
            lint_paths([str(victim)], [RULES_BY_ID["DET-001"]])
        )
        assert len(findings) == 2
        baseline = tmp_path / "baseline.json"
        assert write_baseline(findings, str(baseline)) == 1
        entries = read_baseline(str(baseline))
        assert entries == {finding_key(findings[0]): 2}
        new, baselined = apply_baseline(findings, entries)
        assert new == [] and len(baselined) == 2

    def test_count_overflow_fails(self, tmp_path):
        victim = _violation_tree(tmp_path, copies=1)
        findings = unsuppressed(
            lint_paths([str(victim)], [RULES_BY_ID["DET-001"]])
        )
        baseline = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline))
        _violation_tree(tmp_path, copies=3)  # two NEW identical findings
        findings = unsuppressed(
            lint_paths([str(victim)], [RULES_BY_ID["DET-001"]])
        )
        new, baselined = apply_baseline(
            findings, read_baseline(str(baseline))
        )
        assert len(baselined) == 1 and len(new) == 2

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(ValueError, match="version"):
            read_baseline(str(bad))
        bad.write_text('{"entries": "nope", "version": 1}')
        with pytest.raises(ValueError, match="malformed"):
            read_baseline(str(bad))

    def test_cli_ratchet_flow(self, tmp_path, capsys):
        victim = _violation_tree(tmp_path, copies=1)
        baseline = tmp_path / "baseline.json"
        base_args = ["lint", str(victim), "--strict", "--baseline",
                     str(baseline)]
        # strict fails before a baseline exists...
        assert main(["lint", str(victim), "--strict"]) == 1
        # ...writing one turns the same tree green...
        assert main(base_args + ["--update-baseline"]) == 0
        assert main(base_args) == 0
        out = capsys.readouterr().out
        assert "[baseline]" in out
        assert "1 baselined, 0 new" in out
        # ...and a NEW violation still fails strict
        _violation_tree(tmp_path, copies=2)
        assert main(base_args) == 1
        capsys.readouterr()

    def test_cli_json_gains_baseline_block(self, tmp_path):
        victim = _violation_tree(tmp_path, copies=1)
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "out.json"
        assert main(["lint", str(victim), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["lint", str(victim), "--baseline", str(baseline),
                     "--json", str(out)]) == 0
        payload = json.loads(out.read_text())["lint"]
        # the counts schema is frozen; baseline rides alongside it
        assert payload["counts"] == {
            "total": 1,
            "unsuppressed": 1,
            "suppressed": 0,
            "by_rule": {"DET-001": 1},
        }
        assert payload["baseline"]["baselined"] == 1
        assert payload["baseline"]["new"] == 0
        assert payload["ok"] is True

    def test_json_has_no_baseline_block_without_flag(self, tmp_path):
        victim = _violation_tree(tmp_path, copies=1)
        out = tmp_path / "out.json"
        main(["lint", str(victim), "--json", str(out)])
        assert "baseline" not in json.loads(out.read_text())["lint"]

    def test_update_baseline_requires_baseline(self, tmp_path, capsys):
        victim = _violation_tree(tmp_path, copies=1)
        assert main(["lint", str(victim), "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# GitHub annotation format
# ----------------------------------------------------------------------


class TestGithubFormat:
    def test_annotations_for_failing_findings(self, tmp_path, capsys):
        victim = _violation_tree(tmp_path, copies=1)
        assert main(["lint", str(victim), "--strict", "--format",
                     "github"]) == 1
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("::error"))
        assert f"file={victim}" in line
        assert "line=3" in line
        assert "title=repro-lint DET-001" in line
        assert line.endswith("::wall-clock read time.time() in a "
                             "deterministic module")

    def test_baselined_findings_get_no_annotation(self, tmp_path, capsys):
        victim = _violation_tree(tmp_path, copies=1)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(victim), "--baseline", str(baseline),
              "--update-baseline"])
        capsys.readouterr()
        assert main(["lint", str(victim), "--strict", "--baseline",
                     str(baseline), "--format", "github"]) == 0
        assert "::error" not in capsys.readouterr().out

    def test_github_format_rejects_json_stdout(self, tmp_path, capsys):
        victim = _violation_tree(tmp_path, copies=1)
        assert main(["lint", str(victim), "--format", "github",
                     "--json"]) == 2
        capsys.readouterr()

    def test_clean_tree_emits_no_annotations(self, capsys):
        assert main(["lint", PACKAGE_DIR, "--strict", "--format",
                     "github"]) == 0
        assert "::error" not in capsys.readouterr().out
