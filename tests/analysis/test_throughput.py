"""Tests for the analytic throughput timing models."""

import numpy as np
import pytest

from repro import algorithms
from repro.analysis import time_graphicionado, time_graphpulse
from repro.baselines import SynchronousDeltaEngine
from repro.core import (
    FunctionalGraphPulse,
    GraphPulseAccelerator,
    baseline_config,
    optimized_config,
)
from repro.graph import rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(400, 2400, seed=91)


@pytest.fixture(scope="module")
def functional(graph):
    return FunctionalGraphPulse(graph, algorithms.make_pagerank_delta()).run()


@pytest.fixture(scope="module")
def bsp(graph):
    return SynchronousDeltaEngine(
        graph, algorithms.make_pagerank_delta()
    ).run()


class TestGraphPulseTiming:
    def test_cycles_positive(self, functional):
        t = time_graphpulse(functional.rounds, optimized_config())
        assert t.total_cycles > 0
        assert t.num_rounds == functional.num_rounds
        assert t.seconds == pytest.approx(t.total_cycles * 1e-9)

    def test_baseline_slower_than_optimized(self, functional):
        opt = time_graphpulse(functional.rounds, optimized_config())
        base = time_graphpulse(functional.rounds, baseline_config())
        assert base.total_cycles > opt.total_cycles

    def test_baseline_moves_more_bytes(self, functional):
        opt = time_graphpulse(functional.rounds, optimized_config())
        base = time_graphpulse(functional.rounds, baseline_config())
        assert base.offchip_bytes > opt.offchip_bytes

    def test_bound_attribution_covers_all_rounds(self, functional):
        t = time_graphpulse(functional.rounds, optimized_config())
        assert sum(t.bound_rounds.values()) == t.num_rounds
        assert t.dominant_bound() in t.bound_rounds

    def test_fewer_streams_not_faster(self, functional):
        wide = time_graphpulse(functional.rounds, optimized_config())
        narrow = time_graphpulse(
            functional.rounds,
            optimized_config(generation_streams_per_processor=1),
        )
        assert narrow.total_cycles >= wide.total_cycles

    def test_optimized_bytes_match_functional_accounting(self, functional):
        t = time_graphpulse(functional.rounds, optimized_config())
        assert t.offchip_bytes == functional.traffic.total_bytes_fetched


class TestGraphicionadoTiming:
    def test_cycles_positive(self, graph, bsp):
        t = time_graphicionado(bsp.iterations, graph)
        assert t.total_cycles > 0
        assert t.num_rounds == bsp.num_iterations

    def test_more_streams_faster_or_equal(self, graph, bsp):
        narrow = time_graphicionado(bsp.iterations, graph, num_streams=2)
        wide = time_graphicionado(bsp.iterations, graph, num_streams=16)
        assert wide.total_cycles <= narrow.total_cycles

    def test_offchip_bytes_positive(self, graph, bsp):
        t = time_graphicionado(bsp.iterations, graph)
        assert t.offchip_bytes > 0


class TestPaperShape:
    """The headline orderings of Figure 10/11 must hold."""

    def test_graphpulse_beats_graphicionado(self, graph, functional, bsp):
        gp = time_graphpulse(functional.rounds, optimized_config())
        gio = time_graphicionado(bsp.iterations, graph)
        assert gp.seconds < gio.seconds

    def test_graphpulse_moves_less_data(self, graph, functional, bsp):
        gp = time_graphpulse(functional.rounds, optimized_config())
        gio = time_graphicionado(bsp.iterations, graph)
        assert gp.offchip_bytes < gio.offchip_bytes


class TestCrossValidation:
    """The analytic model and the detailed cycle model must agree on
    direction and rough magnitude where both can run."""

    def test_same_order_of_magnitude_as_cycle_model(self, graph):
        spec = algorithms.make_pagerank_delta()
        detailed = GraphPulseAccelerator(graph, spec).run()
        functional = FunctionalGraphPulse(graph, spec).run()
        analytic = time_graphpulse(functional.rounds, optimized_config())
        # the detailed model adds latency effects the analytic one
        # amortizes; they must stay within ~20x at toy scale, with the
        # analytic estimate the lower (throughput-bound) one
        assert analytic.total_cycles <= detailed.total_cycles
        assert detailed.total_cycles < 50 * analytic.total_cycles
