"""Tests for the evaluation sweep aggregator."""

import pytest

from repro.analysis import run_sweep


@pytest.fixture(scope="module")
def sweep():
    # tiny matrix: two algorithms x two datasets at small scale
    return run_sweep(
        datasets=("WG", "FB"),
        algorithms=("bfs", "cc"),
        scale=0.08,
    )


class TestSweep:
    def test_matrix_covered(self, sweep):
        assert set(sweep.results) == {
            ("bfs", "WG"),
            ("bfs", "FB"),
            ("cc", "WG"),
            ("cc", "FB"),
        }
        assert sweep.workloads() == sorted(sweep.results)

    def test_headline_aggregates(self, sweep):
        assert sweep.geomean_speedup() > 1.0
        assert sweep.geomean_speedup_vs_graphicionado() > 1.0
        assert 0.0 < sweep.mean_traffic_ratio() < 1.0
        assert 0.0 < sweep.mean_utilization() <= 1.0

    def test_renderings(self, sweep):
        fig10 = sweep.render_figure10()
        assert "Figure 10" in fig10
        assert "bfs" in fig10 and "cc" in fig10
        assert "Figure 11" in sweep.render_figure11()
        assert "Figure 12" in sweep.render_figure12()

    def test_per_dataset_scale_mapping(self):
        sweep = run_sweep(
            datasets=("WG",),
            algorithms=("bfs",),
            scale={"WG": 0.05},
        )
        result = sweep.results[("bfs", "WG")]
        assert result.graph.num_vertices < 1000

    def test_empty_sweep_aggregates_safely(self):
        from repro.analysis.sweep import SweepResult

        empty = SweepResult()
        assert empty.geomean_speedup() == 0.0
        assert empty.mean_traffic_ratio() == 0.0
        assert empty.mean_utilization() == 0.0
