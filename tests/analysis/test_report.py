"""Tests for report formatting helpers."""

import pytest

from repro.analysis import format_series, format_table, geometric_mean


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.0], ["longer", 12.5]]
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "12.50" in out

    def test_title(self):
        out = format_table(["x"], [["y"]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_float_format(self):
        out = format_table(["v"], [[0.123456]], float_format="{:.4f}")
        assert "0.1235" in out

    def test_non_floats_pass_through(self):
        out = format_table(["a", "b"], [[3, "x"]])
        assert "3" in out and "x" in out


class TestFormatSeries:
    def test_columns(self):
        out = format_series(
            {"events": [10.0, 5.0], "coalesced": [8.0, 4.0]},
            x_label="round",
        )
        lines = out.splitlines()
        assert lines[0].split() == ["round", "events", "coalesced"]
        assert lines[2].split()[0] == "0"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty(self):
        out = format_series({})
        assert "x" in out


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == 7.0

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == 4.0

    def test_empty(self):
        assert geometric_mean([]) == 0.0
