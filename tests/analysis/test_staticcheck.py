"""Tests for ``repro.analysis.staticcheck`` (the ``repro lint`` pass).

Structure mirrors the subsystem's contract:

- every rule's paired fixtures: the trigger snippet finds, the clean
  snippet doesn't, and the suppressed variant is reported-but-allowed;
- the framework mechanics (suppressions, scoping, import resolution,
  deterministic ordering, parse failures);
- rule-specific edges (seeded vs unseeded RNG, read-mode opens,
  same-module factories, typed excepts);
- the meta-test: the real ``src/repro`` tree must be lint-clean;
- the CLI verb's exit codes and JSON schema.
"""

import json
import os
from pathlib import Path

import pytest

import repro
from repro.analysis.staticcheck import (
    RULES,
    RULES_BY_ID,
    lint_paths,
    lint_source,
    rule_ids,
    run_selfcheck,
    select_rules,
)
from repro.analysis.staticcheck.selfcheck import suppressed_variant
from repro.cli import main

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def unsuppressed(findings):
    return [f for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# Paired fixtures, one trio per rule
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule", RULES, ids=lambda rule: rule.id)
class TestRuleFixtures:
    def test_trigger_fixture_fires(self, rule):
        findings = lint_source(
            rule.fixture_trigger, rule.fixture_path, [rule]
        )
        assert unsuppressed(findings), rule.id
        assert all(f.rule == rule.id for f in findings)
        assert all(f.hint == rule.hint for f in findings)

    def test_clean_fixture_passes(self, rule):
        findings = lint_source(rule.fixture_clean, rule.fixture_path, [rule])
        assert findings == []

    def test_suppressed_variant_is_allowed(self, rule):
        variant = suppressed_variant(rule)
        assert f"# repro: allow({rule.id})" in variant
        findings = lint_source(variant, rule.fixture_path, [rule])
        assert findings, "suppressed findings are still reported"
        assert unsuppressed(findings) == []

    def test_fixture_path_is_in_scope(self, rule):
        assert rule.applies_to(rule.fixture_path)


class TestSelfCheck:
    def test_registry_is_healthy(self):
        assert run_selfcheck() == []

    def test_broken_rule_is_caught(self):
        class Dead(type(RULES_BY_ID["DET-001"])):
            id = "DET-999"
            fixture_trigger = "x = 1\n"  # can never fire

        failures = run_selfcheck([Dead()])
        assert any(f.fixture == "trigger" for f in failures)


# ----------------------------------------------------------------------
# Framework mechanics
# ----------------------------------------------------------------------


class TestSuppressions:
    RULE = [RULES_BY_ID["DUR-001"]]
    PATH = "repro/obs/fixture.py"

    def test_previous_line_suppresses(self):
        source = (
            "# torn-file risk accepted here  # repro: allow(DUR-001)\n"
            'handle = open("out.json", "w")\n'
        )
        findings = lint_source(source, self.PATH, self.RULE)
        assert [f.suppressed for f in findings] == [True]

    def test_wildcard_and_multiple_ids(self):
        for directive in ("DUR-001, DET-001", "*"):
            source = f'open("o", "w")  # repro: allow({directive})\n'
            findings = lint_source(source, self.PATH, self.RULE)
            assert [f.suppressed for f in findings] == [True]

    def test_wrong_id_does_not_suppress(self):
        source = 'open("o", "w")  # repro: allow(DET-001)\n'
        findings = lint_source(source, self.PATH, self.RULE)
        assert [f.suppressed for f in findings] == [False]

    def test_distant_comment_does_not_suppress(self):
        source = (
            "# repro: allow(DUR-001)\n"
            "\n"
            'open("o", "w")\n'
        )
        findings = lint_source(source, self.PATH, self.RULE)
        assert [f.suppressed for f in findings] == [False]


class TestFramework:
    def test_out_of_scope_file_is_skipped(self):
        rule = RULES_BY_ID["DET-001"]
        source = "import time\nstamp = time.time()\n"
        assert lint_source(source, "repro/graph/io.py", [rule]) == []
        assert lint_source(source, "repro/core/queue.py", [rule])

    def test_import_aliases_resolve(self):
        rule = RULES_BY_ID["DET-001"]
        aliased = (
            "from time import perf_counter as tick\n"
            "span = tick()\n"
        )
        findings = lint_source(aliased, "repro/core/x.py", [rule])
        assert [f.message for f in findings] == [
            "wall-clock read time.perf_counter() in a deterministic module"
        ]

    def test_findings_sorted_and_located(self):
        source = (
            "import time\n"
            "import random\n"
            "b = random.random()\n"
            "a = time.time()\n"
        )
        findings = lint_source(source, "repro/core/x.py", list(RULES))
        assert [(f.line, f.rule) for f in findings] == [
            (3, "DET-002"),
            (4, "DET-001"),
        ]
        assert all(f.path == "repro/core/x.py" for f in findings)

    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", "repro/core/x.py", RULES)
        assert [f.rule for f in findings] == ["PARSE"]
        assert not findings[0].suppressed

    def test_select_rules_filters_and_rejects_unknown(self):
        only = select_rules(select=("DUR-001",))
        assert [rule.id for rule in only] == ["DUR-001"]
        without = select_rules(ignore=("DUR-001",))
        assert "DUR-001" not in [rule.id for rule in without]
        with pytest.raises(ValueError, match="DUR-9"):
            select_rules(select=("DUR-9",))

    def test_rule_ids_are_stable(self):
        assert rule_ids() == (
            "DET-001",
            "DET-002",
            "DUR-001",
            "ENG-001",
            "OBS-001",
            "RES-001",
            "RES-002",
            "SUB-001",
            "DET-003",
            "DUR-002",
            "CONC-001",
            "SUB-002",
        )


# ----------------------------------------------------------------------
# Rule-specific edges
# ----------------------------------------------------------------------


class TestDeterminismRules:
    def test_lease_file_is_allowlisted(self):
        rule = RULES_BY_ID["DET-001"]
        source = "import time\nage = time.time()\n"
        assert lint_source(source, "repro/resilience/lease.py", [rule]) == []
        assert lint_source(source, "repro/resilience/durable.py", [rule])

    def test_seeded_default_rng_passes(self):
        rule = [RULES_BY_ID["DET-002"]]
        seeded = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(seeded, "repro/graph/x.py", rule) == []

    def test_unseeded_default_rng_flagged(self):
        rule = [RULES_BY_ID["DET-002"]]
        unseeded = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(unseeded, "repro/graph/x.py", rule)
        assert "without a seed" in findings[0].message

    def test_entropy_sources_flagged(self):
        rule = [RULES_BY_ID["DET-002"]]
        source = (
            "import os\n"
            "import numpy.random\n"
            "token = os.urandom(8)\n"
            "noise = numpy.random.rand(3)\n"
        )
        findings = lint_source(source, "repro/sim/x.py", rule)
        assert len(findings) == 2

    def test_method_named_random_not_flagged(self):
        # .random() on an object (a seeded Generator) must not resolve
        rule = [RULES_BY_ID["DET-002"]]
        source = "def draw(rng):\n    return rng.random()\n"
        assert lint_source(source, "repro/graph/x.py", rule) == []


class TestDurabilityRule:
    RULE = [RULES_BY_ID["DUR-001"]]

    def test_read_modes_pass(self):
        source = (
            'a = open("f")\n'
            'b = open("f", "r")\n'
            'c = open("f", "rb")\n'
        )
        assert lint_source(source, "repro/graph/io.py", self.RULE) == []

    def test_mode_keyword_and_append_flagged(self):
        source = (
            'a = open("f", mode="ab")\n'
            'b = open("f", "a")\n'
        )
        findings = lint_source(source, "repro/graph/io.py", self.RULE)
        assert len(findings) == 2

    def test_pathlib_writes_flagged(self):
        source = (
            "from pathlib import Path\n"
            'Path("f").write_text("x")\n'
            'Path("f").open("w")\n'
        )
        findings = lint_source(source, "repro/graph/io.py", self.RULE)
        assert len(findings) == 2

    def test_ioutil_and_journal_allowlisted(self):
        source = 'handle = open("f", "wb")\n'
        assert lint_source(source, "src/repro/ioutil.py", self.RULE) == []
        assert (
            lint_source(source, "repro/resilience/journal.py", self.RULE)
            == []
        )


class TestEngineRegistryRule:
    RULE = [RULES_BY_ID["ENG-001"]]

    def test_same_module_factory_exempt(self):
        source = (
            "class SlicedGraphPulse:\n"
            "    pass\n"
            "\n"
            "def build_sliced(partition, spec):\n"
            "    return SlicedGraphPulse(partition, spec)\n"
        )
        assert lint_source(source, "repro/core/slicing.py", self.RULE) == []

    def test_tests_are_allowlisted(self):
        source = (
            "from repro.core.functional import FunctionalGraphPulse\n"
            "engine = FunctionalGraphPulse(g, spec)\n"
        )
        assert lint_source(source, "tests/core/test_x.py", self.RULE) == []
        assert lint_source(source, "repro/analysis/x.py", self.RULE)

    def test_attribute_call_flagged(self):
        source = (
            "import repro.core.functional as functional\n"
            "engine = functional.FunctionalGraphPulse(g, spec)\n"
        )
        findings = lint_source(source, "repro/analysis/x.py", self.RULE)
        assert "FunctionalGraphPulse" in findings[0].message


class TestSubstrateConstructionRule:
    RULE = [RULES_BY_ID["SUB-001"]]

    def test_direct_and_classmethod_construction_flagged(self):
        source = (
            "from repro.resilience.journal import SpillJournal\n"
            "from repro.resilience.lease import SliceLease\n"
            "from repro.resilience.durable import DurableCheckpointStore\n"
            "j = SpillJournal.create(path, 2)\n"
            "k = SpillJournal.open_append(path, 2)\n"
            "l = SliceLease.acquire(root, 0, owner='w')\n"
            "s = DurableCheckpointStore(run_dir)\n"
        )
        findings = lint_source(source, "repro/core/x.py", self.RULE)
        assert len(findings) == 4

    def test_read_only_statics_pass_everywhere(self):
        source = (
            "from repro.resilience.journal import SpillJournal\n"
            "scan = SpillJournal.scan(path, 2, None, add)\n"
            "buffers, offset = SpillJournal.replay(path, 2, None, add)\n"
            "SpillJournal.truncate(path, offset)\n"
            "SpillJournal.compact_file(path, 2, 1, add)\n"
        )
        assert lint_source(source, "repro/core/x.py", self.RULE) == []

    def test_construction_authorities_allowlisted(self):
        source = (
            "from repro.resilience.journal import SpillJournal\n"
            "j = SpillJournal.create(path, 2)\n"
        )
        for path in (
            "repro/resilience/substrate/fs.py",
            "repro/core/engines.py",
            "tests/resilience/test_x.py",
        ):
            assert lint_source(source, path, self.RULE) == [], path
        assert lint_source(source, "repro/core/hostsliced.py", self.RULE)

    def test_same_module_definition_exempt(self):
        source = (
            "class SpillJournal:\n"
            "    @classmethod\n"
            "    def create(cls, path, n):\n"
            "        return SpillJournal(path, None, n)\n"
            "\n"
            "def reopen(path, n):\n"
            "    return SpillJournal.open_append(path, n)\n"
        )
        assert (
            lint_source(source, "repro/resilience/journal.py", self.RULE)
            == []
        )


class TestSilentExceptRule:
    RULE = [RULES_BY_ID["RES-001"]]
    PATH = "repro/resilience/recovery.py"

    def test_bare_except_always_flagged(self):
        source = (
            "def f(step, log):\n"
            "    try:\n"
            "        step()\n"
            "    except:\n"
            "        log('failed')\n"
        )
        findings = lint_source(source, self.PATH, self.RULE)
        assert "bare 'except:'" in findings[0].message

    def test_typed_silent_except_passes(self):
        source = (
            "def f(path):\n"
            "    try:\n"
            "        path.unlink()\n"
            "    except FileNotFoundError:\n"
            "        pass\n"
        )
        assert lint_source(source, self.PATH, self.RULE) == []

    def test_broad_except_with_handling_passes(self):
        source = (
            "def f(step, log):\n"
            "    try:\n"
            "        step()\n"
            "    except Exception as exc:\n"
            "        log(exc)\n"
            "        raise\n"
        )
        assert lint_source(source, self.PATH, self.RULE) == []

    def test_broad_tuple_silent_flagged(self):
        source = (
            "def f(step):\n"
            "    try:\n"
            "        step()\n"
            "    except (ValueError, Exception):\n"
            "        pass\n"
        )
        findings = lint_source(source, self.PATH, self.RULE)
        assert "silently swallows" in findings[0].message

    def test_out_of_scope_module_skipped(self):
        source = (
            "def f(step):\n"
            "    try:\n"
            "        step()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert lint_source(source, "repro/obs/export.py", self.RULE) == []


class TestBoundedRetryRule:
    RULE = [RULES_BY_ID["RES-002"]]
    PATH = "repro/resilience/storagefaults.py"

    def test_while_one_constant_also_counts(self):
        source = (
            "def f(write):\n"
            "    while 1:\n"
            "        try:\n"
            "            return write()\n"
            "        except OSError:\n"
            "            continue\n"
        )
        findings = lint_source(source, self.PATH, self.RULE)
        assert "unbounded" in findings[0].message

    def test_bare_except_in_retry_loop_flagged(self):
        source = (
            "def f(write):\n"
            "    while True:\n"
            "        try:\n"
            "            return write()\n"
            "        except:\n"
            "            pass\n"
        )
        assert lint_source(source, self.PATH, self.RULE)

    def test_handler_that_reraises_passes(self):
        source = (
            "def f(write, fatal):\n"
            "    while True:\n"
            "        try:\n"
            "            return write()\n"
            "        except OSError as exc:\n"
            "            if fatal(exc):\n"
            "                pass\n"
            "            raise\n"
        )
        assert lint_source(source, self.PATH, self.RULE) == []

    def test_handler_that_breaks_passes(self):
        source = (
            "def f(write):\n"
            "    while True:\n"
            "        try:\n"
            "            write()\n"
            "        except OSError:\n"
            "            break\n"
        )
        assert lint_source(source, self.PATH, self.RULE) == []

    def test_bounded_for_loop_is_the_blessed_idiom(self):
        source = (
            "def f(write, attempts):\n"
            "    for attempt in range(attempts):\n"
            "        try:\n"
            "            return write()\n"
            "        except OSError:\n"
            "            if attempt == attempts - 1:\n"
            "                raise\n"
        )
        assert lint_source(source, self.PATH, self.RULE) == []

    def test_non_io_retry_is_out_of_jurisdiction(self):
        source = (
            "def f(poll):\n"
            "    while True:\n"
            "        try:\n"
            "            return poll()\n"
            "        except KeyError:\n"
            "            continue\n"
        )
        assert lint_source(source, self.PATH, self.RULE) == []

    def test_out_of_scope_module_skipped(self):
        source = (
            "def f(write):\n"
            "    while True:\n"
            "        try:\n"
            "            return write()\n"
            "        except OSError:\n"
            "            continue\n"
        )
        assert lint_source(source, "repro/core/slicing.py", self.RULE) == []


# ----------------------------------------------------------------------
# The real tree must be clean
# ----------------------------------------------------------------------


class TestRealTree:
    def test_src_repro_has_no_unsuppressed_findings(self):
        findings = lint_paths([PACKAGE_DIR], RULES)
        bad = unsuppressed(findings)
        assert bad == [], "\n".join(f.format() for f in bad)

    def test_known_exemptions_are_visible(self):
        # the suppressed sites are reported (auditable), not hidden
        findings = lint_paths([PACKAGE_DIR], RULES)
        rules = {f.rule for f in findings if f.suppressed}
        assert "DET-001" in rules  # durable.py resume-span wall clock
        assert "ENG-001" in rules  # baselines' internal BSP substrate


# ----------------------------------------------------------------------
# CLI verb
# ----------------------------------------------------------------------


class TestLintCLI:
    def test_strict_clean_tree_exits_zero(self, capsys):
        assert main(["lint", PACKAGE_DIR, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "lint: 0 finding(s)" in out

    def test_strict_violation_exits_one(self, tmp_path, capsys):
        victim = tmp_path / "repro" / "obs" / "bad.py"
        victim.parent.mkdir(parents=True)
        victim.write_text('open("o", "w").write("x")\n')
        assert main(["lint", str(victim)]) == 0  # advisory by default
        assert main(["lint", str(victim), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "DUR-001" in out
        assert "hint:" in out

    def test_json_schema(self, tmp_path, capsys):
        victim = tmp_path / "bad.py"
        victim.write_text(
            "import random\n"
            "x = random.random()  # repro: allow(DET-002)\n"
            "\n"
            "y = random.random()\n"
        )
        code = main(["lint", str(victim), "--strict", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)["lint"]
        assert payload["ok"] is False
        assert payload["counts"] == {
            "total": 2,
            "unsuppressed": 1,
            "suppressed": 1,
            "by_rule": {"DET-002": 1},
        }
        finding = payload["findings"][-1]
        assert set(finding) == {
            "rule",
            "severity",
            "path",
            "line",
            "col",
            "message",
            "hint",
            "suppressed",
        }

    def test_json_to_file_is_atomic_artifact(self, tmp_path):
        out = tmp_path / "lint.json"
        assert main(["lint", PACKAGE_DIR, "--json", str(out)]) == 0
        payload = json.loads(out.read_text())["lint"]
        assert payload["ok"] is True
        assert payload["counts"]["unsuppressed"] == 0

    def test_rule_selection(self, tmp_path, capsys):
        victim = tmp_path / "bad.py"
        victim.write_text("import random\nx = random.random()\n")
        assert (
            main(["lint", str(victim), "--strict", "--ignore-rule",
                  "DET-002"])
            == 0
        )
        assert (
            main(["lint", str(victim), "--strict", "--rule", "DET-002"])
            == 1
        )
        capsys.readouterr()

    def test_unknown_rule_exits_typed(self, capsys):
        assert main(["lint", "--rule", "NOPE-1"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_typed(self, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_self_check_mode(self, capsys):
        assert main(["lint", "--self-check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)["self_check"]
        assert payload["ok"] is True
        assert payload["rules"] == list(rule_ids())

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out
        assert "allowlist" in out

    def test_default_path_is_package(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # no src/repro here
        assert main(["lint", "--strict"]) == 0
        assert "lint: 0 finding(s)" in capsys.readouterr().out


class TestBarePrintRule:
    RULE = [RULES_BY_ID["OBS-001"]]

    def test_bare_print_flagged_everywhere(self):
        source = 'print("events drained")\n'
        findings = lint_source(source, "repro/core/engines.py", self.RULE)
        assert len(findings) == 1
        assert findings[0].rule == "OBS-001"

    def test_builtins_print_alias_flagged(self):
        source = "import builtins\nbuiltins.print('x')\n"
        assert lint_source(source, "repro/core/queue.py", self.RULE)

    def test_cli_tests_benchmarks_examples_allowlisted(self):
        source = 'print("table")\n'
        for path in (
            "repro/cli.py",
            "tests/core/test_queue.py",
            "benchmarks/bench_fig10.py",
            "examples/demo.py",
        ):
            assert lint_source(source, path, self.RULE) == []

    def test_method_named_print_not_flagged(self):
        source = "def dump(report):\n    report.print()\n"
        assert lint_source(source, "repro/core/engines.py", self.RULE) == []

    def test_suppression_comment_honoured(self):
        source = 'print("debug")  # repro: allow(OBS-001)\n'
        findings = lint_source(source, "repro/core/engines.py", self.RULE)
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_stderr_write_is_the_clean_alternative(self):
        source = (
            "import sys\n"
            "sys.stderr.write('progress: round=10\\n')\n"
        )
        assert lint_source(source, "repro/obs/metrics.py", self.RULE) == []


class TestDetScopeCoversObs:
    RULE = [RULES_BY_ID["DET-001"]]

    def test_obs_modules_are_in_scope(self):
        source = "import time\nstamp = time.time()\n"
        findings = lint_source(source, "repro/obs/metrics.py", self.RULE)
        assert len(findings) == 1

    def test_bench_module_is_allowlisted(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert lint_source(source, "repro/obs/bench.py", self.RULE) == []
