#!/usr/bin/env python
"""Quickstart: run PageRank through the GraphPulse event model.

Builds a power-law graph, runs PageRank-Delta on the functional
GraphPulse engine, checks the answer against the golden reference, and
prints the headline event statistics the paper's design is built around
(coalescing rate and round count vs BSP iterations).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import algorithms, graph
from repro.baselines import SynchronousDeltaEngine
from repro.core import FunctionalGraphPulse


def main():
    # 1. A synthetic social-network-like graph (Graph500 R-MAT skew).
    g = graph.rmat_graph(2_000, 16_000, seed=1, name="demo")
    print(f"graph: {g}")

    # 2. Pick an algorithm from the Table II roster.
    spec = algorithms.get_algorithm("pagerank", g)

    # 3. Run it on the event-driven engine (Algorithm 1 semantics:
    #    binned coalescing queue, round-robin drains, asynchronous
    #    propagation).
    result = FunctionalGraphPulse(g, spec).run()

    # 4. Validate against a classical synchronous solver.
    reference = algorithms.pagerank_reference(g)
    error = np.max(np.abs(result.values - reference))
    print(f"max |rank - reference| = {error:.2e}")
    assert error < 1e-4, "event-driven result diverged!"

    # 5. The numbers that motivate the GraphPulse design:
    bsp = SynchronousDeltaEngine(g, spec).run()
    print(f"events produced:        {result.total_events_produced:,}")
    print(f"events processed:       {result.total_events_processed:,}")
    print(f"eliminated by coalescing: {result.coalesce_rate():.1%}")
    print(
        f"asynchronous rounds:    {result.num_rounds} "
        f"(vs {bsp.num_iterations} BSP iterations)"
    )
    print(f"off-chip data utilization: {result.traffic.utilization():.1%}")

    top = np.argsort(result.values)[::-1][:5]
    print("top-5 ranked vertices:", ", ".join(
        f"v{v}={result.values[v]:.3f}" for v in top
    ))


if __name__ == "__main__":
    main()
