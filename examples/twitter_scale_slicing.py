#!/usr/bin/env python
"""Processing a graph bigger than the accelerator: slicing (Section IV-F).

The paper's Twitter workload does not fit the 64 MB on-chip queue, so
the graph is partitioned into slices processed one at a time, with
cross-slice events spilled to DRAM and streamed back when their slice
activates.  This example runs Connected Components on the Twitter proxy
split into 3 slices (as in the paper), verifies the answer is identical
to the unsliced run, and reports the spill overhead and the effect of
partition quality.

Run:  python examples/twitter_scale_slicing.py
"""

import numpy as np

from repro import algorithms
from repro.core import FunctionalGraphPulse, SlicedGraphPulse
from repro.graph import (
    contiguous_partition,
    greedy_edge_cut_partition,
    load_dataset,
)


def main():
    # scaled Twitter proxy (full proxy is 730k edges; CC converges fast
    # but Python appreciates the head start)
    g = algorithms.symmetrize(load_dataset("TW", scale=0.1))
    spec = algorithms.make_connected_components()
    print(f"graph: {g}")

    unsliced = FunctionalGraphPulse(g, spec).run()

    for name, partition in [
        ("contiguous", contiguous_partition(g, 3)),
        ("greedy edge-cut", greedy_edge_cut_partition(g, 3)),
    ]:
        result = SlicedGraphPulse(partition, spec).run()
        assert np.array_equal(result.values, unsliced.values), (
            "slicing changed the fixed point!"
        )
        spilled = sum(a.events_spilled for a in result.activations)
        print(
            f"\n{name}: {partition.num_slices} slices, "
            f"cut fraction {partition.cut_fraction():.1%}"
        )
        print(
            f"  passes: {result.num_passes}   "
            f"activations: {len(result.activations)}   "
            f"events spilled: {spilled:,}"
        )
        print(
            f"  spill traffic: {result.total_spill_bytes / 1e6:.2f} MB "
            f"({result.spill_overhead():.1%} of off-chip bytes)"
        )

    components = len(set(unsliced.values.tolist()))
    print(f"\nconnected components found: {components}")


if __name__ == "__main__":
    main()
