#!/usr/bin/env python
"""Social-network analytics on the accelerator: PageRank + Adsorption.

The paper's motivating workload: ranking and label propagation over a
social graph (the FB/LJ workloads of Table IV).  This example runs both
algorithms on the Facebook proxy through the full cross-system
comparison harness — GraphPulse (optimized and baseline), Graphicionado
and Ligra — and prints a miniature Figure 10 row, then inspects the
per-round event dynamics (the Figure 4 curve).

Run:  python examples/social_network_ranking.py
"""

from repro.analysis import format_table, run_comparison


def main():
    rows = []
    curves = {}
    for algorithm in ("pagerank", "adsorption"):
        result = run_comparison("FB", algorithm, scale=0.3)
        summary = result.summary()
        rows.append(
            [
                algorithm,
                summary["speedup_vs_ligra"],
                summary["baseline_speedup_vs_ligra"],
                summary["speedup_vs_graphicionado"],
                summary["traffic_vs_graphicionado"],
                int(summary["graphpulse_rounds"]),
                int(summary["bsp_iterations"]),
            ]
        )
        curves[algorithm] = result.functional.rounds

    print(
        format_table(
            [
                "algorithm",
                "GP/Ligra",
                "GPbase/Ligra",
                "GP/G'nado",
                "traffic ratio",
                "rounds",
                "BSP iters",
            ],
            rows,
            title="Facebook proxy: speedups (higher is better), traffic "
            "(lower is better)",
        )
    )

    print("\nPageRank event population per round (Figure 4 dynamics):")
    for record in curves["pagerank"][:10]:
        produced = record.events_produced
        remaining = record.events_remaining
        saved = 1.0 - remaining / produced if produced else 0.0
        print(
            f"  round {record.round_index:2d}: produced {produced:7,}  "
            f"remaining after coalescing {remaining:7,}  "
            f"({saved:.0%} eliminated)"
        )


if __name__ == "__main__":
    main()
