#!/usr/bin/env python
"""Mapping a new algorithm onto GraphPulse (Section III-B).

The paper's programming interface asks the user for four things:
propagate, reduce, the initial vertex value (the reduce identity) and
the initial event deltas.  Any algorithm whose reduce operator is
commutative + associative with an identity, and whose propagate
distributes over it, runs unmodified on every engine in this repository.

This example adds *Single-Source Widest Path* (maximum-bottleneck
routing: the best path is the one whose weakest edge is strongest),
which is not in the paper's Table II — demonstrating that the interface
generalizes:

    propagate(delta) = min(delta, E_ij)     # path bottleneck
    reduce           = max                  # keep the best bottleneck
    identity         = -inf
    initial delta    = +inf at the root

Run:  python examples/custom_algorithm.py
"""

import math

import numpy as np

from repro.algorithms.base import AlgorithmSpec
from repro.core import FunctionalGraphPulse, GraphPulseAccelerator
from repro.graph import random_weights, rmat_graph


def make_widest_path(root: int) -> AlgorithmSpec:
    """Single-source widest path as a delta-accumulative spec."""

    def reduce_fn(state: float, delta: float) -> float:
        return max(state, delta)

    def propagate_fn(delta, src, dst, weight, out_degree):
        return min(delta, weight)

    def initial_delta(vertex, graph):
        return math.inf if vertex == root else -math.inf

    return AlgorithmSpec(
        name="widest-path",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=-math.inf,
        initial_delta=initial_delta,
        should_propagate=lambda change: True,
        uses_weights=True,
        additive=False,
        description=f"maximum-bottleneck path widths from vertex {root}",
    )


def widest_path_reference(graph, root):
    """Golden oracle: Dijkstra variant maximizing the bottleneck."""
    import heapq

    width = np.full(graph.num_vertices, -math.inf)
    width[root] = math.inf
    heap = [(-math.inf, root)]  # max-heap by negated width
    while heap:
        negative, u = heapq.heappop(heap)
        if -negative < width[u]:
            continue
        for v, w in zip(
            graph.neighbors(u).tolist(), graph.edge_weights(u).tolist()
        ):
            candidate = min(width[u], w)
            if candidate > width[v]:
                width[v] = candidate
                heapq.heappush(heap, (-candidate, v))
    return width


def main():
    g = random_weights(rmat_graph(1_000, 8_000, seed=3), low=1, high=100)
    root = int(np.argmax(g.out_degrees()))
    spec = make_widest_path(root)

    result = FunctionalGraphPulse(g, spec).run()
    reference = widest_path_reference(g, root)
    reachable = np.isfinite(reference) & (reference > -math.inf)
    assert np.allclose(result.values[reachable], reference[reachable])
    print(
        f"widest-path from v{root}: {int(reachable.sum())} reachable "
        f"vertices, verified against Dijkstra oracle"
    )
    print(
        f"functional engine: {result.num_rounds} rounds, "
        f"{result.total_events_processed:,} events "
        f"({result.coalesce_rate():.0%} coalesced away)"
    )

    # the same spec runs unmodified on the cycle-level accelerator
    cycle = GraphPulseAccelerator(g, spec).run()
    assert np.array_equal(cycle.values, result.values)
    print(
        f"cycle model: {cycle.total_cycles:,} cycles "
        f"({cycle.seconds * 1e6:.0f} us at 1 GHz), "
        f"{cycle.offchip_bytes / 1e6:.1f} MB off-chip"
    )


if __name__ == "__main__":
    main()
