#!/usr/bin/env python
"""Shortest paths on a road-style mesh, on the cycle-level accelerator.

SSSP is one of the paper's five evaluated algorithms and the one where
asynchronous execution shines on high-diameter graphs: the coalescing
queue keeps exactly one tentative distance per vertex in flight, and
lookahead lets a distance improvement travel many hops inside a single
round.  This example routes over a weighted grid ("road network"),
compares rounds against BSP iterations, and then runs the detailed
cycle-level accelerator model to show the Figure 13-style stage profile.

Run:  python examples/road_navigation.py
"""

import numpy as np

from repro import algorithms
from repro.baselines import SynchronousDeltaEngine
from repro.core import FunctionalGraphPulse, GraphPulseAccelerator
from repro.graph import grid_graph, random_weights


def main():
    # A 40x40 road mesh with random segment costs.
    g = random_weights(grid_graph(40, 40), low=1.0, high=5.0, seed=2)
    source = 0  # north-west corner
    target = g.num_vertices - 1  # south-east corner
    spec = algorithms.make_sssp(root=source)

    functional = FunctionalGraphPulse(g, spec).run()
    reference = algorithms.sssp_reference(g, source)
    assert np.allclose(functional.values, reference)
    print(f"distance corner-to-corner: {functional.values[target]:.2f}")

    bsp = SynchronousDeltaEngine(g, spec).run()
    print(
        f"asynchronous rounds: {functional.num_rounds}   "
        f"BSP iterations: {bsp.num_iterations}   "
        f"(lookahead covers {bsp.num_iterations / functional.num_rounds:.1f} "
        "hops per round)"
    )

    # Cycle-level run: where does an event's time go?
    cycle = GraphPulseAccelerator(g, spec).run()
    assert np.array_equal(cycle.values, functional.values)
    print(f"\ncycle-level model: {cycle.total_cycles:,} cycles "
          f"({cycle.seconds * 1e6:.1f} us at 1 GHz)")
    print("per-event stage profile (cycles, Figure 13 stages):")
    for stage, cycles in cycle.stage_profile.per_event().items():
        print(f"  {stage:<12} {cycles:6.1f}")
    hit_rate = cycle.dram_stats.get("bytes", 0)
    print(f"off-chip traffic: {hit_rate / 1e6:.2f} MB, "
          f"utilization {cycle.data_utilization():.1%}")


if __name__ == "__main__":
    main()
