"""The Engine API: one registry, one result shape, for every engine.

Historically each engine grew its own constructor signature and its own
result dataclass (``FunctionalResult``, accelerator stats,
``SlicedResult``, ``ParallelSlicedResult``, the baselines' records),
so every consumer — the CLI, the crash harness, the campaign runner,
benchmarks — carried a per-engine ``if`` ladder.  This module replaces
those ladders with:

``build_engine(name, workload, config, *, resilience=None,
timeseries=None)``
    The single construction path.  ``workload`` is ``(graph, spec)``,
    ``config`` is a plain option mapping validated against the engine's
    accepted options (an unknown key raises
    :class:`repro.errors.ReproError` — options are never silently
    dropped).  Engines that do not accept resilience refuse it here,
    before any work happens.

:class:`RunResult`
    The unified result: final ``values``, ``converged``, the
    ``rounds``/``passes`` counters (``None`` where an engine has no such
    notion), engine-specific counters under ``stats``, the resilience
    summary, the active trace handle, and ``raw`` — the engine's native
    result object for callers that need the long tail (activation lists,
    per-round records, model configs).  ``to_json()`` emits the one
    schema every ``--json`` consumer sees; ``validate_run_result``
    checks a payload against it.

:class:`Engine`
    The protocol a registered engine satisfies: ``name``, ``runner``
    (the underlying engine object), ``run() -> RunResult``, and
    ``restore(restored)`` for resumable engines.

The legacy constructors (``FunctionalGraphPulse(...)``,
``SlicedGraphPulse(partition, ...)`` …) remain importable for callers
with exotic needs, but new code should not grow third copies of the
construction logic — register here instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from ..errors import ReproError
from ..obs import trace as obs_trace

__all__ = [
    "Engine",
    "EngineSpec",
    "RunResult",
    "RUN_RESULT_SCHEMA",
    "RESUME_PAYLOAD_SCHEMA",
    "JOURNAL_PROVENANCE_KEYS",
    "WORKER_STATS_KEYS",
    "validate_run_result",
    "validate_resume_payload",
    "register_engine",
    "engine_names",
    "engine_spec",
    "resilient_engine_names",
    "resumable_engine_names",
    "build_engine",
]


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------


@dataclass
class RunResult:
    """Engine-independent run outcome (module docs)."""

    engine: str
    values: np.ndarray
    converged: bool
    #: fine-grained work counter (engine rounds / BSP iterations);
    #: None when the engine has no such notion
    rounds: Optional[int]
    #: coarse slice-schedule counter (sliced passes / super-rounds);
    #: None for single-queue engines
    passes: Optional[int]
    #: engine-specific counters (cycles, spill bytes, coalesce rate, …)
    stats: Dict[str, Any] = field(default_factory=dict)
    #: resilience harness activity summary; None when resilience was off
    resilience: Optional[Dict[str, Any]] = None
    #: the tracer active during the run, when tracing was on
    trace: Optional[Any] = None
    #: the engine's native result object (escape hatch for the long tail)
    raw: Any = None

    def to_json(self) -> Dict[str, Any]:
        """The one ``--json`` result schema, identical across engines."""
        return {
            "engine": self.engine,
            "converged": bool(self.converged),
            "rounds": None if self.rounds is None else int(self.rounds),
            "passes": None if self.passes is None else int(self.passes),
            "stats": dict(self.stats),
            "resilience": self.resilience,
        }


#: key -> allowed types of the ``RunResult.to_json()`` payload
RUN_RESULT_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "engine": (str,),
    "converged": (bool,),
    "rounds": (int, type(None)),
    "passes": (int, type(None)),
    "stats": (dict,),
    "resilience": (dict, type(None)),
}


#: per-worker telemetry keys every sliced-mp stats payload must carry
WORKER_STATS_KEYS: Tuple[str, ...] = (
    "worker",
    "activations",
    "events_drained",
    "rounds",
    "barrier_wait_rounds",
    "journal_replays",
    "lease_recoveries",
)


def _validate_worker_stats(stats: Dict[str, Any]) -> None:
    """sliced-mp results must carry the per-worker telemetry block."""
    for key in ("workers", "recoveries"):
        if not isinstance(stats.get(key), int):
            raise ValueError(
                f"sliced-mp stats[{key!r}] should be int, "
                f"got {type(stats.get(key)).__name__}"
            )
    worker_stats = stats.get("worker_stats")
    if not isinstance(worker_stats, list):
        raise ValueError(
            f"sliced-mp stats['worker_stats'] should be a list, "
            f"got {type(worker_stats).__name__}"
        )
    if len(worker_stats) != stats["workers"]:
        raise ValueError(
            f"sliced-mp worker_stats has {len(worker_stats)} entries "
            f"for {stats['workers']} workers"
        )
    for entry in worker_stats:
        if not isinstance(entry, dict):
            raise ValueError("sliced-mp worker_stats entries must be dicts")
        for key in WORKER_STATS_KEYS:
            if not isinstance(entry.get(key), int):
                raise ValueError(
                    f"sliced-mp worker_stats[{key!r}] should be int, "
                    f"got {type(entry.get(key)).__name__}"
                )


def validate_run_result(payload: Dict[str, Any]) -> None:
    """Assert ``payload`` matches the RunResult JSON schema exactly.

    Raises ``ValueError`` naming the first violation: a missing key, an
    unexpected key, or a mistyped value.  Engine-conditional blocks are
    held to their own contracts too: a ``sliced-mp`` payload must carry
    the per-worker telemetry (``workers``/``recoveries``/
    ``worker_stats`` with :data:`WORKER_STATS_KEYS` per worker).  Used
    by the tests and the CI smoke jobs to hold every engine to the same
    contract.
    """
    missing = sorted(set(RUN_RESULT_SCHEMA) - set(payload))
    if missing:
        raise ValueError(f"result payload missing keys: {missing}")
    extra = sorted(set(payload) - set(RUN_RESULT_SCHEMA))
    if extra:
        raise ValueError(f"result payload has unexpected keys: {extra}")
    for key, types in RUN_RESULT_SCHEMA.items():
        if not isinstance(payload[key], types):
            raise ValueError(
                f"result[{key!r}] should be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(payload[key]).__name__}"
            )
    if payload["engine"] == "sliced-mp":
        _validate_worker_stats(payload["stats"])


#: key -> allowed types of the ``repro resume --json`` ``resumed`` block
RESUME_PAYLOAD_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "run_dir": (str,),
    "checkpoint": (int, type(None)),
    "round_index": (int, type(None)),
    "generation": (int, type(None)),
    "fallback": (bool,),
    "from_scratch": (bool,),
    "checkpoints_skipped": (list,),
    "journal": (dict, type(None)),
}

#: keys of the journal replay provenance (``JournalScan.provenance()``)
JOURNAL_PROVENANCE_KEYS: Tuple[str, ...] = (
    "records_replayed",
    "records_discarded",
    "bytes_discarded",
    "commit",
)


def validate_resume_payload(payload: Dict[str, Any]) -> None:
    """Assert a ``repro resume --json`` payload matches its schema.

    ``payload`` is the whole resume JSON object; its ``resumed`` block
    (recovery provenance: which checkpoint generation restored, what
    the fallback ladder skipped, journal replay stats) is held to
    :data:`RESUME_PAYLOAD_SCHEMA` exactly, and its ``result`` block to
    :func:`validate_run_result`.  Raises ``ValueError`` naming the
    first violation.
    """
    resumed = payload.get("resumed")
    if not isinstance(resumed, dict):
        raise ValueError("resume payload missing the 'resumed' block")
    missing = sorted(set(RESUME_PAYLOAD_SCHEMA) - set(resumed))
    if missing:
        raise ValueError(f"resumed block missing keys: {missing}")
    extra = sorted(set(resumed) - set(RESUME_PAYLOAD_SCHEMA))
    if extra:
        raise ValueError(f"resumed block has unexpected keys: {extra}")
    for key, types in RESUME_PAYLOAD_SCHEMA.items():
        if not isinstance(resumed[key], types):
            raise ValueError(
                f"resumed[{key!r}] should be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(resumed[key]).__name__}"
            )
    for entry in resumed["checkpoints_skipped"]:
        if not isinstance(entry, dict) or not isinstance(
            entry.get("seq"), int
        ):
            raise ValueError(
                "resumed['checkpoints_skipped'] entries must be dicts "
                "with an int 'seq'"
            )
    journal = resumed["journal"]
    if journal is not None:
        for key in JOURNAL_PROVENANCE_KEYS:
            if not isinstance(journal.get(key), int):
                raise ValueError(
                    f"resumed['journal'][{key!r}] should be int, "
                    f"got {type(journal.get(key)).__name__}"
                )
    if resumed["fallback"] and not resumed["checkpoints_skipped"]:
        raise ValueError(
            "resumed claims fallback but skipped no checkpoints"
        )
    result = payload.get("result")
    if not isinstance(result, dict):
        raise ValueError("resume payload missing the 'result' block")
    validate_run_result(result)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class Engine(Protocol):
    """What ``build_engine`` returns."""

    name: str
    runner: Any

    def run(self) -> RunResult: ...

    def restore(self, restored: Any) -> None: ...


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry."""

    name: str
    build: Callable[..., Any]
    summarize: Callable[[Any], RunResult]
    resilient: bool = False
    resumable: bool = False
    description: str = ""


_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    build: Callable[..., Any],
    summarize: Callable[[Any], RunResult],
    *,
    resilient: bool = False,
    resumable: bool = False,
    description: str = "",
) -> None:
    """Add an engine to the registry (last registration wins)."""
    _REGISTRY[name] = EngineSpec(
        name=name,
        build=build,
        summarize=summarize,
        resilient=resilient,
        resumable=resumable,
        description=description,
    )


def engine_names() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def resilient_engine_names() -> Tuple[str, ...]:
    return tuple(s.name for s in _REGISTRY.values() if s.resilient)


def resumable_engine_names() -> Tuple[str, ...]:
    return tuple(s.name for s in _REGISTRY.values() if s.resumable)


def engine_spec(name: str) -> EngineSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(_REGISTRY)}"
        ) from None


class EngineHandle:
    """Concrete :class:`Engine`: a built runner plus its summarizer."""

    def __init__(
        self,
        name: str,
        runner: Any,
        summarize: Callable[[Any], RunResult],
    ):
        self.name = name
        self.runner = runner
        self._summarize = summarize

    def restore(self, restored: Any) -> None:
        """Adopt a durable checkpoint (resumable engines only)."""
        self.runner.restore(restored)

    def run(self) -> RunResult:
        result = self._summarize(self.runner.run())
        result.trace = obs_trace.ACTIVE
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"EngineHandle({self.name!r}, {self.runner!r})"


def build_engine(
    name: str,
    workload: Tuple[Any, Any],
    config: Optional[Dict[str, Any]] = None,
    *,
    resilience: Optional[Any] = None,
    timeseries: Optional[Any] = None,
) -> EngineHandle:
    """Construct a registered engine (the single construction path).

    ``workload`` is ``(graph, spec)``; ``config`` maps engine option
    names to values and is validated strictly.  ``resilience`` is a
    :class:`repro.resilience.ResilienceConfig` and is refused by
    engines not registered as resilient.
    """
    entry = engine_spec(name)
    graph, spec = workload
    if resilience is not None and not entry.resilient:
        raise ReproError(
            f"engine {name!r} does not support resilience; choose one of: "
            f"{', '.join(resilient_engine_names())}"
        )
    options = dict(config or {})
    runner = entry.build(
        graph, spec, options, resilience=resilience, timeseries=timeseries
    )
    if options:
        raise ReproError(
            f"engine {name!r} does not accept option(s) "
            f"{', '.join(sorted(options))}"
        )
    return EngineHandle(name, runner, entry.summarize)


# ----------------------------------------------------------------------
# Built-in engines
# ----------------------------------------------------------------------


def _take(options: Dict[str, Any], **defaults: Any) -> Dict[str, Any]:
    """Pop the engine's known options, leaving unknowns for the caller
    check in :func:`build_engine` to reject."""
    return {
        key: options.pop(key, default) for key, default in defaults.items()
    }


def _build_functional(graph, spec, options, *, resilience, timeseries):
    from .functional import FunctionalGraphPulse

    kwargs = _take(
        options,
        num_bins=64,
        block_size=128,
        track_lookahead=False,
        global_threshold=None,
        max_rounds=100_000,
        scheduling="round-robin",
    )
    return FunctionalGraphPulse(
        graph, spec, timeseries=timeseries, resilience=resilience, **kwargs
    )


def _summarize_functional(result) -> RunResult:
    return RunResult(
        engine="functional",
        values=result.values,
        converged=result.converged,
        rounds=result.num_rounds,
        passes=None,
        stats={
            "events_processed": result.total_events_processed,
            "events_produced": result.total_events_produced,
            "coalesce_rate": result.coalesce_rate(),
        },
        resilience=result.resilience,
        raw=result,
    )


def _build_cycle(graph, spec, options, *, resilience, timeseries):
    from .accelerator import GraphPulseAccelerator

    kwargs = _take(
        options, config=None, global_threshold=None, max_rounds=10_000
    )
    config = kwargs.pop("config")
    return GraphPulseAccelerator(
        graph,
        spec,
        config,
        timeseries=timeseries,
        resilience=resilience,
        **kwargs,
    )


def _summarize_cycle(result) -> RunResult:
    return RunResult(
        engine="cycle",
        values=result.values,
        converged=result.converged,
        rounds=result.num_rounds,
        passes=None,
        stats={
            "cycles": result.total_cycles,
            "seconds": result.seconds,
            "events_processed": result.events_processed,
            "events_produced": result.events_produced,
            "offchip_bytes": result.offchip_bytes,
            "data_utilization": result.data_utilization(),
        },
        resilience=result.resilience,
        raw=result,
    )


def _sliced_stats(result) -> Dict[str, Any]:
    return {
        "events_processed": sum(
            a.events_processed for a in result.activations
        ),
        "spill_bytes": result.total_spill_bytes,
        "spill_overhead": result.spill_overhead(),
    }


def _build_sliced(graph, spec, options, *, resilience, timeseries):
    from .slicing import build_sliced, contiguous_partition

    kwargs = _take(
        options,
        num_slices=1,
        queue_capacity=None,
        auto_slice=True,
        partition_fn=contiguous_partition,
        num_bins=64,
        block_size=128,
        max_passes=10_000,
        rounds_per_activation=None,
    )
    return build_sliced(graph, spec, resilience=resilience, **kwargs)


def _summarize_sliced(result) -> RunResult:
    return RunResult(
        engine="sliced",
        values=result.values,
        converged=result.converged,
        rounds=result.total_rounds,
        passes=result.num_passes,
        stats=_sliced_stats(result),
        resilience=result.resilience,
        raw=result,
    )


def _build_sliced_mp(graph, spec, options, *, resilience, timeseries):
    from .mpsliced import MultiprocessSlicedGraphPulse
    from .slicing import contiguous_partition, resolve_partition

    kwargs = _take(
        options,
        num_slices=1,
        queue_capacity=None,
        auto_slice=True,
        partition_fn=contiguous_partition,
        num_workers=2,
        lease_dir=None,
        lease_timeout=None,
        max_recoveries=8,
        num_bins=64,
        block_size=128,
        max_passes=10_000,
        rounds_per_activation=None,
    )
    partition = resolve_partition(
        graph,
        num_slices=kwargs.pop("num_slices"),
        queue_capacity=kwargs["queue_capacity"],
        auto_slice=kwargs.pop("auto_slice"),
        partition_fn=kwargs.pop("partition_fn"),
    )
    if kwargs["lease_timeout"] is None:
        from ..resilience.lease import DEFAULT_LEASE_TIMEOUT

        kwargs["lease_timeout"] = DEFAULT_LEASE_TIMEOUT
    return MultiprocessSlicedGraphPulse(
        partition, spec, resilience=resilience, **kwargs
    )


def _summarize_sliced_mp(result) -> RunResult:
    summary = _summarize_sliced(result)
    summary.engine = "sliced-mp"
    summary.stats["workers"] = result.num_workers
    summary.stats["recoveries"] = result.recoveries
    summary.stats["worker_stats"] = [dict(w) for w in result.worker_stats]
    return summary


def _build_sliced_hosts(graph, spec, options, *, resilience, timeseries):
    from .hostsliced import HostSlicedGraphPulse
    from .slicing import contiguous_partition, resolve_partition

    kwargs = _take(
        options,
        hosts_dir=None,
        host_id=None,
        num_slices=1,
        queue_capacity=None,
        auto_slice=True,
        partition_fn=contiguous_partition,
        lease_timeout=None,
        poll_interval=0.05,
        num_bins=64,
        block_size=128,
        max_passes=10_000,
        rounds_per_activation=None,
    )
    partition = resolve_partition(
        graph,
        num_slices=kwargs.pop("num_slices"),
        queue_capacity=kwargs.pop("queue_capacity"),
        auto_slice=kwargs.pop("auto_slice"),
        partition_fn=kwargs.pop("partition_fn"),
    )
    return HostSlicedGraphPulse(partition, spec, **kwargs)


def _summarize_sliced_hosts(result) -> RunResult:
    return RunResult(
        engine="sliced-hosts",
        values=result.values,
        converged=result.converged,
        rounds=result.total_rounds,
        passes=result.num_passes,
        stats={
            "events_processed": result.events_processed,
            "spill_bytes": result.total_spill_bytes,
            "steps": result.steps_total,
            "steps_executed": result.steps_executed,
            "takeovers": result.takeovers,
            "host": result.host,
        },
        raw=result,
    )


def _build_parallel_sliced(graph, spec, options, *, resilience, timeseries):
    from .slicing import (
        ParallelSlicedGraphPulse,
        contiguous_partition,
        resolve_partition,
    )

    kwargs = _take(
        options,
        num_slices=2,
        partition_fn=contiguous_partition,
        num_bins=64,
        block_size=128,
        max_super_rounds=100_000,
    )
    partition = resolve_partition(
        graph,
        num_slices=kwargs.pop("num_slices"),
        partition_fn=kwargs.pop("partition_fn"),
    )
    return ParallelSlicedGraphPulse(partition, spec, **kwargs)


def _summarize_parallel_sliced(result) -> RunResult:
    return RunResult(
        engine="parallel-sliced",
        values=result.values,
        converged=result.converged,
        rounds=None,
        passes=result.num_super_rounds,
        stats={
            "messages": result.total_messages,
            "load_balance": result.load_balance(),
        },
        raw=result,
    )


def _build_bsp(graph, spec, options, *, resilience, timeseries):
    from ..baselines import SynchronousDeltaEngine

    kwargs = _take(options, max_iterations=100_000)
    return SynchronousDeltaEngine(graph, spec, **kwargs)


def _summarize_bsp(result) -> RunResult:
    return RunResult(
        engine="bsp",
        values=result.values,
        converged=result.converged,
        rounds=result.num_iterations,
        passes=None,
        stats={"edges_scanned": result.total_edges_scanned},
        raw=result,
    )


def _build_ligra(graph, spec, options, *, resilience, timeseries):
    from ..baselines import LigraEngine

    kwargs = _take(
        options,
        cpu_config=None,
        random_footprint_bytes=None,
        max_iterations=100_000,
    )
    return LigraEngine(graph, spec, **kwargs)


def _summarize_ligra(result) -> RunResult:
    return RunResult(
        engine="ligra",
        values=result.values,
        converged=result.converged,
        rounds=result.num_iterations,
        passes=None,
        stats={
            "seconds": result.seconds,
            "pull_fraction": result.pull_fraction,
        },
        raw=result,
    )


register_engine(
    "functional",
    _build_functional,
    _summarize_functional,
    resilient=True,
    resumable=True,
    description="event-model functional engine (coalescing queue)",
)
register_engine(
    "cycle",
    _build_cycle,
    _summarize_cycle,
    resilient=True,
    resumable=True,
    description="cycle-level accelerator model",
)
register_engine(
    "sliced",
    _build_sliced,
    _summarize_sliced,
    resilient=True,
    resumable=True,
    description="sequential large-graph slicing runtime (Sec IV-F)",
)
register_engine(
    "sliced-mp",
    _build_sliced_mp,
    _summarize_sliced_mp,
    resilient=True,
    resumable=True,
    description="multi-process sliced workers with per-slice leases",
)
# sliced-hosts is deliberately neither resilient nor resumable: the
# shared hosts directory *is* its durable substrate — every step
# journals, publishes a shard and moves the cursor, so any host (or
# all of them) can be SIGKILLed and a fresh host continues from the
# durable state; layering the single-process resilience harness on top
# would double-journal the same spill traffic into a second WAL.
register_engine(
    "sliced-hosts",
    _build_sliced_hosts,
    _summarize_sliced_hosts,
    description="cross-host sliced supervisors over a shared substrate dir",
)
# parallel-sliced is deliberately neither resilient nor resumable: the
# model never threads a ResilienceHarness (no fault sites, no rollback
# checkpoints), has no restore() on its runner, and mid-super-round its
# state includes per-accelerator in-flight message buffers that neither
# durable queue encoding ("bins" nor "spill") can represent — a
# checkpoint taken on a super-round boundary would silently drop them.
# tests/core/test_engines.py asserts these capability flags match the
# runner's actual surface, so flipping either flag without doing the
# work fails loudly.
register_engine(
    "parallel-sliced",
    _build_parallel_sliced,
    _summarize_parallel_sliced,
    description="multi-accelerator super-round model (Sec IV-F, option b)",
)
register_engine(
    "bsp",
    _build_bsp,
    _summarize_bsp,
    description="synchronous delta baseline (BSP)",
)
register_engine(
    "ligra",
    _build_ligra,
    _summarize_ligra,
    description="direction-optimizing CPU baseline (Ligra model)",
)
