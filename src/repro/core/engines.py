"""The Engine API: one registry, one result shape, for every engine.

Historically each engine grew its own constructor signature and its own
result dataclass (``FunctionalResult``, accelerator stats,
``SlicedResult``, ``ParallelSlicedResult``, the baselines' records),
so every consumer — the CLI, the crash harness, the campaign runner,
benchmarks — carried a per-engine ``if`` ladder.  This module replaces
those ladders with:

``build_engine(name, workload, config, *, resilience=None,
timeseries=None)``
    The single construction path.  ``workload`` is ``(graph, spec)``;
    ``config`` is either an instance of the engine's registered
    :class:`EngineOptions` dataclass or a plain mapping coerced into
    one (the historical calling convention; every CLI flag and stored
    manifest still arrives this way).  Unknown keys and mistyped values
    raise :class:`repro.errors.ReproError` **before** any work happens
    — options are never silently dropped — and the resolved options are
    echoed under ``options`` in ``RunResult.to_json()`` so a payload
    records exactly what configuration produced it.  Engines that do
    not accept resilience refuse it here too.

:class:`RunResult`
    The unified result: final ``values``, ``converged``, the
    ``rounds``/``passes`` counters (``None`` where an engine has no such
    notion), engine-specific counters under ``stats``, the resilience
    summary, the active trace handle, and ``raw`` — the engine's native
    result object for callers that need the long tail (activation lists,
    per-round records, model configs).  ``to_json()`` emits the one
    schema every ``--json`` consumer sees; ``validate_run_result``
    checks a payload against it.

:class:`Engine`
    The protocol a registered engine satisfies: ``name``, ``runner``
    (the underlying engine object), ``run() -> RunResult``, and
    ``restore(restored)`` for resumable engines.

The legacy constructors (``FunctionalGraphPulse(...)``,
``SlicedGraphPulse(partition, ...)`` …) remain importable for callers
with exotic needs, but new code should not grow third copies of the
construction logic — register here instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Type,
)

import numpy as np

from ..errors import ReproError
from ..graph.partition import contiguous_partition
from ..obs import trace as obs_trace

__all__ = [
    "Engine",
    "EngineSpec",
    "EngineOptions",
    "FunctionalOptions",
    "CycleOptions",
    "SlicedOptions",
    "SlicedMpOptions",
    "SlicedHostsOptions",
    "ParallelSlicedOptions",
    "BspOptions",
    "LigraOptions",
    "RunResult",
    "RUN_RESULT_SCHEMA",
    "RUN_RESULT_SCHEMA_VERSION",
    "RESUME_PAYLOAD_SCHEMA",
    "JOURNAL_PROVENANCE_KEYS",
    "WORKER_STATS_KEYS",
    "validate_run_result",
    "validate_resume_payload",
    "register_engine",
    "engine_names",
    "engine_spec",
    "resilient_engine_names",
    "resumable_engine_names",
    "build_engine",
]


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------


@dataclass
class RunResult:
    """Engine-independent run outcome (module docs)."""

    engine: str
    values: np.ndarray
    converged: bool
    #: fine-grained work counter (engine rounds / BSP iterations);
    #: None when the engine has no such notion
    rounds: Optional[int]
    #: coarse slice-schedule counter (sliced passes / super-rounds);
    #: None for single-queue engines
    passes: Optional[int]
    #: engine-specific counters (cycles, spill bytes, coalesce rate, …)
    stats: Dict[str, Any] = field(default_factory=dict)
    #: resilience harness activity summary; None when resilience was off
    resilience: Optional[Dict[str, Any]] = None
    #: the tracer active during the run, when tracing was on
    trace: Optional[Any] = None
    #: the resolved :class:`EngineOptions` the engine was built with;
    #: None when the result was assembled outside ``build_engine``
    options: Optional["EngineOptions"] = None
    #: the engine's native result object (escape hatch for the long tail)
    raw: Any = None

    def to_json(self) -> Dict[str, Any]:
        """The one ``--json`` result schema, identical across engines."""
        return {
            "schema_version": RUN_RESULT_SCHEMA_VERSION,
            "engine": self.engine,
            "converged": bool(self.converged),
            "rounds": None if self.rounds is None else int(self.rounds),
            "passes": None if self.passes is None else int(self.passes),
            "stats": dict(self.stats),
            "resilience": self.resilience,
            "options": (
                None if self.options is None else self.options.to_json()
            ),
        }


#: version of the ``RunResult.to_json()`` schema.  2 added
#: ``schema_version`` itself and the resolved ``options`` echo.
RUN_RESULT_SCHEMA_VERSION = 2

#: key -> allowed types of the ``RunResult.to_json()`` payload
RUN_RESULT_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "schema_version": (int,),
    "engine": (str,),
    "converged": (bool,),
    "rounds": (int, type(None)),
    "passes": (int, type(None)),
    "stats": (dict,),
    "resilience": (dict, type(None)),
    "options": (dict, type(None)),
}


#: per-worker telemetry keys every sliced-mp stats payload must carry
WORKER_STATS_KEYS: Tuple[str, ...] = (
    "worker",
    "activations",
    "events_drained",
    "rounds",
    "barrier_wait_rounds",
    "journal_replays",
    "lease_recoveries",
)


def _validate_worker_stats(stats: Dict[str, Any]) -> None:
    """sliced-mp results must carry the per-worker telemetry block."""
    for key in ("workers", "recoveries"):
        if not isinstance(stats.get(key), int):
            raise ValueError(
                f"sliced-mp stats[{key!r}] should be int, "
                f"got {type(stats.get(key)).__name__}"
            )
    worker_stats = stats.get("worker_stats")
    if not isinstance(worker_stats, list):
        raise ValueError(
            f"sliced-mp stats['worker_stats'] should be a list, "
            f"got {type(worker_stats).__name__}"
        )
    if len(worker_stats) != stats["workers"]:
        raise ValueError(
            f"sliced-mp worker_stats has {len(worker_stats)} entries "
            f"for {stats['workers']} workers"
        )
    for entry in worker_stats:
        if not isinstance(entry, dict):
            raise ValueError("sliced-mp worker_stats entries must be dicts")
        for key in WORKER_STATS_KEYS:
            if not isinstance(entry.get(key), int):
                raise ValueError(
                    f"sliced-mp worker_stats[{key!r}] should be int, "
                    f"got {type(entry.get(key)).__name__}"
                )


def validate_run_result(payload: Dict[str, Any]) -> None:
    """Assert ``payload`` matches the RunResult JSON schema exactly.

    Raises ``ValueError`` naming the first violation: a missing key, an
    unexpected key, or a mistyped value.  Engine-conditional blocks are
    held to their own contracts too: a ``sliced-mp`` payload must carry
    the per-worker telemetry (``workers``/``recoveries``/
    ``worker_stats`` with :data:`WORKER_STATS_KEYS` per worker).  Used
    by the tests and the CI smoke jobs to hold every engine to the same
    contract.
    """
    missing = sorted(set(RUN_RESULT_SCHEMA) - set(payload))
    if missing:
        raise ValueError(f"result payload missing keys: {missing}")
    extra = sorted(set(payload) - set(RUN_RESULT_SCHEMA))
    if extra:
        raise ValueError(f"result payload has unexpected keys: {extra}")
    for key, types in RUN_RESULT_SCHEMA.items():
        if not isinstance(payload[key], types):
            raise ValueError(
                f"result[{key!r}] should be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(payload[key]).__name__}"
            )
    if payload["schema_version"] != RUN_RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"result schema_version {payload['schema_version']} does not "
            f"match the validator's ({RUN_RESULT_SCHEMA_VERSION})"
        )
    if payload["engine"] == "sliced-mp":
        _validate_worker_stats(payload["stats"])


#: key -> allowed types of the ``repro resume --json`` ``resumed`` block
RESUME_PAYLOAD_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "run_dir": (str,),
    "checkpoint": (int, type(None)),
    "round_index": (int, type(None)),
    "generation": (int, type(None)),
    "fallback": (bool,),
    "from_scratch": (bool,),
    "checkpoints_skipped": (list,),
    "journal": (dict, type(None)),
}

#: keys of the journal replay provenance (``JournalScan.provenance()``)
JOURNAL_PROVENANCE_KEYS: Tuple[str, ...] = (
    "records_replayed",
    "records_discarded",
    "bytes_discarded",
    "commit",
)


def validate_resume_payload(payload: Dict[str, Any]) -> None:
    """Assert a ``repro resume --json`` payload matches its schema.

    ``payload`` is the whole resume JSON object; its ``resumed`` block
    (recovery provenance: which checkpoint generation restored, what
    the fallback ladder skipped, journal replay stats) is held to
    :data:`RESUME_PAYLOAD_SCHEMA` exactly, and its ``result`` block to
    :func:`validate_run_result`.  Raises ``ValueError`` naming the
    first violation.
    """
    resumed = payload.get("resumed")
    if not isinstance(resumed, dict):
        raise ValueError("resume payload missing the 'resumed' block")
    missing = sorted(set(RESUME_PAYLOAD_SCHEMA) - set(resumed))
    if missing:
        raise ValueError(f"resumed block missing keys: {missing}")
    extra = sorted(set(resumed) - set(RESUME_PAYLOAD_SCHEMA))
    if extra:
        raise ValueError(f"resumed block has unexpected keys: {extra}")
    for key, types in RESUME_PAYLOAD_SCHEMA.items():
        if not isinstance(resumed[key], types):
            raise ValueError(
                f"resumed[{key!r}] should be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(resumed[key]).__name__}"
            )
    for entry in resumed["checkpoints_skipped"]:
        if not isinstance(entry, dict) or not isinstance(
            entry.get("seq"), int
        ):
            raise ValueError(
                "resumed['checkpoints_skipped'] entries must be dicts "
                "with an int 'seq'"
            )
    journal = resumed["journal"]
    if journal is not None:
        for key in JOURNAL_PROVENANCE_KEYS:
            if not isinstance(journal.get(key), int):
                raise ValueError(
                    f"resumed['journal'][{key!r}] should be int, "
                    f"got {type(journal.get(key)).__name__}"
                )
    if resumed["fallback"] and not resumed["checkpoints_skipped"]:
        raise ValueError(
            "resumed claims fallback but skipped no checkpoints"
        )
    result = payload.get("result")
    if not isinstance(result, dict):
        raise ValueError("resume payload missing the 'result' block")
    validate_run_result(result)


# ----------------------------------------------------------------------
# Typed engine options
# ----------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Render one option value into something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, os.PathLike):
        return os.fspath(value)
    if callable(value):
        return getattr(value, "__name__", repr(value))
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def _type_ok(code: str, value: Any) -> bool:
    """Check a value against a :data:`EngineOptions._FIELD_TYPES` code.

    Codes: ``int``/``float``/``bool``/``str``/``path``/``callable``/
    ``any``; a trailing ``?`` allows None.  ``bool`` is not an ``int``
    here (a ``--workers True`` typo must not pass), and ``float``
    accepts ints.
    """
    if code.endswith("?"):
        if value is None:
            return True
        code = code[:-1]
    elif value is None:
        return False
    if code == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if code == "float":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )
    if code == "bool":
        return isinstance(value, bool)
    if code == "str":
        return isinstance(value, str)
    if code == "path":
        return isinstance(value, (str, os.PathLike))
    if code == "callable":
        return callable(value)
    if code == "any":
        return True
    raise AssertionError(f"unknown option type code {code!r}")


@dataclass(frozen=True)
class EngineOptions:
    """Base class for per-engine typed option sets.

    Each engine registers a frozen subclass on its :class:`EngineSpec`;
    :func:`build_engine` routes every ``config`` argument through
    :meth:`coerce`, so dict input (CLI flags, stored run manifests)
    keeps working while unknown keys and mistyped values fail with the
    same typed errors regardless of how the options arrived.  Field
    types are declared as string codes in ``_FIELD_TYPES`` (see
    :func:`_type_ok`); subclasses override :meth:`validate` for
    cross-field and choice constraints.
    """

    #: field name -> type code; subclasses must cover every field
    _FIELD_TYPES: ClassVar[Dict[str, str]] = {}

    @classmethod
    def coerce(cls, engine: str, config: Any) -> "EngineOptions":
        """Build validated options from None, a mapping, or an instance."""
        if config is None:
            options = cls()
        elif isinstance(config, cls):
            options = config
        elif isinstance(config, EngineOptions):
            raise ReproError(
                f"engine {engine!r} takes {cls.__name__}, "
                f"got {type(config).__name__}"
            )
        elif isinstance(config, Mapping):
            mapping = dict(config)
            known = {f.name for f in dataclass_fields(cls)}
            unknown = sorted(set(mapping) - known)
            if unknown:
                raise ReproError(
                    f"engine {engine!r} does not accept option(s) "
                    f"{', '.join(unknown)}"
                )
            options = cls(**mapping)
        else:
            raise ReproError(
                f"engine {engine!r} options must be a mapping or "
                f"{cls.__name__}, got {type(config).__name__}"
            )
        options._check_types(engine)
        options.validate(engine)
        return options

    def _check_types(self, engine: str) -> None:
        for spec in dataclass_fields(self):
            code = self._FIELD_TYPES[spec.name]
            value = getattr(self, spec.name)
            if not _type_ok(code, value):
                raise ReproError(
                    f"engine {engine!r} option {spec.name!r} should be "
                    f"{code}, got {type(value).__name__} ({value!r})"
                )

    def validate(self, engine: str) -> None:
        """Cross-field / choice constraints; subclasses override."""

    def to_json(self) -> Dict[str, Any]:
        """The resolved options as JSON-safe key/value pairs."""
        return {
            spec.name: _json_safe(getattr(self, spec.name))
            for spec in dataclass_fields(self)
        }


@dataclass(frozen=True)
class FunctionalOptions(EngineOptions):
    num_bins: int = 64
    block_size: int = 128
    track_lookahead: bool = False
    global_threshold: Optional[float] = None
    max_rounds: int = 100_000
    scheduling: str = "round-robin"

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        "num_bins": "int",
        "block_size": "int",
        "track_lookahead": "bool",
        "global_threshold": "float?",
        "max_rounds": "int",
        "scheduling": "str",
    }


@dataclass(frozen=True)
class CycleOptions(EngineOptions):
    #: an AcceleratorConfig, or None for the paper's defaults
    config: Any = None
    global_threshold: Optional[float] = None
    max_rounds: int = 10_000

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        "config": "any?",
        "global_threshold": "float?",
        "max_rounds": "int",
    }


@dataclass(frozen=True)
class SlicedOptions(EngineOptions):
    num_slices: int = 1
    queue_capacity: Optional[int] = None
    auto_slice: bool = True
    partition_fn: Callable = contiguous_partition
    dispatch: str = "barrier"
    num_bins: int = 64
    block_size: int = 128
    max_passes: int = 10_000
    rounds_per_activation: Optional[int] = None

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        "num_slices": "int",
        "queue_capacity": "int?",
        "auto_slice": "bool",
        "partition_fn": "callable",
        "dispatch": "str",
        "num_bins": "int",
        "block_size": "int",
        "max_passes": "int",
        "rounds_per_activation": "int?",
    }

    def validate(self, engine: str) -> None:
        from .slicing import DISPATCH_MODES

        if self.dispatch not in DISPATCH_MODES:
            raise ReproError(
                f"engine {engine!r} option 'dispatch' must be one of "
                f"{', '.join(DISPATCH_MODES)}; got {self.dispatch!r}"
            )


@dataclass(frozen=True)
class SlicedMpOptions(SlicedOptions):
    num_workers: int = 2
    lease_dir: Optional[Any] = None
    lease_timeout: Optional[float] = None
    max_recoveries: int = 8

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        **SlicedOptions._FIELD_TYPES,
        "num_workers": "int",
        "lease_dir": "path?",
        "lease_timeout": "float?",
        "max_recoveries": "int",
    }

    def validate(self, engine: str) -> None:
        super().validate(engine)
        if self.num_workers < 1:
            raise ReproError(
                f"engine {engine!r} option 'num_workers' must be >= 1, "
                f"got {self.num_workers}"
            )


@dataclass(frozen=True)
class SlicedHostsOptions(EngineOptions):
    """Options of the cross-host engine.  Its step schedule is
    inherently chained (step ``k`` is slice ``k % N`` of pass
    ``k // N``, claimed one at a time over the shared substrate), so
    there is deliberately no ``dispatch`` field here — comparisons
    against the in-process engines pin those to ``dispatch="chained"``.
    """

    hosts_dir: Optional[Any] = None
    host_id: Optional[str] = None
    num_slices: int = 1
    queue_capacity: Optional[int] = None
    auto_slice: bool = True
    partition_fn: Callable = contiguous_partition
    lease_timeout: Optional[float] = None
    poll_interval: float = 0.05
    num_bins: int = 64
    block_size: int = 128
    max_passes: int = 10_000
    rounds_per_activation: Optional[int] = None

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        "hosts_dir": "path?",
        "host_id": "str?",
        "num_slices": "int",
        "queue_capacity": "int?",
        "auto_slice": "bool",
        "partition_fn": "callable",
        "lease_timeout": "float?",
        "poll_interval": "float",
        "num_bins": "int",
        "block_size": "int",
        "max_passes": "int",
        "rounds_per_activation": "int?",
    }


@dataclass(frozen=True)
class ParallelSlicedOptions(EngineOptions):
    num_slices: int = 2
    partition_fn: Callable = contiguous_partition
    num_bins: int = 64
    block_size: int = 128
    max_super_rounds: int = 100_000

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        "num_slices": "int",
        "partition_fn": "callable",
        "num_bins": "int",
        "block_size": "int",
        "max_super_rounds": "int",
    }


@dataclass(frozen=True)
class BspOptions(EngineOptions):
    max_iterations: int = 100_000

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {"max_iterations": "int"}


@dataclass(frozen=True)
class LigraOptions(EngineOptions):
    cpu_config: Any = None
    random_footprint_bytes: Optional[int] = None
    max_iterations: int = 100_000

    _FIELD_TYPES: ClassVar[Dict[str, str]] = {
        "cpu_config": "any?",
        "random_footprint_bytes": "int?",
        "max_iterations": "int",
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class Engine(Protocol):
    """What ``build_engine`` returns."""

    name: str
    runner: Any

    def run(self) -> RunResult: ...

    def restore(self, restored: Any) -> None: ...


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry."""

    name: str
    build: Callable[..., Any]
    summarize: Callable[[Any], RunResult]
    resilient: bool = False
    resumable: bool = False
    description: str = ""
    #: the engine's typed option dataclass; ``build_engine`` coerces
    #: every ``config`` argument through ``options.coerce``
    options: Type[EngineOptions] = EngineOptions


_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    build: Callable[..., Any],
    summarize: Callable[[Any], RunResult],
    *,
    resilient: bool = False,
    resumable: bool = False,
    description: str = "",
    options: Type[EngineOptions] = EngineOptions,
) -> None:
    """Add an engine to the registry (last registration wins)."""
    _REGISTRY[name] = EngineSpec(
        name=name,
        build=build,
        summarize=summarize,
        resilient=resilient,
        resumable=resumable,
        description=description,
        options=options,
    )


def engine_names() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def resilient_engine_names() -> Tuple[str, ...]:
    return tuple(s.name for s in _REGISTRY.values() if s.resilient)


def resumable_engine_names() -> Tuple[str, ...]:
    return tuple(s.name for s in _REGISTRY.values() if s.resumable)


def engine_spec(name: str) -> EngineSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(_REGISTRY)}"
        ) from None


class EngineHandle:
    """Concrete :class:`Engine`: a built runner plus its summarizer."""

    def __init__(
        self,
        name: str,
        runner: Any,
        summarize: Callable[[Any], RunResult],
        options: Optional[EngineOptions] = None,
    ):
        self.name = name
        self.runner = runner
        self.options = options
        self._summarize = summarize

    def restore(self, restored: Any) -> None:
        """Adopt a durable checkpoint (resumable engines only)."""
        self.runner.restore(restored)

    def run(self) -> RunResult:
        result = self._summarize(self.runner.run())
        result.trace = obs_trace.ACTIVE
        result.options = self.options
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"EngineHandle({self.name!r}, {self.runner!r})"


def build_engine(
    name: str,
    workload: Tuple[Any, Any],
    config: Optional[Any] = None,
    *,
    resilience: Optional[Any] = None,
    timeseries: Optional[Any] = None,
) -> EngineHandle:
    """Construct a registered engine (the single construction path).

    ``workload`` is ``(graph, spec)``; ``config`` is the engine's
    :class:`EngineOptions` instance or a mapping coerced into one
    (unknown keys and mistyped values raise
    :class:`repro.errors.ReproError`).  ``resilience`` is a
    :class:`repro.resilience.ResilienceConfig` and is refused by
    engines not registered as resilient.
    """
    entry = engine_spec(name)
    graph, spec = workload
    if resilience is not None and not entry.resilient:
        raise ReproError(
            f"engine {name!r} does not support resilience; choose one of: "
            f"{', '.join(resilient_engine_names())}"
        )
    options = entry.options.coerce(name, config)
    runner = entry.build(
        graph, spec, options, resilience=resilience, timeseries=timeseries
    )
    return EngineHandle(name, runner, entry.summarize, options)


# ----------------------------------------------------------------------
# Built-in engines
# ----------------------------------------------------------------------


def _build_functional(graph, spec, options, *, resilience, timeseries):
    from .functional import FunctionalGraphPulse

    return FunctionalGraphPulse(
        graph,
        spec,
        timeseries=timeseries,
        resilience=resilience,
        num_bins=options.num_bins,
        block_size=options.block_size,
        track_lookahead=options.track_lookahead,
        global_threshold=options.global_threshold,
        max_rounds=options.max_rounds,
        scheduling=options.scheduling,
    )


def _summarize_functional(result) -> RunResult:
    return RunResult(
        engine="functional",
        values=result.values,
        converged=result.converged,
        rounds=result.num_rounds,
        passes=None,
        stats={
            "events_processed": result.total_events_processed,
            "events_produced": result.total_events_produced,
            "coalesce_rate": result.coalesce_rate(),
        },
        resilience=result.resilience,
        raw=result,
    )


def _build_cycle(graph, spec, options, *, resilience, timeseries):
    from .accelerator import GraphPulseAccelerator

    return GraphPulseAccelerator(
        graph,
        spec,
        options.config,
        timeseries=timeseries,
        resilience=resilience,
        global_threshold=options.global_threshold,
        max_rounds=options.max_rounds,
    )


def _summarize_cycle(result) -> RunResult:
    return RunResult(
        engine="cycle",
        values=result.values,
        converged=result.converged,
        rounds=result.num_rounds,
        passes=None,
        stats={
            "cycles": result.total_cycles,
            "seconds": result.seconds,
            "events_processed": result.events_processed,
            "events_produced": result.events_produced,
            "offchip_bytes": result.offchip_bytes,
            "data_utilization": result.data_utilization(),
        },
        resilience=result.resilience,
        raw=result,
    )


def _sliced_stats(result) -> Dict[str, Any]:
    return {
        "events_processed": sum(
            a.events_processed for a in result.activations
        ),
        "spill_bytes": result.total_spill_bytes,
        "spill_overhead": result.spill_overhead(),
    }


def _build_sliced(graph, spec, options, *, resilience, timeseries):
    from .slicing import build_sliced

    return build_sliced(
        graph,
        spec,
        resilience=resilience,
        num_slices=options.num_slices,
        queue_capacity=options.queue_capacity,
        auto_slice=options.auto_slice,
        partition_fn=options.partition_fn,
        dispatch=options.dispatch,
        num_bins=options.num_bins,
        block_size=options.block_size,
        max_passes=options.max_passes,
        rounds_per_activation=options.rounds_per_activation,
    )


def _summarize_sliced(result) -> RunResult:
    return RunResult(
        engine="sliced",
        values=result.values,
        converged=result.converged,
        rounds=result.total_rounds,
        passes=result.num_passes,
        stats=_sliced_stats(result),
        resilience=result.resilience,
        raw=result,
    )


def _build_sliced_mp(graph, spec, options, *, resilience, timeseries):
    from ..resilience.lease import DEFAULT_LEASE_TIMEOUT
    from .mpsliced import MultiprocessSlicedGraphPulse
    from .slicing import resolve_partition

    partition = resolve_partition(
        graph,
        num_slices=options.num_slices,
        queue_capacity=options.queue_capacity,
        auto_slice=options.auto_slice,
        partition_fn=options.partition_fn,
    )
    lease_timeout = (
        DEFAULT_LEASE_TIMEOUT
        if options.lease_timeout is None
        else options.lease_timeout
    )
    return MultiprocessSlicedGraphPulse(
        partition,
        spec,
        resilience=resilience,
        num_workers=options.num_workers,
        lease_dir=options.lease_dir,
        lease_timeout=lease_timeout,
        max_recoveries=options.max_recoveries,
        dispatch=options.dispatch,
        queue_capacity=options.queue_capacity,
        num_bins=options.num_bins,
        block_size=options.block_size,
        max_passes=options.max_passes,
        rounds_per_activation=options.rounds_per_activation,
    )


def _summarize_sliced_mp(result) -> RunResult:
    summary = _summarize_sliced(result)
    summary.engine = "sliced-mp"
    summary.stats["workers"] = result.num_workers
    summary.stats["recoveries"] = result.recoveries
    summary.stats["worker_stats"] = [dict(w) for w in result.worker_stats]
    summary.stats["max_inflight"] = result.max_inflight
    return summary


def _build_sliced_hosts(graph, spec, options, *, resilience, timeseries):
    from .hostsliced import HostSlicedGraphPulse
    from .slicing import resolve_partition

    partition = resolve_partition(
        graph,
        num_slices=options.num_slices,
        queue_capacity=options.queue_capacity,
        auto_slice=options.auto_slice,
        partition_fn=options.partition_fn,
    )
    return HostSlicedGraphPulse(
        partition,
        spec,
        hosts_dir=options.hosts_dir,
        host_id=options.host_id,
        lease_timeout=options.lease_timeout,
        poll_interval=options.poll_interval,
        num_bins=options.num_bins,
        block_size=options.block_size,
        max_passes=options.max_passes,
        rounds_per_activation=options.rounds_per_activation,
    )


def _summarize_sliced_hosts(result) -> RunResult:
    return RunResult(
        engine="sliced-hosts",
        values=result.values,
        converged=result.converged,
        rounds=result.total_rounds,
        passes=result.num_passes,
        stats={
            "events_processed": result.events_processed,
            "spill_bytes": result.total_spill_bytes,
            "steps": result.steps_total,
            "steps_executed": result.steps_executed,
            "takeovers": result.takeovers,
            "host": result.host,
        },
        raw=result,
    )


def _build_parallel_sliced(graph, spec, options, *, resilience, timeseries):
    from .slicing import ParallelSlicedGraphPulse, resolve_partition

    partition = resolve_partition(
        graph,
        num_slices=options.num_slices,
        partition_fn=options.partition_fn,
    )
    return ParallelSlicedGraphPulse(
        partition,
        spec,
        num_bins=options.num_bins,
        block_size=options.block_size,
        max_super_rounds=options.max_super_rounds,
    )


def _summarize_parallel_sliced(result) -> RunResult:
    return RunResult(
        engine="parallel-sliced",
        values=result.values,
        converged=result.converged,
        rounds=None,
        passes=result.num_super_rounds,
        stats={
            "messages": result.total_messages,
            "load_balance": result.load_balance(),
        },
        raw=result,
    )


def _build_bsp(graph, spec, options, *, resilience, timeseries):
    from ..baselines import SynchronousDeltaEngine

    return SynchronousDeltaEngine(
        graph, spec, max_iterations=options.max_iterations
    )


def _summarize_bsp(result) -> RunResult:
    return RunResult(
        engine="bsp",
        values=result.values,
        converged=result.converged,
        rounds=result.num_iterations,
        passes=None,
        stats={"edges_scanned": result.total_edges_scanned},
        raw=result,
    )


def _build_ligra(graph, spec, options, *, resilience, timeseries):
    from ..baselines import LigraEngine

    return LigraEngine(
        graph,
        spec,
        cpu_config=options.cpu_config,
        random_footprint_bytes=options.random_footprint_bytes,
        max_iterations=options.max_iterations,
    )


def _summarize_ligra(result) -> RunResult:
    return RunResult(
        engine="ligra",
        values=result.values,
        converged=result.converged,
        rounds=result.num_iterations,
        passes=None,
        stats={
            "seconds": result.seconds,
            "pull_fraction": result.pull_fraction,
        },
        raw=result,
    )


register_engine(
    "functional",
    _build_functional,
    _summarize_functional,
    resilient=True,
    resumable=True,
    description="event-model functional engine (coalescing queue)",
    options=FunctionalOptions,
)
register_engine(
    "cycle",
    _build_cycle,
    _summarize_cycle,
    resilient=True,
    resumable=True,
    description="cycle-level accelerator model",
    options=CycleOptions,
)
register_engine(
    "sliced",
    _build_sliced,
    _summarize_sliced,
    resilient=True,
    resumable=True,
    description="sequential large-graph slicing runtime (Sec IV-F)",
    options=SlicedOptions,
)
register_engine(
    "sliced-mp",
    _build_sliced_mp,
    _summarize_sliced_mp,
    resilient=True,
    resumable=True,
    description="concurrent multi-process sliced workers with "
    "per-slice leases",
    options=SlicedMpOptions,
)
# sliced-hosts is deliberately neither resilient nor resumable: the
# shared hosts directory *is* its durable substrate — every step
# journals, publishes a shard and moves the cursor, so any host (or
# all of them) can be SIGKILLed and a fresh host continues from the
# durable state; layering the single-process resilience harness on top
# would double-journal the same spill traffic into a second WAL.
register_engine(
    "sliced-hosts",
    _build_sliced_hosts,
    _summarize_sliced_hosts,
    description="cross-host sliced supervisors over a shared substrate dir",
    options=SlicedHostsOptions,
)
# parallel-sliced is deliberately neither resilient nor resumable: the
# model never threads a ResilienceHarness (no fault sites, no rollback
# checkpoints), has no restore() on its runner, and mid-super-round its
# state includes per-accelerator in-flight message buffers that neither
# durable queue encoding ("bins" nor "spill") can represent — a
# checkpoint taken on a super-round boundary would silently drop them.
# tests/core/test_engines.py asserts these capability flags match the
# runner's actual surface, so flipping either flag without doing the
# work fails loudly.
register_engine(
    "parallel-sliced",
    _build_parallel_sliced,
    _summarize_parallel_sliced,
    description="multi-accelerator super-round model (Sec IV-F, option b)",
    options=ParallelSlicedOptions,
)
register_engine(
    "bsp",
    _build_bsp,
    _summarize_bsp,
    description="synchronous delta baseline (BSP)",
    options=BspOptions,
)
register_engine(
    "ligra",
    _build_ligra,
    _summarize_ligra,
    description="direction-optimizing CPU baseline (Ligra model)",
    options=LigraOptions,
)
