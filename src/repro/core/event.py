"""The event abstraction (paper Section III-A).

An event is "a lightweight message that carries a delta as its payload",
addressed to a destination vertex.  Events are the *only* unit of
computation and communication in GraphPulse: the set of queued events is
the active set, and coalescing two events is the algorithm's reduce
operator applied to their payloads.

``generation`` tracks how many propagation steps are compounded into the
payload.  It exists purely for instrumentation: the paper's *lookahead*
metric (Figure 8) is the number of iterations an event's content is ahead
of the round that processes it, which is ``generation - round``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event"]


@dataclass
class Event:
    """A delta-carrying update message addressed to ``vertex``."""

    vertex: int
    delta: float
    #: number of propagation generations compounded into the payload
    generation: int = 0
    #: cycle at which the event has fully landed in its queue slot (used
    #: by the cycle-level model: a drain sweep only picks up events whose
    #: insertion completed before the sweep; later ones wait a round)
    ready: int = 0

    def coalesced_with(self, other: "Event", reduce_fn) -> "Event":
        """Combine with another event for the same vertex.

        The payloads merge through the algorithm's reduce operator; the
        generation and readiness are the max of the two (the compounded
        payload is as "far ahead" as its most advanced contributor, and
        is fully in place only once both insertions completed).
        """
        if other.vertex != self.vertex:
            raise ValueError(
                f"cannot coalesce events for vertices {self.vertex} and "
                f"{other.vertex}"
            )
        return Event(
            vertex=self.vertex,
            delta=reduce_fn(self.delta, other.delta),
            generation=max(self.generation, other.generation),
            ready=max(self.ready, other.ready),
        )
