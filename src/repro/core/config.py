"""Accelerator configuration (paper Table III and Sections IV-V).

Two standard configurations are provided:

- :func:`baseline_config` — the Section IV baseline: 256 simple event
  processors reading memory directly, no prefetcher, in-order event
  generation inside each processor.
- :func:`optimized_config` — the Section V design evaluated in Table
  III: 8 processors at 1 GHz fed by a vertex prefetcher + scratchpad,
  each coupled to 4 decoupled generation streams with an edge cache.

Both share the 64 MB on-chip coalescing queue (64 bins) and the 4-channel
DDR3 memory system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..memory.dram import DRAMConfig

__all__ = ["GraphPulseConfig", "baseline_config", "optimized_config"]


@dataclass(frozen=True)
class GraphPulseConfig:
    """All knobs of the GraphPulse accelerator model."""

    # --- clocking -----------------------------------------------------
    clock_ghz: float = 1.0

    # --- event processors (Section IV-E / V) --------------------------
    num_processors: int = 8
    #: reduce/apply pipeline depth ("4-stage FPA unit")
    process_pipeline_cycles: int = 4

    # --- optimizations (Section V) -------------------------------------
    prefetch_enabled: bool = True
    parallel_generation_enabled: bool = True
    #: decoupled generation streams per processing unit
    generation_streams_per_processor: int = 4
    #: per-stream input-buffer entries (processor stalls when all full)
    generation_buffer_entries: int = 4
    #: input-buffer block size: vertices adjacent in memory streamed
    #: together to one processor (128 in the paper)
    prefetch_block_size: int = 128
    #: per-processor scratchpad for prefetched vertex lines (1 KB)
    scratchpad_bytes: int = 1024
    #: edge-reader cache (shared per generation unit)
    edge_cache_bytes: int = 16 * 1024
    #: N-block edge prefetch depth
    edge_prefetch_blocks: int = 4

    # --- coalescing event queue (Section IV-B/IV-D) -------------------
    num_bins: int = 64
    queue_block_size: int = 128
    #: coalescer pipeline: one insertion accepted per cycle per bin,
    #: combined result written 4 cycles later
    coalescer_latency_cycles: int = 4
    #: events read out of a bin per cycle during a drain sweep
    drain_events_per_cycle: int = 8
    #: queue storage capacity in events (64 MB / 16 B per entry);
    #: graphs with more vertices than this must be sliced (Section IV-F)
    queue_capacity_events: int = 4 * 1024 * 1024

    # --- interconnect (Section IV-E) -----------------------------------
    crossbar_ports: int = 16
    crossbar_sources_per_port: int = 16
    crossbar_traversal_cycles: int = 2
    scheduler_arbiter_fan_in: int = 16

    # --- memory system (Table III) -------------------------------------
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if self.generation_streams_per_processor < 1:
            raise ValueError("generation_streams_per_processor must be >= 1")
        if self.num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if self.drain_events_per_cycle < 1:
            raise ValueError("drain_events_per_cycle must be >= 1")

    @property
    def total_generation_streams(self) -> int:
        if not self.parallel_generation_enabled:
            return self.num_processors
        return self.num_processors * self.generation_streams_per_processor

    def seconds_per_cycle(self) -> float:
        return 1e-9 / self.clock_ghz

    def with_overrides(self, **kwargs) -> "GraphPulseConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


def baseline_config(**overrides) -> GraphPulseConfig:
    """Section IV baseline: 256 processors, no prefetch, no decoupling."""
    config = GraphPulseConfig(
        num_processors=256,
        prefetch_enabled=False,
        parallel_generation_enabled=False,
    )
    return config.with_overrides(**overrides) if overrides else config


def optimized_config(**overrides) -> GraphPulseConfig:
    """Section V optimized design (Table III: 8 processors @ 1 GHz)."""
    config = GraphPulseConfig()
    return config.with_overrides(**overrides) if overrides else config
