"""Functional GraphPulse engine: Algorithm 1 with exact event semantics.

This engine executes the paper's event-driven model (Algorithm 1) with
the real binned coalescing queue but *without* cycle timing, so it scales
to the 10^5-10^6-edge proxy graphs.  It is the measurement vehicle for:

- correctness of the event model against the golden references;
- Figure 4 (events produced vs remaining after coalescing, per round);
- Figure 8 (lookahead-degree distribution per round);
- event/traffic accounting feeding Figures 11-12 and Table I.

Scheduling follows Section IV-C: bins are drained round-robin; one
complete pass over all bins is a *round*.  Events generated while a round
is in progress land in their destination bin — if that bin is later in
the current round they are processed this round (the source of the
paper's *lookahead* effect), otherwise they wait for the next round.
Coalescing-at-insertion guarantees at most one event per vertex per
round, which is what makes vertex updates race-free without atomics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..errors import NonConvergenceError
from ..graph import CSRGraph
from ..obs import metrics as obs_metrics
from ..obs import probe
from ..obs import trace as obs_trace
from ..obs.timeseries import TimeSeries
from ..resilience.harness import ResilienceConfig, ResilienceHarness
from ..resilience.watchdog import ProgressWatchdog, build_diagnostic
from .event import Event
from .queue import CoalescingQueue

__all__ = [
    "FunctionalGraphPulse",
    "FunctionalResult",
    "RoundRecord",
    "TrafficCounters",
    "LOOKAHEAD_BUCKETS",
]

#: Histogram bucket upper bounds for Figure 8 (the paper buckets lookahead
#: as 0, <100, <200, <300, <400, >400).
LOOKAHEAD_BUCKETS = (0, 100, 200, 300, 400)

_CACHE_LINE = 64


@dataclass
class TrafficCounters:
    """Memory-operation and byte-level traffic accounting.

    Byte counts model a cache-line (64 B) granular off-chip interface:
    a drain batch touches the unique lines covering the vertices it
    processes (binning makes those dense), and each propagating vertex
    streams the lines covering its contiguous CSR edge slice.
    ``useful`` bytes are the bytes the computation actually consumed, so
    ``utilization()`` reproduces the Figure 12 metric.
    """

    vertex_reads: int = 0
    vertex_writes: int = 0
    edge_reads: int = 0
    vertex_bytes_fetched: int = 0
    vertex_bytes_useful: int = 0
    edge_bytes_fetched: int = 0
    edge_bytes_useful: int = 0

    @property
    def total_bytes_fetched(self) -> int:
        return self.vertex_bytes_fetched + self.edge_bytes_fetched

    @property
    def total_bytes_useful(self) -> int:
        return self.vertex_bytes_useful + self.edge_bytes_useful

    def utilization(self) -> float:
        """Fraction of fetched off-chip bytes consumed by computation."""
        fetched = self.total_bytes_fetched
        return self.total_bytes_useful / fetched if fetched else 1.0


@dataclass
class RoundRecord:
    """Per-round measurements (Figures 4 and 8, and the inputs the
    throughput timing model needs to convert a round into cycles)."""

    round_index: int
    events_processed: int
    events_produced: int
    events_coalesced: int
    queue_size_after: int
    progress: float  #: sum of |change| applied this round (termination)
    lookahead_histogram: Dict[str, int] = field(default_factory=dict)
    #: events that changed state and propagated along their edges
    propagating_events: int = 0
    #: out-edges scanned by this round's propagations
    edges_scanned: int = 0
    #: unique 64 B vertex-property lines touched by the drain batches
    vertex_lines: int = 0
    #: 64 B lines covering the scanned edge slices
    edge_lines: int = 0

    @property
    def events_remaining(self) -> int:
        """Alias matching Figure 4's 'remaining after coalescing' series."""
        return self.queue_size_after

    @property
    def offchip_bytes(self) -> int:
        """Off-chip traffic of this round (vertex lines read+written plus
        edge lines read), at cache-line granularity."""
        return (2 * self.vertex_lines + self.edge_lines) * 64


@dataclass
class FunctionalResult:
    """Output of a functional run."""

    values: np.ndarray
    rounds: List[RoundRecord]
    traffic: TrafficCounters
    total_events_processed: int
    total_events_produced: int
    converged: bool
    #: resilience activity summary; None unless resilience was enabled
    resilience: Optional[Dict] = None

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def coalesce_rate(self) -> float:
        produced = self.total_events_produced
        if not produced:
            return 0.0
        absorbed = produced - self.total_events_processed
        return max(absorbed, 0) / produced


def _lookahead_bucket(lookahead: int) -> str:
    """Bucket label in the paper's Figure 8 style."""
    if lookahead <= 0:
        return "0"
    for bound in LOOKAHEAD_BUCKETS[1:]:
        if lookahead < bound:
            return f"<{bound}"
    return f">{LOOKAHEAD_BUCKETS[-1]}"


class FunctionalGraphPulse:
    """Event-faithful, untimed GraphPulse engine."""

    #: bin-visit orders the scheduler supports (Section IV-C notes that
    #: policies other than round-robin are possible):
    #: - ``round-robin``: the paper's default, bins in index order;
    #: - ``occupancy``: fullest bins first (drains the bulk of the
    #:   active set before stragglers, increasing coalescing windows);
    #: - ``reverse``: bins in descending index order (an adversarial
    #:   order — useful to demonstrate schedule independence).
    SCHEDULING_POLICIES = ("round-robin", "occupancy", "reverse")

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        *,
        num_bins: int = 64,
        block_size: int = 128,
        track_lookahead: bool = False,
        global_threshold: Optional[float] = None,
        max_rounds: int = 100_000,
        scheduling: str = "round-robin",
        timeseries: Optional[TimeSeries] = None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        """
        Parameters
        ----------
        graph, spec:
            The workload.
        num_bins, block_size:
            Queue geometry (Section IV-B/V defaults).
        track_lookahead:
            Record the Figure 8 histogram (small extra cost).
        global_threshold:
            Optional global termination: stop once a full round's summed
            |progress| drops below this (Section IV-C's accumulator).
            ``None`` runs until the queue empties.
        max_rounds:
            Safety bound; exceeded only by diverging configurations.
        scheduling:
            Bin-visit policy, one of :data:`SCHEDULING_POLICIES`.  The
            fixed point is policy-independent (the Reordering property);
            the amount of work is not.
        timeseries:
            Optional metrics sampler.  The functional engine is untimed,
            so its time domain is the round index: the sampler's
            ``interval`` counts rounds.
        resilience:
            Optional fault-injection / detection / recovery configuration
            (:class:`repro.resilience.ResilienceConfig`).  ``None`` (the
            default) keeps the engine on the fault-free fast path: one
            branch per site, bit-identical behaviour.
        """
        if scheduling not in self.SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {scheduling!r}; "
                f"expected one of {self.SCHEDULING_POLICIES}"
            )
        self.graph = graph
        self.spec = spec
        self.queue = CoalescingQueue(
            graph.num_vertices,
            spec.reduce,
            num_bins=num_bins,
            block_size=block_size,
        )
        self.track_lookahead = track_lookahead
        self.global_threshold = global_threshold
        self.max_rounds = max_rounds
        self.scheduling = scheduling
        self.state = spec.initial_state(graph)
        self._out_degrees = graph.out_degrees()
        self.timeseries = timeseries
        self._now = 0.0
        self._resumed = False
        self._resume_round = 0
        self._resume_totals: Dict[str, int] = {}
        self.resilience: Optional[ResilienceHarness] = None
        if resilience is not None:
            self.resilience = ResilienceHarness(
                resilience, spec, graph, "functional"
            )
            plan = resilience.fault_plan
            if plan.rate("bitflip") > 0 or "bitflip" in plan.scripted:
                self.queue.payload_check = lambda event: (
                    self.resilience.payload_ok(event, self._now)
                )
        if timeseries is not None:
            timeseries.add_gauge(
                "queue_occupancy", lambda: len(self.queue)
            )
            timeseries.add_gauge(
                "events_inserted", lambda: float(self.queue.stats.inserted)
            )
            timeseries.add_gauge(
                "events_drained", lambda: float(self.queue.stats.drained)
            )

    def _bin_visit_order(self) -> List[int]:
        """Bin indices in this round's drain order, per the policy."""
        queue = self.queue
        indices = range(queue.num_bins)
        if self.scheduling == "round-robin":
            return list(indices)
        if self.scheduling == "reverse":
            return list(reversed(indices))
        # occupancy: fullest first, index as tie-break for determinism
        return sorted(indices, key=lambda b: (-queue.bin_occupancy(b), b))

    # ------------------------------------------------------------------
    def restore(self, restored) -> None:
        """Adopt a durable checkpoint; the next ``run`` continues from it.

        The capture was taken *after* round ``restored.round_index``
        completed (the engine checkpoints before incrementing its round
        counter), so execution resumes at the following round with the
        checkpoint's vertex state, queue contents, running totals, and
        fault-injector RNG cursor — everything the continuation needs to
        be bit-identical to the uninterrupted run.
        """
        self.state[:] = restored.state
        self.queue.restore(restored.queue_snapshot)
        self._resume_round = restored.round_index + 1
        self._resume_totals = dict(restored.totals)
        if self.resilience is not None and restored.fault_cursor:
            self.resilience.injector.restore_cursor(restored.fault_cursor)
        self._resumed = True

    # ------------------------------------------------------------------
    def run(self) -> FunctionalResult:
        """Execute until convergence; returns values plus measurements."""
        graph, spec, queue = self.graph, self.spec, self.queue
        state = self.state
        traffic = TrafficCounters()
        rounds: List[RoundRecord] = []
        total_processed = 0
        total_produced = 0

        if self._resumed:
            total_processed = int(
                self._resume_totals.get("events_processed", 0)
            )
            total_produced = int(self._resume_totals.get("events_produced", 0))
        else:
            for vertex, delta in spec.initial_events(graph).items():
                queue.insert(Event(vertex=vertex, delta=delta, generation=0))
                total_produced += 1

        if self.resilience is not None:
            watchdog = self.resilience.make_watchdog(self.max_rounds)
        else:
            watchdog = ProgressWatchdog(self.max_rounds)

        converged = False
        early_stop = False
        round_index = self._resume_round
        while True:
            while not queue.is_empty:
                verdict = watchdog.verdict()
                if verdict is not None:
                    self._abort(verdict, watchdog.rounds)
                record = self._run_round(round_index, state, traffic)
                watchdog.observe_round(
                    record.events_processed, record.propagating_events
                )
                rounds.append(record)
                total_processed += record.events_processed
                total_produced += record.events_produced
                if obs_trace.ACTIVE is not None:
                    probe.round_span(
                        "functional",
                        round_index,
                        float(round_index),
                        float(round_index + 1),
                        events_processed=record.events_processed,
                        events_produced=record.events_produced,
                        events_coalesced=record.events_coalesced,
                        queue_after=record.queue_size_after,
                        progress=record.progress,
                    )
                if obs_metrics.ACTIVE is not None:
                    obs_metrics.round_tick(
                        "functional",
                        round_index,
                        events_processed=record.events_processed,
                    )
                if self.timeseries is not None:
                    self.timeseries.advance(round_index + 1)
                if self.resilience is not None:
                    self.resilience.maybe_checkpoint(
                        round_index,
                        float(round_index + 1),
                        state,
                        queue,
                        totals={
                            "events_processed": total_processed,
                            "events_produced": total_produced,
                        },
                    )
                round_index += 1
                if (
                    self.global_threshold is not None
                    and record.progress < self.global_threshold
                ):
                    converged = True
                    early_stop = True
                    break
            if queue.is_empty:
                converged = True
            # quiescent invariant sweep: repairs re-populate the queue and
            # the round loop resumes (a "repair epoch"); early global-
            # threshold stops skip it (events are still pending)
            if self.resilience is None or early_stop:
                break
            self.resilience.note_quiescence(float(round_index))
            if not self.resilience.repair(
                state,
                float(round_index),
                inject=self._inject_repair,
                restore=self._restore_checkpoint,
            ):
                break

        summary = None
        if self.resilience is not None:
            self.resilience.finalize(float(round_index))
            summary = self.resilience.summary()
        return FunctionalResult(
            values=state,
            rounds=rounds,
            traffic=traffic,
            total_events_processed=total_processed,
            total_events_produced=total_produced,
            converged=converged,
            resilience=summary,
        )

    def _abort(self, verdict: str, rounds: int) -> None:
        """Raise the structured watchdog abort."""
        diagnostic = build_diagnostic("functional", verdict, rounds, self.queue)
        raise NonConvergenceError(
            f"{self.spec.name} did not converge within "
            f"{self.max_rounds} rounds"
            if verdict == "round-limit"
            else f"{self.spec.name} made no progress "
            f"(livelock: events flow but no state changes)",
            diagnostic,
        )

    def _inject_repair(self, vertex: int, delta: float) -> None:
        """Route a repair event straight into the queue (verified write)."""
        self.queue.insert(Event(vertex=vertex, delta=delta, generation=0))

    def _restore_checkpoint(self, checkpoint) -> None:
        """Roll vertex state and queue contents back to a checkpoint."""
        self.state[:] = checkpoint.state
        self.queue.restore(checkpoint.queue_snapshot)

    # ------------------------------------------------------------------
    def _run_round(
        self,
        round_index: int,
        state: np.ndarray,
        traffic: TrafficCounters,
    ) -> RoundRecord:
        graph, spec, queue = self.graph, self.spec, self.queue
        self._now = float(round_index)
        inserted_before = queue.stats.inserted
        coalesced_before = queue.stats.coalesced
        edge_reads_before = traffic.edge_reads
        vertex_lines_before = traffic.vertex_bytes_fetched
        edge_lines_before = traffic.edge_bytes_fetched
        writes_before = traffic.vertex_writes
        processed = 0
        progress = 0.0
        histogram: Dict[str, int] = {}

        for bin_index in self._bin_visit_order():
            batch = queue.drain_bin(bin_index)
            if not batch:
                continue
            processed += len(batch)
            self._account_vertex_batch(batch, traffic)
            for event in batch:
                if self.track_lookahead:
                    bucket = _lookahead_bucket(event.generation - round_index)
                    histogram[bucket] = histogram.get(bucket, 0) + 1
                progress += self._process_event(event, state, traffic)

        return RoundRecord(
            round_index=round_index,
            events_processed=processed,
            events_produced=queue.stats.inserted - inserted_before,
            events_coalesced=queue.stats.coalesced - coalesced_before,
            queue_size_after=len(queue),
            progress=progress,
            lookahead_histogram=histogram,
            propagating_events=traffic.vertex_writes - writes_before,
            edges_scanned=traffic.edge_reads - edge_reads_before,
            vertex_lines=(traffic.vertex_bytes_fetched - vertex_lines_before)
            // (2 * _CACHE_LINE),
            edge_lines=(traffic.edge_bytes_fetched - edge_lines_before)
            // _CACHE_LINE,
        )

    def _process_event(
        self,
        event: Event,
        state: np.ndarray,
        traffic: TrafficCounters,
    ) -> float:
        """Algorithm 1 lines 4-14 for one event; returns |change|."""
        graph, spec = self.graph, self.spec
        u = event.vertex
        traffic.vertex_reads += 1
        result = spec.apply(float(state[u]), event.delta)
        if not result.changed:
            return 0.0
        new_state = result.state
        if self.resilience is not None:
            ok, new_state = self.resilience.guard_value(u, new_state, self._now)
            if not ok:
                # quarantine: reset to identity, do not propagate garbage;
                # the quiescent invariant sweep repairs the vertex
                state[u] = new_state
                traffic.vertex_writes += 1
                return 0.0
        state[u] = new_state
        traffic.vertex_writes += 1
        magnitude = (
            abs(result.change) if np.isfinite(result.change) else 0.0
        )
        if not spec.should_propagate(result.change):
            return magnitude

        degree = int(self._out_degrees[u])
        if degree == 0:
            return magnitude
        traffic.edge_reads += degree
        self._account_edge_slice(u, degree, traffic)
        neighbors = graph.neighbors(u)
        weights = (
            graph.edge_weights(u)
            if spec.uses_weights
            else None
        )
        generation = event.generation + 1
        for index in range(degree):
            dst = int(neighbors[index])
            weight = float(weights[index]) if weights is not None else 1.0
            delta = spec.propagate(result.change, u, dst, weight, degree)
            if delta == spec.identity:
                continue  # Simplification property: identity is a no-op
            produced = Event(vertex=dst, delta=delta, generation=generation)
            if self.resilience is not None:
                for survivor in self.resilience.filter_insert(
                    produced, self._now
                ):
                    self.queue.insert(survivor)
            else:
                self.queue.insert(produced)
        return magnitude

    # ------------------------------------------------------------------
    # Byte-level accounting helpers
    # ------------------------------------------------------------------
    def _account_vertex_batch(
        self, batch: List[Event], traffic: TrafficCounters
    ) -> None:
        graph = self.graph
        lines = {
            graph.vertex_address(e.vertex) // _CACHE_LINE for e in batch
        }
        # read + write-back of the touched lines
        traffic.vertex_bytes_fetched += 2 * len(lines) * _CACHE_LINE
        traffic.vertex_bytes_useful += 2 * len(batch) * graph.vertex_bytes

    def _account_edge_slice(
        self, vertex: int, degree: int, traffic: TrafficCounters
    ) -> None:
        graph = self.graph
        start = graph.edge_address(int(graph.offsets[vertex]))
        stop = graph.edge_address(int(graph.offsets[vertex + 1]))
        first_line = start // _CACHE_LINE
        last_line = (stop - 1) // _CACHE_LINE
        traffic.edge_bytes_fetched += (last_line - first_line + 1) * _CACHE_LINE
        traffic.edge_bytes_useful += degree * graph.edge_bytes
