"""Cycle-level GraphPulse accelerator model (paper Sections IV and V).

This model executes the exact event semantics of the functional engine
(so its converged values are bit-identical to
:class:`repro.core.functional.FunctionalGraphPulse` and validated against
the golden references) while timing every step against modelled hardware
resources:

- bins drain round-robin at ``drain_events_per_cycle`` (the row sweep
  with occupancy bit-vector, Section IV-D); the sweep is backpressured
  by dispatch — the scheduler dequeues "when it detects an idle
  processor";
- every event is dispatched no earlier than its insertion into the
  queue completed (its ``ready`` cycle), so pipeline latency through the
  crossbar and the 4-stage coalescer is respected end to end;
- the scheduler's arbiter tree grants one dispatch per cycle per stage
  and hands events to idle event processors (Section IV-C);
- each processor is a serial state machine: vertex read → reduce/apply
  (4-stage pipeline) → local-termination check → hand-off into a
  generation stream's input buffer (Section IV-E);
- generation streams (Section V, Figure 9) have a small admission
  buffer: the processor stalls only when every stream's buffer is full
  (the paper's Figure 14 "stalling" state).  The buffer prefetches the
  CSR edge slice through an edge cache with N-block lookahead, the
  stream emits one event per cycle, and events flow through the 16×16
  crossbar into the per-bin pipelined coalescers;
- with prefetching enabled, events are dispatched in *blocks* of
  spatially-adjacent vertices; the prefetcher pulls the block's vertex
  lines while the block waits in the input buffer, so processors see
  ~1-cycle vertex reads, and dirty lines write back once per block;
- all off-chip traffic flows through the 4-channel DDR3 model, so
  bandwidth saturation and row-buffer behaviour shape the timeline.

The run produces the per-stage event profile of Figure 13, the
processor/generator occupancy breakdown of Figure 14, and off-chip
traffic counters for Figures 11-12, alongside the converged vertex
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..errors import NonConvergenceError
from ..graph import CSRGraph
from ..memory.cache import Cache, CacheConfig
from ..memory.dram import DRAMSystem
from ..memory.request import MemoryRequest
from ..network.arbiter import ArbiterTree
from ..network.crossbar import Crossbar
from ..obs import metrics as obs_metrics
from ..obs import probe
from ..obs import trace as obs_trace
from ..obs.timeseries import TimeSeries
from ..resilience.harness import ResilienceConfig, ResilienceHarness
from ..resilience.watchdog import ProgressWatchdog, build_diagnostic
from ..sim.kernel import PipelinedResource, Resource
from ..sim.stats import StatSet
from .config import GraphPulseConfig, optimized_config
from .event import Event
from .queue import CoalescingQueue

__all__ = [
    "GraphPulseAccelerator",
    "CycleResult",
    "StageProfile",
    "OccupancyProfile",
]

_LINE = 64


@dataclass
class StageProfile:
    """Cycles spent by events in each execution stage (Figure 13).

    Chronological stages, matching the paper's stacking order:
    vertex memory → process → generation buffer → edge memory → generate.
    """

    vertex_mem: float = 0.0
    process: float = 0.0
    gen_buffer: float = 0.0
    edge_mem: float = 0.0
    generate: float = 0.0
    events: int = 0

    def per_event(self) -> Dict[str, float]:
        n = max(self.events, 1)
        return {
            "vertex_mem": self.vertex_mem / n,
            "process": self.process / n,
            "gen_buffer": self.gen_buffer / n,
            "edge_mem": self.edge_mem / n,
            "generate": self.generate / n,
        }


@dataclass
class OccupancyProfile:
    """Processor and generator time breakdown (Figure 14)."""

    processor_vertex_read: float = 0.0
    processor_process: float = 0.0
    processor_stall: float = 0.0
    generator_edge_read: float = 0.0
    generator_generate: float = 0.0
    generator_stall: float = 0.0

    def processor_fractions(
        self, horizon: int, num_processors: int
    ) -> Dict[str, float]:
        total = max(horizon * num_processors, 1)
        busy = (
            self.processor_vertex_read
            + self.processor_process
            + self.processor_stall
        )
        return {
            "vertex_read": self.processor_vertex_read / total,
            "process": self.processor_process / total,
            "stall": self.processor_stall / total,
            "idle": max(0.0, 1.0 - busy / total),
        }

    def generator_fractions(
        self, horizon: int, num_generators: int
    ) -> Dict[str, float]:
        total = max(horizon * num_generators, 1)
        busy = (
            self.generator_edge_read
            + self.generator_generate
            + self.generator_stall
        )
        return {
            "edge_read": self.generator_edge_read / total,
            "generate": self.generator_generate / total,
            "stall": self.generator_stall / total,
            "idle": max(0.0, 1.0 - busy / total),
        }


@dataclass
class CycleResult:
    """Output of a cycle-level run."""

    values: np.ndarray
    total_cycles: int
    num_rounds: int
    events_processed: int
    events_produced: int
    stage_profile: StageProfile
    occupancy: OccupancyProfile
    dram_stats: Dict[str, float]
    queue_stats: Dict[str, float]
    config: GraphPulseConfig
    converged: bool
    #: useful bytes actually consumed (Figure 12 numerator)
    useful_bytes: float = 0.0
    #: resilience activity summary; None unless resilience was enabled
    resilience: Optional[Dict] = None

    @property
    def seconds(self) -> float:
        return self.total_cycles * self.config.seconds_per_cycle()

    @property
    def offchip_bytes(self) -> float:
        return self.dram_stats.get("bytes", 0.0)

    def data_utilization(self) -> float:
        """Fraction of fetched off-chip bytes used (Figure 12)."""
        fetched = self.offchip_bytes
        return min(self.useful_bytes / fetched, 1.0) if fetched else 1.0


class _GenerationStream:
    """One decoupled generation stream with a small admission buffer.

    ``jobs`` holds the completion cycles of admitted generations (serial,
    so ascending).  A new job can be admitted once fewer than
    ``buffer_entries`` previously-admitted jobs are still unfinished;
    processors stall until then (Figure 14's stall state).
    """

    def __init__(self, index: int, buffer_entries: int):
        self.index = index
        self.buffer_entries = buffer_entries
        self.cursor = 0  #: cycle the stream finishes its admitted work
        self.jobs: List[int] = []

    def admission_time(self, at: int) -> int:
        """Earliest cycle a job arriving at ``at`` can enter the buffer."""
        if len(self.jobs) < self.buffer_entries:
            return at
        # the buffer frees a slot when the oldest of the last
        # ``buffer_entries`` jobs completes
        free_at = self.jobs[-self.buffer_entries]
        return max(at, free_at)

    def admit(self, completion: int) -> None:
        self.jobs.append(completion)
        if len(self.jobs) > 4 * self.buffer_entries:
            del self.jobs[: -2 * self.buffer_entries]
        self.cursor = completion


class GraphPulseAccelerator:
    """Resource-timed cycle model of the GraphPulse accelerator."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        config: Optional[GraphPulseConfig] = None,
        *,
        global_threshold: Optional[float] = None,
        max_rounds: int = 10_000,
        timeseries: Optional[TimeSeries] = None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        self.graph = graph
        self.spec = spec
        self.config = config or optimized_config()
        self.global_threshold = global_threshold
        self.max_rounds = max_rounds
        #: optional metrics sampler; gauges are registered below and
        #: sampled at every interval boundary a round barrier crosses
        self.timeseries = timeseries

        cfg = self.config
        self.queue = CoalescingQueue(
            graph.num_vertices,
            spec.reduce,
            num_bins=cfg.num_bins,
            block_size=cfg.queue_block_size,
            capacity_vertices=cfg.queue_capacity_events,
        )
        self.dram = DRAMSystem(cfg.dram)
        self.crossbar = Crossbar(
            "xbar",
            num_ports=cfg.crossbar_ports,
            sources_per_port=max(
                1, cfg.total_generation_streams // cfg.crossbar_ports
            ),
            traversal_cycles=cfg.crossbar_traversal_cycles,
        )
        self.sched_arbiter = ArbiterTree(
            "sched",
            cfg.num_processors,
            fan_in=cfg.scheduler_arbiter_fan_in,
        )
        self.processors = [
            Resource(f"proc{i}") for i in range(cfg.num_processors)
        ]
        self.streams = [
            _GenerationStream(i, cfg.generation_buffer_entries)
            for i in range(cfg.total_generation_streams)
        ]
        # streams i*G..(i+1)*G-1 form processor i's generation unit
        self._streams_per_proc = (
            cfg.total_generation_streams // cfg.num_processors
        )
        self.edge_caches = [
            Cache(
                f"edgecache{i}",
                CacheConfig(cfg.edge_cache_bytes, line_bytes=_LINE),
                self.dram,
            )
            for i in range(cfg.num_processors)
        ]
        self.bin_pipelines = [
            PipelinedResource(f"bin{b}", 1, cfg.coalescer_latency_cycles)
            for b in range(cfg.num_bins)
        ]
        self.stats = StatSet("graphpulse")

        self.state = spec.initial_state(graph)
        self._out_degrees = graph.out_degrees()
        self.stage = StageProfile()
        self.occupancy = OccupancyProfile()
        self._useful_bytes = 0.0
        #: completion cycle of the latest insertion into each bin
        self._bin_insert_done = [0] * cfg.num_bins
        self._now = 0.0
        self._round_changes = 0
        self._resumed = False
        self._start_rounds = 0
        self._start_cycle = 0
        self._start_processed = 0
        self._start_produced = 0
        self.resilience: Optional[ResilienceHarness] = None
        if resilience is not None:
            self.resilience = ResilienceHarness(resilience, spec, graph, "cycle")
            plan = resilience.fault_plan
            if plan.rate("bitflip") > 0 or "bitflip" in plan.scripted:
                self.queue.payload_check = lambda event: (
                    self.resilience.payload_ok(event, self._now)
                )
        if self.timeseries is not None:
            self._register_gauges(self.timeseries)

    def _register_gauges(self, series: TimeSeries) -> None:
        """Wire the standard cycle-model gauges into a TimeSeries."""
        series.add_gauge("queue_occupancy", lambda: len(self.queue))
        series.add_gauge(
            "dram_bytes", lambda: self.dram.stats.get("bytes")
        )
        series.add_gauge(
            "processor_busy_cycles",
            lambda: self.occupancy.processor_vertex_read
            + self.occupancy.processor_process
            + self.occupancy.processor_stall,
        )
        series.add_gauge(
            "events_inserted", lambda: float(self.queue.stats.inserted)
        )
        series.add_gauge(
            "events_drained", lambda: float(self.queue.stats.drained)
        )

    # ------------------------------------------------------------------
    def restore(self, restored) -> None:
        """Adopt a durable checkpoint; the next ``run`` continues from it.

        The cycle engine checkpoints with its already-incremented round
        count, so the counter resumes exactly there; the clock resumes
        at the capture cycle.  Values and the round count are
        timing-independent (events are applied in drain order), so the
        continued run converges to bit-identical state at the same
        round; resource pipelines restart cold, making post-resume
        *cycle counts* approximate rather than bit-equal.
        """
        self.state[:] = restored.state
        self.queue.restore(restored.queue_snapshot)
        self._start_rounds = restored.round_index
        self._start_cycle = int(restored.at)
        self._start_processed = int(restored.totals.get("events_processed", 0))
        self._start_produced = int(restored.totals.get("events_produced", 0))
        if self.resilience is not None and restored.fault_cursor:
            self.resilience.injector.restore_cursor(restored.fault_cursor)
        self._resumed = True

    # ------------------------------------------------------------------
    def run(self) -> CycleResult:
        """Run to convergence; returns timing, profiles and values."""
        spec, queue = self.spec, self.queue
        if not self._resumed:
            for vertex, delta in spec.initial_events(self.graph).items():
                queue.insert(Event(vertex=vertex, delta=delta))

        if self.resilience is not None:
            watchdog = self.resilience.make_watchdog(self.max_rounds)
        else:
            watchdog = ProgressWatchdog(self.max_rounds)

        now = self._start_cycle
        rounds = self._start_rounds
        events_processed = self._start_processed
        converged = False
        early_stop = False
        while True:
            while not queue.is_empty:
                verdict = watchdog.verdict()
                if verdict is not None:
                    diagnostic = build_diagnostic(
                        "cycle", verdict, watchdog.rounds, queue
                    )
                    raise NonConvergenceError(
                        f"{spec.name} did not converge within "
                        f"{self.max_rounds} rounds"
                        if verdict == "round-limit"
                        else f"{spec.name} made no progress (livelock: "
                        f"events flow but no state changes)",
                        diagnostic,
                    )
                round_start = now
                produced_before = queue.stats.inserted
                self._round_changes = 0
                now, processed, progress = self._run_round(now)
                watchdog.observe_round(processed, self._round_changes)
                rounds += 1
                events_processed += processed
                if obs_trace.ACTIVE is not None:
                    probe.round_span(
                        "cycle",
                        rounds - 1,
                        round_start,
                        now,
                        events_processed=processed,
                        events_produced=queue.stats.inserted - produced_before,
                        queue_after=len(queue),
                        progress=progress,
                    )
                if obs_metrics.ACTIVE is not None:
                    obs_metrics.round_tick(
                        "cycle", rounds - 1, events_processed=processed
                    )
                if self.timeseries is not None:
                    self.timeseries.advance(now)
                if self.resilience is not None:
                    self.resilience.maybe_checkpoint(
                        rounds,
                        float(now),
                        self.state,
                        queue,
                        totals={
                            "events_processed": events_processed,
                            "events_produced": self._start_produced
                            + int(queue.stats.inserted),
                        },
                    )
                if (
                    self.global_threshold is not None
                    and progress < self.global_threshold
                ):
                    converged = True
                    early_stop = True
                    break
            if queue.is_empty:
                converged = True
            # quiescent invariant sweep (repair epochs); see functional.py
            if self.resilience is None or early_stop:
                break
            self._now = float(now)
            self.resilience.note_quiescence(float(now))
            if not self.resilience.repair(
                self.state,
                float(now),
                inject=self._inject_repair,
                restore=self._restore_checkpoint,
            ):
                break

        summary = None
        if self.resilience is not None:
            self.resilience.finalize(float(now))
            summary = self.resilience.summary()
        return CycleResult(
            values=self.state,
            total_cycles=now,
            num_rounds=rounds,
            events_processed=events_processed,
            events_produced=self._start_produced + int(queue.stats.inserted),
            stage_profile=self.stage,
            occupancy=self.occupancy,
            dram_stats=self.dram.stats.snapshot(),
            queue_stats={
                "inserted": queue.stats.inserted,
                "coalesced": queue.stats.coalesced,
                "drained": queue.stats.drained,
                "peak_occupancy": queue.stats.peak_occupancy,
            },
            config=self.config,
            converged=converged,
            useful_bytes=self._useful_bytes,
            resilience=summary,
        )

    # ------------------------------------------------------------------
    # Resilience callbacks
    # ------------------------------------------------------------------
    def _inject_repair(self, vertex: int, delta: float) -> None:
        """Re-inject a lost/corrective delta discovered by the invariant
        sweep; the event enters the queue as if freshly produced."""
        self.queue.insert(
            Event(
                vertex=vertex,
                delta=delta,
                generation=0,
                ready=int(self._now),
            )
        )

    def _restore_checkpoint(self, checkpoint) -> None:
        """Roll state and pending events back to a checkpoint."""
        self.state[:] = checkpoint.state
        self.queue.restore(checkpoint.queue_snapshot)

    # ------------------------------------------------------------------
    def _run_round(self, start: int) -> Tuple[int, int, float]:
        """One round-robin pass over all bins; returns (end, count, progress)."""
        cfg = self.config
        cursor = start
        barrier = start
        processed = 0
        progress = 0.0
        for bin_index in range(cfg.num_bins):
            self._now = float(cursor)
            batch = self.queue.drain_bin(bin_index)
            if not batch:
                continue  # occupancy bit-vector skips empty rows
            drain_start = cursor
            if obs_trace.ACTIVE is not None:
                probe.queue_drain(
                    bin_index, drain_start, len(batch), len(self.queue)
                )
            drain_cycles = -(-len(batch) // cfg.drain_events_per_cycle)
            last_dispatch, last_done, prog = self._dispatch_batch(
                batch, drain_start
            )
            barrier = max(barrier, last_done)
            progress += prog
            processed += len(batch)
            # The scheduler dequeues "when it detects an idle processor";
            # the sweep is backpressured by dispatch.
            cursor = max(drain_start + drain_cycles, last_dispatch)
        # Round barrier: "the scheduler waits until all the cores are
        # idle before rolling over to the first bin again" — including
        # insertions still flowing into the queue.
        barrier = max(
            barrier,
            cursor,
            max((p.next_free for p in self.processors), default=0),
            max((s.cursor for s in self.streams), default=0),
            max(self._bin_insert_done, default=0),
        )
        return barrier, processed, progress

    def _dispatch_batch(
        self, batch: List[Event], drain_start: int
    ) -> Tuple[int, int, float]:
        """Dispatch one bin's drained events.

        Returns ``(last_dispatch_start, last_completion, progress)``;
        the first feeds the sweep backpressure, the second the round
        barrier.
        """
        cfg = self.config
        last_dispatch = drain_start
        last_done = drain_start
        progress = 0.0
        if cfg.prefetch_enabled:
            groups = self._group_by_block(batch)
        else:
            groups = [[e] for e in batch]

        index = 0
        for group in groups:
            sweep = drain_start + 1 + index // cfg.drain_events_per_cycle
            # the group is dispatched when its first events are in the
            # output buffer; individual events that are still flowing
            # through crossbar + coalescer gate only themselves
            avail = max(sweep, min(e.ready for e in group))
            index += len(group)
            dispatched, done, prog = self._run_group(group, avail)
            last_dispatch = max(last_dispatch, dispatched)
            last_done = max(last_done, done)
            progress += prog
        return last_dispatch, last_done, progress

    def _group_by_block(self, batch: List[Event]) -> List[List[Event]]:
        """Split a sweep-ordered batch into spatial blocks (Section V)."""
        size = self.config.prefetch_block_size
        groups: List[List[Event]] = []
        current_block = None
        for event in batch:
            block = event.vertex // size
            if block != current_block:
                groups.append([])
                current_block = block
            groups[-1].append(event)
        return groups

    # ------------------------------------------------------------------
    def _run_group(
        self, group: List[Event], avail: int
    ) -> Tuple[int, int, float]:
        """Run one dispatch group on one processor.

        Returns ``(dispatch_start, last_completion, progress)``.
        """
        cfg = self.config
        graph, spec = self.graph, self.spec

        if self.resilience is not None:
            lanes = self.resilience.alive_lanes(cfg.num_processors, avail)
        else:
            lanes = range(cfg.num_processors)
        proc_index = min(
            lanes,
            key=lambda i: self.processors[i].next_free,
        )
        proc = self.processors[proc_index]
        grant = self.sched_arbiter.request(proc_index, avail)
        t = max(grant, proc.next_free)
        dispatch_start = t

        # Vertex prefetch: pull the block's unique vertex lines once,
        # issued from the input-buffer window as soon as the events are
        # available so DRAM latency overlaps any wait for the processor.
        line_ready: Dict[int, int] = {}
        if cfg.prefetch_enabled:
            lines = sorted(
                {graph.vertex_address(e.vertex) // _LINE for e in group}
            )
            for line in lines:
                result = self.dram.access(
                    MemoryRequest(line * _LINE, _LINE, kind="vertex"), avail
                )
                done = result.done_cycle
                if self.resilience is not None:
                    # transient read error: ECC retry delays the fill
                    done += int(self.resilience.dram_delay(float(done)))
                line_ready[line] = done

        last_done = t
        progress = 0.0
        block_dirty = False
        for event in group:
            # an event cannot be processed before its insertion into the
            # queue completed (lookahead events arrive mid-round)
            start = max(t, event.ready)
            # --- vertex read ------------------------------------------
            if cfg.prefetch_enabled:
                line = graph.vertex_address(event.vertex) // _LINE
                v_done = max(start, line_ready[line]) + 1
            else:
                v_done = self.dram.access(
                    MemoryRequest(
                        graph.vertex_address(event.vertex),
                        graph.vertex_bytes,
                        kind="vertex",
                    ),
                    start,
                ).done_cycle
                if self.resilience is not None:
                    v_done += int(self.resilience.dram_delay(float(v_done)))
            self.stage.vertex_mem += v_done - start
            self.occupancy.processor_vertex_read += v_done - start

            # --- reduce / apply ---------------------------------------
            result = spec.apply(float(self.state[event.vertex]), event.delta)
            p_done = v_done + cfg.process_pipeline_cycles
            self.stage.process += cfg.process_pipeline_cycles
            self.occupancy.processor_process += cfg.process_pipeline_cycles
            self.stage.events += 1
            self._useful_bytes += graph.vertex_bytes  # the read

            t = p_done
            if not result.changed:
                last_done = max(last_done, p_done)
                if obs_trace.ACTIVE is not None:
                    probe.event_process(
                        proc_index,
                        start,
                        p_done,
                        vertex=event.vertex,
                        vertex_mem=v_done - start,
                        process=cfg.process_pipeline_cycles,
                    )
                continue

            new_state = result.state
            quarantined = False
            if self.resilience is not None:
                ok, new_state = self.resilience.guard_value(
                    event.vertex, new_state, float(p_done)
                )
                quarantined = not ok
            self.state[event.vertex] = new_state
            self._round_changes += 1
            self._useful_bytes += graph.vertex_bytes  # the write-back
            block_dirty = True
            if not cfg.prefetch_enabled:
                self.dram.access(
                    MemoryRequest(
                        graph.vertex_address(event.vertex),
                        graph.vertex_bytes,
                        is_write=True,
                        kind="vertex",
                    ),
                    p_done,
                )
            if quarantined:
                # poisoned value was reset to identity: never propagate
                # garbage; the quiescent sweep repairs the vertex later
                last_done = max(last_done, p_done)
                if obs_trace.ACTIVE is not None:
                    probe.event_process(
                        proc_index,
                        start,
                        p_done,
                        vertex=event.vertex,
                        vertex_mem=v_done - start,
                        process=cfg.process_pipeline_cycles,
                    )
                continue
            if np.isfinite(result.change):
                progress += abs(result.change)

            degree = int(self._out_degrees[event.vertex])
            if not spec.should_propagate(result.change) or degree == 0:
                last_done = max(last_done, p_done)
                if obs_trace.ACTIVE is not None:
                    probe.event_process(
                        proc_index,
                        start,
                        p_done,
                        vertex=event.vertex,
                        vertex_mem=v_done - start,
                        process=cfg.process_pipeline_cycles,
                    )
                continue

            # --- hand off into a generation stream's buffer -----------
            base = proc_index * self._streams_per_proc
            unit = self.streams[base: base + self._streams_per_proc]
            stream = min(unit, key=lambda s: s.admission_time(p_done))
            admitted = stream.admission_time(p_done)
            # the processor stalls only while every buffer is full
            self.occupancy.processor_stall += admitted - p_done

            gen_done, gen_start = self._generate(
                stream, proc_index, event, result.change, degree, admitted
            )
            self.stage.gen_buffer += gen_start - p_done
            if obs_trace.ACTIVE is not None:
                probe.event_process(
                    proc_index,
                    start,
                    p_done,
                    vertex=event.vertex,
                    vertex_mem=v_done - start,
                    process=cfg.process_pipeline_cycles,
                    gen_buffer=gen_start - p_done,
                    stall=admitted - p_done,
                )
            last_done = max(last_done, gen_done)
            # The processor is free as soon as the hand-off happens; the
            # stream works independently (decoupled units, Figure 9).
            t = admitted if cfg.parallel_generation_enabled else gen_done

        proc.next_free = t
        if cfg.prefetch_enabled and line_ready and block_dirty:
            # write back the block's dirty vertex lines once
            for line in line_ready:
                self.dram.access(
                    MemoryRequest(
                        line * _LINE, _LINE, is_write=True, kind="vertex"
                    ),
                    t,
                )
        return dispatch_start, last_done, progress

    # ------------------------------------------------------------------
    def _generate(
        self,
        stream: _GenerationStream,
        proc_index: int,
        event: Event,
        change: float,
        degree: int,
        admitted: int,
    ) -> Tuple[int, int]:
        """Generate outgoing events for one vertex on one stream.

        Returns ``(completion_cycle, generation_start_cycle)``.
        """
        cfg = self.config
        graph, spec = self.graph, self.spec
        u = event.vertex
        cache = self.edge_caches[proc_index]

        edge_start = graph.edge_address(int(graph.offsets[u]))
        edge_stop = graph.edge_address(int(graph.offsets[u + 1]))
        first_line = edge_start // _LINE
        last_line = (edge_stop - 1) // _LINE
        lines = list(range(first_line, last_line + 1))
        self._useful_bytes += degree * graph.edge_bytes

        neighbors = graph.neighbors(u)
        weights = graph.edge_weights(u) if spec.uses_weights else None
        generation = event.generation + 1

        # Edge-line arrival schedule.  The buffer prefetches up to N
        # lines ahead using the degree hint, starting at admission, so
        # fills overlap the tail of the previous job.
        prefetch_depth = (
            min(cfg.edge_prefetch_blocks, len(lines))
            if cfg.prefetch_enabled
            else 1
        )
        gen_start = max(admitted, stream.cursor)
        cursor = gen_start
        consume_time: List[int] = []
        edge_wait = 0
        gen_cycles = 0
        emitted = 0

        for i, line in enumerate(lines):
            if i < prefetch_depth:
                issue_at = admitted
            else:
                issue_at = consume_time[i - prefetch_depth]
            result = cache.access(line * _LINE, issue_at, kind="edge")

            ready = max(cursor, result.done_cycle)
            edge_wait += ready - cursor
            cursor = ready
            eb = graph.edge_bytes
            base = graph.edge_region_base
            lo = max(
                int(graph.offsets[u]),
                (line * _LINE - base + eb - 1) // eb,
            )
            hi = min(
                int(graph.offsets[u + 1]),
                ((line + 1) * _LINE - base + eb - 1) // eb,
            )
            local_lo = lo - int(graph.offsets[u])
            local_hi = hi - int(graph.offsets[u])
            for k in range(local_lo, local_hi):
                dst = int(neighbors[k])
                weight = float(weights[k]) if weights is not None else 1.0
                delta = spec.propagate(change, u, dst, weight, degree)
                cursor += 1  # one event per cycle per stream
                gen_cycles += 1
                if delta == spec.identity:
                    continue  # Simplification property: identity no-op
                self._emit(stream.index, dst, delta, generation, cursor)
                emitted += 1
            consume_time.append(cursor)

        stream.admit(cursor)
        self.stats.add("events_generated", emitted)
        self.stage.edge_mem += edge_wait
        self.stage.generate += gen_cycles
        self.occupancy.generator_edge_read += edge_wait
        self.occupancy.generator_generate += gen_cycles
        if obs_trace.ACTIVE is not None:
            probe.event_generate(
                stream.index,
                gen_start,
                cursor,
                vertex=u,
                fanout=emitted,
                edge_mem=edge_wait,
                generate=gen_cycles,
            )
        return cursor, gen_start

    def _emit(
        self,
        stream_index: int,
        dst: int,
        delta: float,
        generation: int,
        at: int,
    ) -> None:
        """Route one event through the crossbar into its bin's coalescer."""
        bin_index = self.queue.mapping.bin_of(dst)
        port = bin_index % self.config.crossbar_ports
        delivery = self.crossbar.send(stream_index, port, at)
        _, insert_done = self.bin_pipelines[bin_index].issue(delivery)
        self._bin_insert_done[bin_index] = max(
            self._bin_insert_done[bin_index], insert_done
        )
        produced = Event(
            vertex=dst,
            delta=delta,
            generation=generation,
            ready=insert_done,
        )
        if self.resilience is not None:
            for survivor in self.resilience.filter_insert(
                produced, float(at)
            ):
                self.queue.insert(survivor)
        else:
            self.queue.insert(produced)
