"""Cross-host sliced execution over a shared durable substrate.

``sliced-hosts`` runs the Section IV-F slicing schedule as a set of
*independent supervisor processes* ("hosts") that share nothing but a
directory of durable artifacts.  Any number of hosts may be pointed at
the same ``hosts_dir``; they cooperate to execute the exact sequential
schedule, and any of them can be SIGKILLed at any instant without
changing a single output bit.

Protocol
--------
Execution is totally ordered into *steps*.  Step ``k`` activates slice
``s = k % num_slices`` of pass ``k // num_slices`` — precisely the
iteration order of the sequential ``sliced`` engine (empty slices are
no-op steps there too), which is what makes bit-identity to ``sliced``
provable rather than statistical.  Exactly one host executes each step,
guarded by a per-step lease on slot ``s`` with epoch fencing.

The shared directory holds:

``meta.json``
    Created once with ``O_EXCL``; joining hosts validate the workload
    (algorithm, slice count, graph fingerprint) against it.
``journal.bin``
    A GPJL spill log (the same wire format and replay semantics as the
    resilience journal).  Step ``k`` appends its CONSUME/SPILL records
    and a ``COMMIT(k + 1)`` marker.
``shard-NNNN.bin``
    One GPSH blob per slice: the slice's vertex values plus the
    *cumulative* run counters as of the step that published it.
``cursor.json``
    ``{"step": k, "done": bool}`` — the linearization point.  A step is
    complete exactly when the cursor names its successor.
``leases/``
    One lease slot per slice plus a reserved slot ``num_slices`` that
    guards seeding ("step -1").

Each step publishes in a fixed order: (1) journal records + commit,
(2) shard, (3) cursor.  Hosts are stateless between steps — every step
re-derives its inputs from the durable artifacts — so a takeover after
a peer died at any point between those publishes lands in one of three
cases, each with a deterministic continuation:

* journal commit is ``k`` → the dead host published nothing durable for
  step ``k``; truncate any torn tail and execute normally.
* journal commit is ``k + 1`` and shard ``s`` carries step ``k`` → only
  the cursor is missing; publish it (counters come from the shard, no
  re-execution).
* journal commit is ``k + 1`` but shard ``s`` is older → re-execute the
  step with journaling suppressed.  Replay to commit ``k`` rebuilds the
  pre-step spill buffers (in absorption order — dict updates preserve
  insertion position), the stale shard still holds the pre-step slice
  values, and execution is deterministic, so the redo reproduces the
  exact bytes the journal already holds.

Liveness contract: as with ``sliced-mp`` leases, a host only breaks a
lease whose owner is dead or has stopped heartbeating for the full
timeout; a host that loses its lease anyway discovers the foreign epoch
at the pre-publish fencing check and yields without publishing.

The engine is registered neither resilient nor resumable: the hosts
directory *is* the durable substrate (every step is effectively a
checkpoint), and layering the single-process resilience harness on top
would double-journal the same traffic.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import (
    CheckpointCorruptError,
    LeaseHeldError,
    ManifestMismatchError,
    NonConvergenceError,
    ReproError,
)
from ..graph.partition import Partition
from ..ioutil import atomic_write_bytes, exclusive_create_bytes, read_bytes
from ..resilience.lease import DEFAULT_LEASE_TIMEOUT
from ..resilience.substrate import build_substrate
from .event import Event
from .functional import TrafficCounters
from .slicing import _SPILL_EVENT_BYTES, run_slice_activation

__all__ = [
    "HostSlicedGraphPulse",
    "HostSlicedResult",
    "ShardRecord",
    "encode_shard",
    "parse_shard",
    "KILL_HOST_ENV",
    "META_FILENAME",
    "CURSOR_FILENAME",
    "JOURNAL_FILENAME",
    "shard_filename",
]

META_FILENAME = "meta.json"
CURSOR_FILENAME = "cursor.json"
JOURNAL_FILENAME = "journal.bin"
META_FORMAT_VERSION = 1

SHARD_MAGIC = b"GPSH"
SHARD_VERSION = 1
#: magic | version u16 | slice u32 | step i64 | count u32 | cumulative
#: processed/rounds/spilled/consumed i64 — then count f64 values, crc32
_SHARD_HEADER = struct.Struct("<4sHIqIqqqq")
_CRC = struct.Struct("<I")

#: ``REPRO_KILL_HOST=STEP[:POINT]`` SIGKILLs the host while executing
#: step STEP, at POINT in {pre, journal, shard} — before any publish,
#: after the journal commit, or after the shard publish (the three
#: distinct takeover cases above).  Test hook, mirroring
#: ``REPRO_KILL_WORKER`` in the multi-process engine.
KILL_HOST_ENV = "REPRO_KILL_HOST"
_KILL_POINTS = ("pre", "journal", "shard")


def shard_filename(slice_index: int) -> str:
    return f"shard-{slice_index:04d}.bin"


@dataclass
class ShardRecord:
    """One decoded GPSH shard: a slice's values + cumulative counters."""

    slice_index: int
    step: int
    values: np.ndarray
    processed: int
    rounds: int
    spilled: int
    consumed: int


def encode_shard(
    slice_index: int,
    step: int,
    values: np.ndarray,
    *,
    processed: int,
    rounds: int,
    spilled: int,
    consumed: int,
) -> bytes:
    """Serialize one slice's state shard (CRC-sealed, like GPJL/GPCK)."""
    payload = np.ascontiguousarray(values, dtype="<f8").tobytes()
    head = _SHARD_HEADER.pack(
        SHARD_MAGIC,
        SHARD_VERSION,
        slice_index,
        step,
        len(values),
        processed,
        rounds,
        spilled,
        consumed,
    )
    body = head + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def parse_shard(data: bytes, *, source: str = "<shard>") -> ShardRecord:
    """Decode and validate one GPSH shard blob."""
    if len(data) < _SHARD_HEADER.size + _CRC.size:
        raise CheckpointCorruptError(
            f"{source}: truncated shard ({len(data)} bytes)", path=source
        )
    (
        magic,
        version,
        slice_index,
        step,
        count,
        processed,
        rounds,
        spilled,
        consumed,
    ) = _SHARD_HEADER.unpack_from(data)
    if magic != SHARD_MAGIC:
        raise CheckpointCorruptError(
            f"{source}: bad shard magic {magic!r}", path=source
        )
    if version != SHARD_VERSION:
        raise CheckpointCorruptError(
            f"{source}: unsupported shard version {version}",
            path=source,
            version=version,
        )
    expected = _SHARD_HEADER.size + 8 * count + _CRC.size
    if len(data) != expected:
        raise CheckpointCorruptError(
            f"{source}: shard length {len(data)} != expected {expected}",
            path=source,
        )
    body, crc = data[: -_CRC.size], _CRC.unpack(data[-_CRC.size :])[0]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointCorruptError(
            f"{source}: shard CRC mismatch", path=source
        )
    values = np.frombuffer(
        data, dtype="<f8", count=count, offset=_SHARD_HEADER.size
    ).copy()
    return ShardRecord(
        slice_index=slice_index,
        step=step,
        values=values,
        processed=processed,
        rounds=rounds,
        spilled=spilled,
        consumed=consumed,
    )


def _parse_kill_host(raw: Optional[str]) -> Optional[Tuple[int, str]]:
    if not raw:
        return None
    step_text, _, point = raw.partition(":")
    point = point or "pre"
    if point not in _KILL_POINTS:
        raise ReproError(
            f"{KILL_HOST_ENV}={raw!r}: point must be one of "
            f"{', '.join(_KILL_POINTS)}"
        )
    try:
        return int(step_text), point
    except ValueError:
        raise ReproError(
            f"{KILL_HOST_ENV}={raw!r}: expected STEP[:POINT]"
        ) from None


class _Fenced(Exception):
    """Our lease epoch is no longer current; yield without publishing."""


@dataclass
class HostSlicedResult:
    """Outcome of one host's participation in a shared run."""

    values: np.ndarray
    converged: bool
    num_passes: int
    total_rounds: int
    events_processed: int
    events_spilled: int
    events_consumed: int
    steps_total: int
    steps_executed: int  #: steps this host executed (not just observed)
    takeovers: int  #: stale leases this host fenced and broke
    host: str
    num_slices: int

    @property
    def spill_bytes_written(self) -> int:
        return self.events_spilled * _SPILL_EVENT_BYTES

    @property
    def spill_bytes_read(self) -> int:
        return self.events_consumed * _SPILL_EVENT_BYTES

    @property
    def total_spill_bytes(self) -> int:
        return self.spill_bytes_written + self.spill_bytes_read


class HostSlicedGraphPulse:
    """One supervisor host of a shared-directory ``sliced-hosts`` run."""

    ENGINE_NAME = "sliced-hosts"

    def __init__(
        self,
        partition: Partition,
        spec,
        *,
        hosts_dir,
        host_id: Optional[str] = None,
        num_bins: int = 64,
        block_size: int = 128,
        max_passes: int = 10_000,
        rounds_per_activation: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ):
        if hosts_dir is None:
            raise ReproError(
                "sliced-hosts requires a hosts_dir (the shared substrate "
                "directory all participating hosts point at)"
            )
        self.partition = partition
        self.spec = spec
        self.hosts_dir = Path(hosts_dir)
        self.host_id = host_id or f"host-{os.getpid()}"
        self.num_bins = num_bins
        self.block_size = block_size
        self.max_passes = max_passes
        self.rounds_per_activation = rounds_per_activation
        self.lease_timeout = (
            DEFAULT_LEASE_TIMEOUT if lease_timeout is None else lease_timeout
        )
        self.heartbeat_interval = max(0.02, self.lease_timeout / 10.0)
        self.poll_interval = poll_interval
        self._kill = _parse_kill_host(os.environ.get(KILL_HOST_ENV))
        #: per-slot staleness observation caches, reset whenever the
        #: slot's holder identity changes (see ``_slot_observations``)
        self._slot_obs: Dict[int, Dict[str, Tuple[int, float]]] = {}
        self._slot_ident: Dict[int, Tuple[str, int, int]] = {}
        #: per-acquisition sequence baked into the lease owner string so
        #: every acquisition has a distinct identity (see ``_claim``)
        self._acquire_seq = 0
        substrate = build_substrate("fs")
        self._lease_store = substrate.lease_store(self.hosts_dir / "leases")
        self._transport = substrate.spill_transport(
            self.hosts_dir / JOURNAL_FILENAME
        )

    # ------------------------------------------------------------------
    # Shared-directory artifacts
    # ------------------------------------------------------------------
    @property
    def _meta_path(self) -> Path:
        return self.hosts_dir / META_FILENAME

    @property
    def _cursor_path(self) -> Path:
        return self.hosts_dir / CURSOR_FILENAME

    def _shard_path(self, slice_index: int) -> Path:
        return self.hosts_dir / shard_filename(slice_index)

    def _read_cursor(self) -> Optional[Dict[str, Any]]:
        try:
            data = read_bytes(self._cursor_path)
        except FileNotFoundError:
            return None
        return json.loads(data.decode("utf-8"))

    def _publish_cursor(self, step: int, done: bool) -> None:
        atomic_write_bytes(
            self._cursor_path,
            json.dumps({"step": step, "done": done}, sort_keys=True).encode(
                "utf-8"
            ),
        )

    def _read_shard(self, slice_index: int) -> ShardRecord:
        path = self._shard_path(slice_index)
        try:
            data = read_bytes(path)
        except FileNotFoundError:
            raise CheckpointCorruptError(
                f"{path}: shard missing from a seeded hosts directory",
                path=str(path),
            ) from None
        record = parse_shard(data, source=str(path))
        if record.slice_index != slice_index:
            raise CheckpointCorruptError(
                f"{path}: shard names slice {record.slice_index}",
                path=str(path),
            )
        expected = self.partition.slices[slice_index].num_vertices
        if len(record.values) != expected:
            raise CheckpointCorruptError(
                f"{path}: shard holds {len(record.values)} values but the "
                f"slice owns {expected} vertices",
                path=str(path),
            )
        return record

    def _publish_shard(
        self, slice_index: int, step: int, state: np.ndarray, totals: Dict
    ) -> None:
        values = state[self.partition.slices[slice_index].vertices]
        atomic_write_bytes(
            self._shard_path(slice_index),
            encode_shard(slice_index, step, values, **totals),
        )

    def _meta(self) -> Dict[str, Any]:
        from ..graph.io import graph_fingerprint  # heavy import, local

        return {
            "format_version": META_FORMAT_VERSION,
            "protocol": "sliced-hosts",
            "algorithm": self.spec.name,
            "num_slices": self.partition.num_slices,
            "num_vertices": self.partition.graph.num_vertices,
            "graph_fingerprint": graph_fingerprint(self.partition.graph),
        }

    def _validate_meta(self) -> None:
        try:
            recorded = json.loads(read_bytes(self._meta_path).decode("utf-8"))
        except FileNotFoundError:
            return  # creator died pre-publish; a seeder will recreate it
        mine = self._meta()
        for key, expected in mine.items():
            if recorded.get(key) != expected:
                raise ManifestMismatchError(
                    f"{self._meta_path}: hosts directory was seeded for a "
                    f"different workload ({key}: {recorded.get(key)!r} != "
                    f"{expected!r})",
                    key=key,
                    recorded=recorded.get(key),
                    expected=expected,
                )

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def _slot_observations(
        self, slot: int, holder
    ) -> Dict[str, Tuple[int, float]]:
        """The staleness counter cache for ``slot``'s *current* holder.

        Per-step leases are short-lived: every acquisition restarts the
        heartbeat counter at zero, so a shared cache would mistake a
        fresh lease for an old one that has been silent since the cache
        last looked.  Keying the cache by holder identity (owner, pid,
        epoch) resets the staleness clock whenever the holder changes —
        only *one* acquisition's sustained silence can trip it.  The
        acquisition sequence number baked into the owner string keeps
        two acquisitions by the same host distinguishable.
        """
        ident = (holder.owner, holder.pid, holder.epoch)
        if self._slot_ident.get(slot) != ident:
            self._slot_ident[slot] = ident
            self._slot_obs[slot] = {}
        return self._slot_obs[slot]

    def _claim(self, slot: int):
        """Try to claim a lease slot; ``(lease, fenced_stale)`` or None.

        Breaks a stale holder first (epoch-fenced takeover); returns
        ``None`` when the slot is held by a live peer or the race was
        lost.
        """
        self._acquire_seq += 1
        owner = f"{self.host_id}#{self._acquire_seq}"
        holder = self._lease_store.read(slot)
        if holder is None:
            try:
                lease = self._lease_store.acquire(slot, owner=owner)
            except LeaseHeldError:
                return None
            return lease, False
        observations = self._slot_observations(slot, holder)
        if not self._lease_store.is_stale(
            slot, timeout=self.lease_timeout, observations=observations
        ):
            return None
        try:
            self._lease_store.break_stale(
                slot, timeout=self.lease_timeout, observations=observations
            )
        except LeaseHeldError:
            return None
        try:
            lease = self._lease_store.acquire(
                slot, owner=owner, epoch=holder.epoch + 1
            )
        except LeaseHeldError:
            return None  # another host won the post-break race
        return lease, True

    def _check_fence(self, lease) -> None:
        """Abort (``_Fenced``) unless our epoch still owns the slot.

        Re-reads the lease slot immediately before every durable
        publish: a peer that judged us dead has broken our lease and
        re-acquired with a higher epoch, and publishing over its run
        is the one thing epoch fencing exists to prevent.
        """
        current = self._lease_store.read(lease.info.slice_index)
        if (
            current is None
            or current.owner != lease.info.owner
            or current.pid != lease.info.pid
            or current.epoch != lease.info.epoch
        ):
            raise _Fenced()

    def _heartbeat(self, lease) -> Tuple[threading.Event, threading.Thread]:
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_interval):
                try:
                    lease.refresh()
                except OSError:
                    return

        thread = threading.Thread(
            target=beat, name="hosts-lease-heartbeat", daemon=True
        )
        thread.start()
        return stop, thread

    def _maybe_kill(self, step: int, point: str) -> None:
        if self._kill is not None and self._kill == (step, point):
            os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------------
    # Seeding ("step -1")
    # ------------------------------------------------------------------
    def _ensure_seeded(self) -> None:
        """Exactly-once initialization of the shared directory.

        The first host creates ``meta.json`` with ``O_EXCL`` and seeds
        under the reserved lease slot; others validate the meta and wait
        for the cursor.  Seeding is redo-safe: a seeder that dies at any
        point leaves a stale seed lease, and its successor repeats the
        whole deterministic sequence (journal create truncates).
        """
        (self.hosts_dir / "leases").mkdir(parents=True, exist_ok=True)
        meta_blob = json.dumps(
            self._meta(), sort_keys=True, indent=2
        ).encode("utf-8")
        seed_slot = self.partition.num_slices
        while True:
            if self._read_cursor() is not None:
                self._validate_meta()
                return
            try:
                exclusive_create_bytes(self._meta_path, meta_blob)
            except FileExistsError:
                self._validate_meta()
            claim = self._claim(seed_slot)
            if claim is None:
                time.sleep(self.poll_interval)
                continue
            lease, _ = claim
            stop, thread = self._heartbeat(lease)
            try:
                if self._read_cursor() is None:
                    self._seed()
            finally:
                stop.set()
                thread.join()
                lease.release()
            return

    def _seed(self) -> None:
        partition, spec = self.partition, self.spec
        writer = self._transport.create(partition.num_slices)
        try:
            seeds = spec.initial_events(partition.graph)
            for vertex, delta in seeds.items():
                s = int(partition.slice_of_vertex[vertex])
                writer.spill(s, vertex, 0, float(delta))
            writer.commit(0)
        finally:
            writer.close()
        state = spec.initial_state(partition.graph)
        zeros = dict(processed=0, rounds=0, spilled=0, consumed=0)
        for s in range(partition.num_slices):
            self._publish_shard(s, -1, state, zeros)
        self._publish_cursor(0, done=not seeds)

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------
    def _assemble_state(self) -> np.ndarray:
        state = self.spec.initial_state(self.partition.graph)
        for s in range(self.partition.num_slices):
            shard = self._read_shard(s)
            state[self.partition.slices[s].vertices] = shard.values
        return state

    def _prev_totals(self, k: int) -> Dict[str, int]:
        """Cumulative counters as of step ``k - 1`` (the newest shard)."""
        if k == 0:
            return dict(processed=0, rounds=0, spilled=0, consumed=0)
        shard = self._read_shard((k - 1) % self.partition.num_slices)
        if shard.step != k - 1:
            raise CheckpointCorruptError(
                f"{self._shard_path(shard.slice_index)}: expected the "
                f"step-{k - 1} shard but found step {shard.step}",
                path=str(self._shard_path(shard.slice_index)),
            )
        return dict(
            processed=shard.processed,
            rounds=shard.rounds,
            spilled=shard.spilled,
            consumed=shard.consumed,
        )

    def _execute_step(self, k: int, lease) -> bool:
        """Run step ``k`` under a held lease; True if the cursor moved."""
        partition, spec = self.partition, self.spec
        num_slices = partition.num_slices
        s = k % num_slices
        cursor = self._read_cursor()
        if cursor is None or cursor["done"] or cursor["step"] != k:
            return False  # a peer finished the step between read and claim
        self._maybe_kill(k, "pre")

        scan = self._transport.scan(num_slices, None, spec.reduce)
        commit = scan.last_commit if scan.last_commit is not None else -1
        redo = False
        if commit == k + 1:
            shard = self._read_shard(s)
            if shard.step == k:
                # journal and shard are durable; only the cursor is
                # missing.  Publish it — no re-execution, the shard
                # already carries the post-step counters.
                done = not any(scan.buffers)
                self._check_fence(lease)
                self._publish_cursor(k + 1, done)
                return True
            if shard.step > k:
                raise CheckpointCorruptError(
                    f"{self._shard_path(s)}: shard step {shard.step} is "
                    f"ahead of the cursor step {k}",
                    path=str(self._shard_path(s)),
                )
            # journal committed but the shard publish was lost: redo the
            # step deterministically with journaling suppressed.
            redo = True
            buffers = self._transport.scan(
                num_slices, k, spec.reduce
            ).buffers
        elif commit == k:
            if scan.tail_bytes:
                # torn tail from a host killed mid-append
                self._transport.truncate(scan.offset)
            buffers = scan.buffers
        else:
            raise CheckpointCorruptError(
                f"{self.hosts_dir / JOURNAL_FILENAME}: journal commit "
                f"{commit} inconsistent with cursor step {k} (expected "
                f"{k} or {k + 1})",
                path=str(self.hosts_dir / JOURNAL_FILENAME),
                commit=commit,
                step=k,
            )

        state = self._assemble_state()
        totals = self._prev_totals(k)
        # rebuild the live spill buffers (absorption order == journal
        # append order == dict insertion order)
        spill: List[Dict[int, Event]] = [
            {
                v: Event(vertex=v, delta=delta, generation=generation)
                for v, (delta, generation) in bucket.items()
            }
            for bucket in buffers
        ]
        inbound = list(spill[s].values())
        spill[s] = {}

        writer = None
        if not redo:
            writer = self._transport.open_append(num_slices)
        processed = rounds = spilled = 0
        try:
            if inbound:
                if writer is not None:
                    writer.consume(s)

                def emit(target: int, event: Event) -> None:
                    bucket = spill[target]
                    existing = bucket.get(event.vertex)
                    bucket[event.vertex] = (
                        existing.coalesced_with(event, spec.reduce)
                        if existing is not None
                        else event
                    )
                    if writer is not None:
                        writer.spill(
                            target, event.vertex, event.generation, event.delta
                        )

                processed, rounds, spilled = run_slice_activation(
                    partition,
                    spec,
                    k // num_slices,
                    s,
                    inbound,
                    state,
                    TrafficCounters(),
                    emit,
                    num_bins=self.num_bins,
                    block_size=self.block_size,
                    rounds_per_activation=self.rounds_per_activation,
                )
            if writer is not None:
                self._check_fence(lease)
                writer.commit(k + 1)
        finally:
            if writer is not None:
                writer.close()
        self._maybe_kill(k, "journal")

        totals = dict(
            processed=totals["processed"] + processed,
            rounds=totals["rounds"] + rounds,
            spilled=totals["spilled"] + spilled,
            consumed=totals["consumed"] + len(inbound),
        )
        self._check_fence(lease)
        self._publish_shard(s, k, state, totals)
        self._maybe_kill(k, "shard")
        done = not any(spill)
        self._check_fence(lease)
        self._publish_cursor(k + 1, done)
        return True

    # ------------------------------------------------------------------
    def run(self) -> HostSlicedResult:
        self._ensure_seeded()
        num_slices = self.partition.num_slices
        steps_executed = 0
        takeovers = 0
        while True:
            cursor = self._read_cursor()
            if cursor is None:
                time.sleep(self.poll_interval)
                continue
            if cursor["done"]:
                break
            k = cursor["step"]
            if k // num_slices >= self.max_passes:
                raise NonConvergenceError(
                    f"{self.spec.name} did not converge within "
                    f"{self.max_passes} slice passes "
                    f"({k} cross-host steps)"
                )
            claim = self._claim(k % num_slices)
            if claim is None:
                # a live peer owns the step; wait for the cursor to move
                time.sleep(self.poll_interval)
                continue
            lease, fenced_stale = claim
            if fenced_stale:
                takeovers += 1
            stop, thread = self._heartbeat(lease)
            try:
                if self._execute_step(k, lease):
                    steps_executed += 1
            except _Fenced:
                # a peer fenced our epoch mid-step; its redo owns the
                # publishes from here on
                continue
            finally:
                stop.set()
                thread.join()
                lease.release()
        return self._finalize(steps_executed, takeovers)

    def _finalize(
        self, steps_executed: int, takeovers: int
    ) -> HostSlicedResult:
        cursor = self._read_cursor()
        steps_total = int(cursor["step"]) if cursor else 0
        values = self._assemble_state()
        totals = self._prev_totals(steps_total)
        passes = (
            (steps_total - 1) // self.partition.num_slices + 1
            if steps_total > 0
            else 0
        )
        return HostSlicedResult(
            values=values,
            converged=True,
            num_passes=passes,
            total_rounds=totals["rounds"],
            events_processed=totals["processed"],
            events_spilled=totals["spilled"],
            events_consumed=totals["consumed"],
            steps_total=steps_total,
            steps_executed=steps_executed,
            takeovers=takeovers,
            host=self.host_id,
            num_slices=self.partition.num_slices,
        )
