"""In-place coalescing event queue (paper Section IV-B/IV-D).

The queue is the centerpiece of GraphPulse.  It is organised as a group
of *bins*, each structured like a direct-mapped cache: one storage slot
per vertex, so at most one in-flight event per vertex ever exists.
Inserting an event whose slot is occupied *coalesces* the two payloads
with the algorithm's reduce operator instead of growing the queue —
"compressing the storage of events destined to the same vertex".

Vertex→slot mapping.  The paper maps a *block* of vertices adjacent in
graph memory to adjacent slots of the same bin (blocks of 128 in
Section V, enabling accurate prefetch), while consecutive blocks spread
over different bins (so graph clusters don't overload one bin):

    block(v) = v // block_size
    bin(v)   = block(v) % num_bins
    slot     = within-block offset + (block(v) // num_bins) * block_size

Draining a bin therefore yields events sorted by vertex id in blocks of
spatially-adjacent vertices — the property the scheduler and prefetcher
exploit ("when events from a bin are scheduled, the set of vertices
activated over a short period of time are closely placed in memory").

This class models the queue's *semantics and occupancy*; the cycle-level
wrapper in :mod:`repro.core.accelerator` adds the 4-stage coalescer
pipeline timing, row-port conflicts and drain bandwidth on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..errors import QueueCapacityError
from ..obs import metrics as obs_metrics
from ..obs import probe
from ..obs import trace as obs_trace
from .event import Event

__all__ = ["CoalescingQueue", "QueueStats", "VertexBinMap"]


@dataclass
class QueueStats:
    """Counters used by the Figure 4 experiment and capacity planning."""

    inserted: int = 0  #: events pushed into the queue (pre-coalescing)
    coalesced: int = 0  #: insertions absorbed into an existing event
    drained: int = 0  #: events handed to the scheduler
    peak_occupancy: int = 0  #: max simultaneous unique events
    discarded: int = 0  #: payloads rejected by the parity check at drain

    @property
    def coalesce_rate(self) -> float:
        """Fraction of insertions eliminated by coalescing."""
        return self.coalesced / self.inserted if self.inserted else 0.0


class VertexBinMap:
    """Pure mapping from vertex ids to (bin, slot) pairs."""

    def __init__(self, num_vertices: int, num_bins: int, block_size: int):
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.num_vertices = num_vertices
        self.num_bins = num_bins
        self.block_size = block_size

    def bin_of(self, vertex: int) -> int:
        return (vertex // self.block_size) % self.num_bins

    def slot_of(self, vertex: int) -> int:
        block = vertex // self.block_size
        return (block // self.num_bins) * self.block_size + (
            vertex % self.block_size
        )

    def vertices_of_bin(self, bin_index: int) -> Iterator[int]:
        """All vertices mapped to a bin, in slot (sweep) order."""
        block = bin_index
        while block * self.block_size < self.num_vertices:
            start = block * self.block_size
            stop = min(start + self.block_size, self.num_vertices)
            yield from range(start, stop)
            block += self.num_bins


class CoalescingQueue:
    """Binned, direct-mapped, in-place coalescing event store."""

    def __init__(
        self,
        num_vertices: int,
        reduce_fn: Callable[[float, float], float],
        *,
        num_bins: int = 64,
        block_size: int = 128,
        capacity_vertices: Optional[int] = None,
    ):
        """
        Parameters
        ----------
        num_vertices:
            Size of the vertex space the queue must cover.
        reduce_fn:
            The algorithm's reduce operator, used to coalesce payloads.
        num_bins:
            Number of collector bins (64 in the paper's 64MB queue; the
            Figure 8 experiment uses 256).
        block_size:
            Vertices per spatial block (128 in Section V).
        capacity_vertices:
            Maximum vertex ids representable — the direct-mapped storage
            limit that forces slicing for large graphs (Section IV-F).
            Defaults to unlimited (functional modelling).
        """
        if capacity_vertices is not None and num_vertices > capacity_vertices:
            raise QueueCapacityError(num_vertices, capacity_vertices)
        self.mapping = VertexBinMap(num_vertices, num_bins, block_size)
        self.reduce_fn = reduce_fn
        # slot -> pending entries; normally one per vertex (coalesced),
        # transiently more when an insertion lands while a drain sweep
        # passes (the entries merge at the next drain).
        self._bins: List[Dict[int, List[Event]]] = [
            dict() for _ in range(num_bins)
        ]
        self._size = 0
        self.stats = QueueStats()
        #: optional bin-SRAM parity check applied per stored entry when a
        #: drain sweep reads it, *before* coalescing (a corrupted payload
        #: must not be laundered into a merged event).  Returning False
        #: discards the entry.  Installed by the resilience harness.
        self.payload_check: Optional[Callable[[Event], bool]] = None

    # ------------------------------------------------------------------
    @property
    def num_bins(self) -> int:
        return self.mapping.num_bins

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    @property
    def occupancy(self) -> int:
        """Unique vertices with pending events (watchdog diagnostics)."""
        return self._size

    def bin_occupancy(self, bin_index: int) -> int:
        return len(self._bins[bin_index])

    def insert(self, event: Event) -> bool:
        """Insert an event, coalescing in place.

        Returns True when the event coalesced into an occupied slot (no
        occupancy growth), False when it claimed an empty slot.  The
        merge itself is performed lazily at drain time so that the
        cycle-level model can split a slot's contents by insertion
        completion time (an insertion racing a drain sweep lands *after*
        the sweep and waits for the next round).
        """
        self.stats.inserted += 1
        if obs_metrics.ACTIVE is not None:
            obs_metrics.ACTIVE.counter("queue.inserted").inc()
        bin_index = self.mapping.bin_of(event.vertex)
        bucket = self._bins[bin_index]
        entries = bucket.get(event.vertex)
        if entries is not None:
            entries.append(event)
            self.stats.coalesced += 1
            if obs_metrics.ACTIVE is not None:
                obs_metrics.ACTIVE.counter("queue.coalesced").inc()
            if obs_trace.ACTIVE is not None:
                probe.queue_insert(event.vertex, bin_index, event.ready, True)
            return True
        bucket[event.vertex] = [event]
        self._size += 1
        if self._size > self.stats.peak_occupancy:
            self.stats.peak_occupancy = self._size
        if obs_trace.ACTIVE is not None:
            probe.queue_insert(event.vertex, bin_index, event.ready, False)
        return False

    def _merge(self, entries: List[Event]) -> Event:
        merged = entries[0]
        for entry in entries[1:]:
            merged = merged.coalesced_with(entry, self.reduce_fn)
        return merged

    def peek_bin(self, bin_index: int) -> List[Event]:
        """Coalesced events of a bin, in sweep (slot) order, not removed."""
        bucket = self._bins[bin_index]
        return [
            self._merge(bucket[v])
            for v in sorted(bucket, key=self.mapping.slot_of)
        ]

    def drain_bin(
        self, bin_index: int, before: Optional[int] = None
    ) -> List[Event]:
        """Remove and return a bin's events in sweep order.

        Models the row-sweep removal: "a full row is read in each cycle
        and the events are placed in an output buffer", bins visited
        round-robin.  Because slots coalesce, at most one event per
        vertex is ever returned per drain — the guarantee that makes
        vertex updates atomic without locks.

        When ``before`` is given (cycle-level model), only contributions
        whose insertion completed by that cycle are taken; a
        contribution still in flight when the sweep passes stays in the
        slot and is picked up next round, matching the hardware race
        semantics ("insertion to the same bin is stalled in the cycles
        in which a removal operation is active").
        """
        bucket = self._bins[bin_index]
        events: List[Event] = []
        for vertex in sorted(bucket, key=self.mapping.slot_of):
            entries = bucket[vertex]
            if before is None:
                taken, left = entries, []
            else:
                taken = [e for e in entries if e.ready <= before]
                left = [e for e in entries if e.ready > before]
            if taken and self.payload_check is not None:
                # the parity read happens as the sweep lifts each stored
                # entry, before coalescing can launder a corrupted payload
                kept = [e for e in taken if self.payload_check(e)]
                self.stats.discarded += len(taken) - len(kept)
                taken = kept
                if not taken and not left:
                    del bucket[vertex]
                    self._size -= 1
                    continue
            if not taken:
                continue
            events.append(self._merge(taken))
            if left:
                bucket[vertex] = left
            else:
                del bucket[vertex]
                self._size -= 1
        self.stats.drained += len(events)
        if obs_metrics.ACTIVE is not None and events:
            obs_metrics.ACTIVE.counter("queue.drained").inc(len(events))
        return events

    def drain_all(self) -> List[Event]:
        """Drain every bin in order (used when swapping slices out)."""
        out: List[Event] = []
        for b in range(self.num_bins):
            out.extend(self.drain_bin(b))
        return out

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    @staticmethod
    def _copy_event(event: Event) -> Event:
        copy = Event(
            vertex=event.vertex,
            delta=event.delta,
            generation=event.generation,
            ready=event.ready,
        )
        # preserve the parity tag: a corrupted payload captured in a
        # checkpoint must still fail parity after a rollback
        if getattr(event, "_parity_bad", False):
            copy._parity_bad = True  # type: ignore[attr-defined]
        return copy

    def snapshot(self) -> List[List[Event]]:
        """Deep copy of the *raw* slot contents (un-merged entries).

        Raw entries — not the coalesced :meth:`peek_bin` view — so that
        per-entry metadata (parity tags, readiness) survives a
        checkpoint/rollback round trip.
        """
        return [
            [self._copy_event(e) for e in bucket[vertex]]
            for bucket in self._bins
            for vertex in sorted(bucket, key=self.mapping.slot_of)
        ]

    def clear(self) -> None:
        """Drop all pending events (occupancy returns to zero)."""
        for bucket in self._bins:
            bucket.clear()
        self._size = 0

    def restore(self, snapshot: List[List[Event]]) -> None:
        """Replace the queue contents with a :meth:`snapshot`.

        The snapshot itself is copied again so it can be restored more
        than once.  Statistics keep accumulating across the rollback
        (the work done before the rollback really happened).
        """
        self.clear()
        for entries in snapshot:
            bucket = self._bins[self.mapping.bin_of(entries[0].vertex)]
            bucket[entries[0].vertex] = [self._copy_event(e) for e in entries]
            self._size += 1
        if self._size > self.stats.peak_occupancy:
            self.stats.peak_occupancy = self._size

    def __iter__(self) -> Iterator[Event]:
        for b in range(self.num_bins):
            yield from self.peek_bin(b)
