"""Bit-level model of one coalescing-queue bin (paper Section IV-D).

The higher-level :class:`repro.core.queue.CoalescingQueue` models the
queue's *semantics*; this module models one bin's *storage organisation*
exactly as Figure 6 describes it:

- the bin is a direct-mapped RAM split into **rows** and **columns**;
  "only one vertex ID maps to a bin-row-column tuple so that there is no
  collision" and "vertex ID isn't stored since the events are direct
  mapped";
- "the number of rows is based on the on-chip RAM block granularity
  (usually 4096)" and rows are wide, "so that many events can be read in
  one cycle" during a drain sweep;
- a per-row **occupancy bit-vector** with a priority encoder "gives fast
  look-up capability of occupied rows during sweeping", skipping empty
  rows;
- insertion reads the mapped slot, runs the 4-stage combiner pipeline,
  and writes back; "when insertions contend for the same row, the later
  events are stalled until the first event is written";
- "insertion to the same bin is stalled in the cycles in which a removal
  operation is active".

The model tracks those row-port conflicts and sweep costs cycle by
cycle, providing the microarchitectural statistics (row conflicts,
sweep efficiency, occupancy) that size the design — and it lets tests
verify the capacity arithmetic behind
``GraphPulseConfig.queue_capacity_events``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs import probe
from ..obs import trace as obs_trace
from ..sim.stats import StatSet

__all__ = ["BinStorage", "BinGeometry"]


@dataclass(frozen=True)
class BinGeometry:
    """Shape of one bin's RAM block (Figure 6a)."""

    num_rows: int = 4096
    num_columns: int = 16
    #: combiner pipeline depth (read + 4-stage FPA + write)
    coalescer_latency: int = 4

    @property
    def capacity(self) -> int:
        return self.num_rows * self.num_columns

    def locate(self, slot: int) -> Tuple[int, int]:
        """Map a bin-local slot id to its (row, column)."""
        if not 0 <= slot < self.capacity:
            raise ValueError(
                f"slot {slot} outside bin capacity {self.capacity}"
            )
        return slot // self.num_columns, slot % self.num_columns


class BinStorage:
    """One direct-mapped bin with row-conflict and sweep timing."""

    def __init__(self, geometry: BinGeometry = BinGeometry(), name: str = "bin"):
        self.geometry = geometry
        self.name = name
        # payload storage; None = empty slot (the RAM plus its valid bit)
        self._payloads: List[Optional[float]] = [None] * geometry.capacity
        #: per-row occupancy counters backing the occupancy bit-vector
        self._row_counts = [0] * geometry.num_rows
        #: cycle until which each row's write port is busy (in-flight
        #: insertion write-back)
        self._row_busy_until = [0] * geometry.num_rows
        #: cycle until which the whole bin is locked by a removal sweep
        self._removal_until = 0
        self.stats = StatSet(name)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(self._row_counts)

    def occupied_rows(self) -> List[int]:
        """Indices of non-empty rows (the occupancy bit-vector's ones)."""
        return [r for r, count in enumerate(self._row_counts) if count]

    def payload(self, slot: int) -> Optional[float]:
        return self._payloads[slot]

    # ------------------------------------------------------------------
    def insert(
        self,
        slot: int,
        delta: float,
        at: int,
        reduce_fn,
    ) -> Tuple[int, bool]:
        """Insert one event payload at ``at``.

        Returns ``(write_back_cycle, coalesced)``.  The insertion stalls
        while a removal sweep is active and while an earlier insertion
        to the *same row* is still in flight (different rows pipeline
        freely through the combiner).
        """
        geometry = self.geometry
        row, __ = geometry.locate(slot)
        start = max(at, self._removal_until, self._row_busy_until[row])
        self.stats.add("insert_stall_cycles", start - at)
        if start > at and self._row_busy_until[row] > max(
            at, self._removal_until
        ):
            self.stats.add("row_conflicts")
            if obs_trace.ACTIVE is not None:
                probe.bin_row_conflict(
                    self.name, at, row=row, stall=start - at
                )

        existing = self._payloads[slot]
        coalesced = existing is not None
        if coalesced:
            self._payloads[slot] = reduce_fn(existing, delta)
            self.stats.add("coalesced")
        else:
            self._payloads[slot] = delta
            self._row_counts[row] += 1
        done = start + geometry.coalescer_latency
        self._row_busy_until[row] = done
        self.stats.add("inserted")
        return done, coalesced

    # ------------------------------------------------------------------
    def sweep(self, at: int) -> Tuple[List[Tuple[int, float]], int]:
        """Drain the whole bin starting at cycle ``at``.

        Reads one full row per cycle, visiting only occupied rows (the
        priority encoder skips empty ones).  Insertions are stalled for
        the duration.  Returns ``(drained slot/payload pairs,
        completion_cycle)``.
        """
        # wait for in-flight insertions to commit so the sweep reads
        # consistent rows
        start = max(
            [at] + [self._row_busy_until[r] for r in self.occupied_rows()]
        )
        drained: List[Tuple[int, float]] = []
        cycles = 0
        for row in self.occupied_rows():
            cycles += 1  # one wide-row read per cycle
            base = row * self.geometry.num_columns
            for column in range(self.geometry.num_columns):
                slot = base + column
                payload = self._payloads[slot]
                if payload is not None:
                    drained.append((slot, payload))
                    self._payloads[slot] = None
            self._row_counts[row] = 0
        done = start + cycles
        self._removal_until = done
        self.stats.add("sweeps")
        self.stats.add("sweep_cycles", cycles)
        self.stats.add("drained", len(drained))
        if obs_trace.ACTIVE is not None:
            probe.bin_sweep(
                self.name, start, done, drained=len(drained), rows=cycles
            )
        return drained, done

    # ------------------------------------------------------------------
    def sweep_efficiency(self) -> float:
        """Events drained per sweep cycle, normalized to row width.

        1.0 means every read row was completely full — the benefit of
        the occupancy bit-vector plus dense vertex blocks; low values
        indicate sparse rows ("towards the beginning or the end of an
        application, the queue is sparsely occupied").
        """
        cycles = self.stats.get("sweep_cycles")
        if not cycles:
            return 1.0
        return self.stats.get("drained") / (
            cycles * self.geometry.num_columns
        )
