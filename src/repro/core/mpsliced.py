"""Multi-process sliced execution: concurrent slice dispatch with
per-slice leases (crash isolation *and* wall-clock parallelism).

``SlicedGraphPulse`` drains slices one at a time inside a single
process; a stray segfault or OOM kill anywhere loses the whole run.
This module moves each slice's drain into its own **worker process**
while a supervisor keeps the parts of the algorithm that must be
centralized: pass barriers, spill-buffer ownership, the WAL, checkpoint
capture, and convergence detection.

Execution model
---------------
Workers are stateless between activations.  For each activation the
supervisor ships the slice's **state shard** (the vertex values of that
slice only) plus its inbound spill events; the worker drains the slice
with :func:`repro.core.slicing.run_slice_activation` and ships back the
updated shard together with the **ordered outbound spill stream**.

Under the default ``dispatch="barrier"`` schedule the pass's active set
is fixed at the pass boundary, which makes the slices of one pass
data-independent (each activation touches only its own shard) — so the
supervisor dispatches **all of them concurrently**, one outstanding
activation per worker, multiplexing replies with
:func:`multiprocessing.connection.wait`.  At the pass barrier it merges
the buffered outbound streams in deterministic **(slice-id,
emission-index)** order (:func:`repro.core.slicing.merge_outbound_streams`)
and replays them through the same coalesce-and-journal path the
sequential engine uses, so spill buffers, journal bytes and final
vertex state are bit-identical to sequential ``dispatch="barrier"``
execution no matter how the activations interleaved in wall time.

``dispatch="chained"`` keeps the historical Gauss-Seidel schedule
(slice ``k`` sees same-pass spills from slices ``< k``); it is
inherently serial, so there the process boundary buys crash isolation
only.

Crash recovery
--------------
Every worker holds a per-slice **lease file**
(:mod:`repro.resilience.lease`) in the durable run directory, refreshed
by a heartbeat thread.  When a worker dies mid-pass (SIGKILL included)
the supervisor observes the broken pipe, verifies the lease is stale,
and then:

1. rolls vertex state, spill buffers and traffic counters back to the
   pass-start snapshot;
2. rewinds the WAL to the last per-pass commit
   (:meth:`SpillJournal.discard_uncommitted` — mid-pass records never
   reached disk, so this is a buffer drop, not a disk rewrite);
3. on durable runs, replays the on-disk journal up to that commit and
   adopts the replayed buffers after cross-checking them bit-for-bit
   against the snapshot;
4. breaks the stale lease, re-leases the dead worker's slices to a
   fresh process (chaos hooks disabled, epoch bumped), drains any
   in-flight results surviving workers still owe from the aborted
   attempt (a per-attempt fence token makes them safe to discard), and
   retries the pass from slice 0.

The run completes without restarting, and the final values are
bit-identical to ``SlicedGraphPulse`` — asserted by the tests and the
CI chaos job.  Set ``REPRO_KILL_WORKER=SLICE:PASS`` to make the worker
owning ``SLICE`` SIGKILL itself when that activation starts.

Event-fault injection (drop/duplicate/bitflip/spill/dram scripts) is
rejected here: the injector's decision streams are cursor-stateful and
cannot be split across processes without changing the fault schedule.
Checkpointing, the watchdog, and durable resume all work.

Prefer constructing through :func:`repro.core.engines.build_engine`
(``name="sliced-mp"``).
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
from dataclasses import dataclass, field, fields as dataclass_fields
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..errors import ReproError, UnrecoverableFaultError
from ..graph.partition import Partition
from ..obs import metrics as obs_metrics
from ..obs import probe
from ..obs import trace as obs_trace
from ..resilience.lease import DEFAULT_LEASE_TIMEOUT
from ..resilience.substrate import build_substrate
from .event import Event
from .functional import TrafficCounters
from .slicing import (
    _SPILL_EVENT_BYTES,
    SliceActivation,
    SlicedGraphPulse,
    SlicedResult,
    merge_outbound_streams,
    run_slice_activation,
)

__all__ = [
    "MultiprocessSlicedGraphPulse",
    "MultiprocessSlicedResult",
    "KILL_WORKER_ENV",
]

#: chaos hook: ``SLICE:PASS`` — the worker owning SLICE SIGKILLs itself
#: when it starts that activation (respawned workers ignore it)
KILL_WORKER_ENV = "REPRO_KILL_WORKER"

#: seconds between worker heartbeat touches of its lease files
HEARTBEAT_INTERVAL = 0.2


@dataclass
class MultiprocessSlicedResult(SlicedResult):
    """A sliced result plus the worker fleet's crash ledger."""

    num_workers: int = 0
    #: worker deaths recovered via lease re-acquisition + WAL rewind
    recoveries: int = 0
    #: per-worker telemetry (one dict per worker, committed per pass):
    #: ``worker``, ``activations``, ``events_drained``, ``rounds``,
    #: ``barrier_wait_rounds`` (rounds other workers executed while this
    #: one sat at the sequential pass barrier — the engine-time analogue
    #: of barrier wait, kept off the wall clock for determinism),
    #: ``journal_replays`` and ``lease_recoveries``
    worker_stats: List[Dict[str, int]] = field(default_factory=list)
    #: peak number of simultaneously outstanding activations in any
    #: committed pass — ≥ 2 proves slices genuinely ran concurrently
    #: (deterministic: the initial burst is one activation per worker
    #: with work, so this equals the busiest pass's active worker count)
    max_inflight: int = 0


class _WorkerDied(Exception):
    """Internal: a worker process stopped responding mid-pass."""

    def __init__(
        self,
        worker_id: int,
        slice_index: int,
        reason: str,
        stragglers: Tuple[int, ...] = (),
    ):
        super().__init__(reason)
        self.worker_id = worker_id
        self.slice_index = slice_index
        self.reason = reason
        #: surviving workers that still owe a result from the aborted
        #: attempt; recovery must drain them before the retry sends
        self.stragglers = stragglers


@dataclass
class _WorkerHandle:
    worker_id: int
    process: object
    conn: object
    epoch: int
    owned: Tuple[int, ...]


def _parse_kill_spec(raw: Optional[str]) -> Optional[Tuple[int, int]]:
    """``"SLICE:PASS"`` -> (slice, pass); None when unset/malformed."""
    if not raw:
        return None
    try:
        slice_part, _, pass_part = raw.partition(":")
        return int(slice_part), int(pass_part or 0)
    except ValueError:
        return None


def _traffic_dict(traffic: TrafficCounters) -> Dict[str, int]:
    return {
        f.name: getattr(traffic, f.name)
        for f in dataclass_fields(TrafficCounters)
    }


def _merge_traffic(total: TrafficCounters, delta: Dict[str, int]) -> None:
    for name, value in delta.items():
        setattr(total, name, getattr(total, name) + value)


def _restore_traffic(total: TrafficCounters, snapshot: Dict[str, int]) -> None:
    for name, value in snapshot.items():
        setattr(total, name, value)


def _worker_main(
    worker_id: int,
    epoch: int,
    conn,
    partition: Partition,
    spec: AlgorithmSpec,
    owned_slices: Tuple[int, ...],
    lease_dir: str,
    options: Dict[str, object],
    chaos: Optional[Tuple[int, int]],
) -> None:
    """Worker process loop: lease, heartbeat, activate on request.

    Spawned via fork, so ``partition``/``spec`` arrive by inheritance
    (closures in ``AlgorithmSpec`` work unchanged).  The worker is
    stateless across activations: its scratch ``state`` array only ever
    has the active slice's shard written before a drain and read after.
    """
    # the parent's tracer must not leak into workers: spans are the
    # supervisor's to emit, per-worker, into the one merged trace
    if obs_trace.ACTIVE is not None:
        obs_trace.uninstall()
    try:
        lease_store = build_substrate().lease_store(lease_dir)
        leases = [
            lease_store.acquire(s, owner=f"worker-{worker_id}", epoch=epoch)
            for s in owned_slices
        ]
    except Exception as exc:
        conn.send(("error", epoch, worker_id, type(exc).__name__, str(exc)))
        conn.close()
        return

    stop = threading.Event()

    def heartbeat() -> None:
        while not stop.wait(HEARTBEAT_INTERVAL):
            for lease in leases:
                lease.refresh()

    threading.Thread(target=heartbeat, daemon=True).start()
    state = np.zeros(partition.graph.num_vertices, dtype=np.float64)
    conn.send(("ready", epoch, worker_id))
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            (
                _,
                task_epoch,
                attempt,
                pass_index,
                slice_index,
                shard,
                inbound,
            ) = message
            if chaos is not None and chaos == (slice_index, pass_index):
                os.kill(os.getpid(), signal.SIGKILL)
            vertices = partition.slices[slice_index].vertices
            # ``state`` is worker-private scratch that never leaves
            # this process; the (epoch, attempt) token rides the
            # message and is fence-checked by the supervisor when the
            # result returns  # repro: allow(CONC-001)
            state[vertices] = shard
            traffic = TrafficCounters()
            outbound: List[Tuple[int, Event]] = []
            processed, rounds, spilled = run_slice_activation(
                partition,
                spec,
                pass_index,
                slice_index,
                inbound,
                state,
                traffic,
                lambda target, event: outbound.append((target, event)),
                num_bins=options["num_bins"],
                block_size=options["block_size"],
                rounds_per_activation=options["rounds_per_activation"],
            )
            conn.send(
                (
                    "result",
                    task_epoch,
                    attempt,
                    pass_index,
                    slice_index,
                    state[vertices].copy(),
                    outbound,
                    processed,
                    rounds,
                    spilled,
                    _traffic_dict(traffic),
                )
            )
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # supervisor went away; release and exit
    finally:
        stop.set()
        for lease in leases:
            lease.release()
        conn.close()


class MultiprocessSlicedGraphPulse(SlicedGraphPulse):
    """Supervisor for the multi-process sliced runtime (module docs)."""

    ENGINE_NAME = "sliced-mp"

    def __init__(
        self,
        partition: Partition,
        spec: AlgorithmSpec,
        *,
        num_workers: int = 2,
        lease_dir=None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_recoveries: int = 8,
        **kwargs,
    ):
        """
        Parameters
        ----------
        num_workers:
            Worker process count; slice ``s`` is owned by worker
            ``s % num_workers``.  Must not exceed the slice count —
            a worker with no slices would idle for the whole run, so
            that is a configuration error, not something to clamp
            silently.
        lease_dir:
            Where lease files live.  Defaults to the durable run
            directory when checkpointing is on, else a scratch
            directory cleaned up after the run.
        lease_timeout:
            Heartbeat age beyond which a live-pid lease counts stale.
        max_recoveries:
            Worker-death budget; exceeding it raises
            :class:`repro.errors.UnrecoverableFaultError`.
        """
        super().__init__(partition, spec, **kwargs)
        if num_workers < 1:
            raise ReproError(f"num_workers must be >= 1, got {num_workers}")
        if int(num_workers) > partition.num_slices:
            raise ReproError(
                f"num_workers ({int(num_workers)}) exceeds the slice "
                f"count ({partition.num_slices}); every worker needs at "
                f"least one slice to own — lower --workers or raise "
                f"--num-slices"
            )
        self.num_workers = int(num_workers)
        self.lease_timeout = float(lease_timeout)
        self.max_recoveries = int(max_recoveries)
        self._attempt = 0
        self._lease_dir = None if lease_dir is None else Path(lease_dir)
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._epoch = 0
        self.recoveries = 0
        if self.resilience is not None:
            plan = self.resilience.config.fault_plan
            if plan.any_event_faults or plan.dead_lanes:
                raise ReproError(
                    "the sliced-mp engine does not support fault injection "
                    "(the injector's decision streams are single-process); "
                    "use --engine sliced for fault campaigns"
                )

    # -- worker fleet ---------------------------------------------------
    def _resolve_lease_dir(self) -> Path:
        if self._lease_dir is not None:
            self._lease_dir.mkdir(parents=True, exist_ok=True)
            return self._lease_dir
        if self.resilience is not None and self.resilience.durable is not None:
            return Path(self.resilience.durable.store.run_dir)
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-leases-")
        return Path(self._tempdir.name)

    def _sweep_stale_leases(self, lease_dir: Path) -> None:
        """Clear leases left by dead processes (e.g. a SIGKILLed run).

        A *fresh* lease means another live run owns this directory —
        that raises :class:`repro.errors.LeaseHeldError` instead of
        silently double-running.
        """
        store = build_substrate().lease_store(lease_dir)
        for slice_index in range(self.partition.num_slices):
            store.break_stale(slice_index, timeout=self.lease_timeout)

    def _spawn_worker(
        self,
        ctx,
        worker_id: int,
        lease_dir: Path,
        options: Dict[str, object],
        chaos: Optional[Tuple[int, int]],
    ) -> _WorkerHandle:
        owned = tuple(
            range(worker_id, self.partition.num_slices, self.num_workers)
        )
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._epoch,
                child_conn,
                self.partition,
                self.spec,
                owned,
                str(lease_dir),
                options,
                chaos,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            message = parent_conn.recv()
        except (EOFError, OSError) as exc:
            raise UnrecoverableFaultError(
                f"worker {worker_id} died during startup: {exc!r}",
                worker=worker_id,
            )
        if message[0] == "error":
            _, _, _, kind, text = message
            process.join(timeout=5.0)
            if kind == "LeaseHeldError":
                from ..errors import LeaseHeldError

                raise LeaseHeldError(text, worker=worker_id)
            raise UnrecoverableFaultError(
                f"worker {worker_id} failed to start: {text}",
                worker=worker_id,
            )
        return _WorkerHandle(worker_id, process, parent_conn, self._epoch, owned)

    def _shutdown(self, workers: List[Optional[_WorkerHandle]]) -> None:
        for handle in workers:
            if handle is None:
                continue
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass
            handle.conn.close()
        for handle in workers:
            if handle is None:
                continue
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)

    # -- dispatch -------------------------------------------------------
    def _dispatch(
        self,
        workers: List[Optional[_WorkerHandle]],
        pass_index: int,
        slice_index: int,
        inbound: List[Event],
        state: np.ndarray,
        traffic: TrafficCounters,
        spill: List[Dict[int, Event]],
    ) -> SliceActivation:
        """Run one activation on the owning worker; apply its results.

        The sequential path of the ``chained`` schedule: one activation
        outstanding in the whole fleet, results applied inline so the
        next slice sees them (the ``barrier`` schedule goes through
        :meth:`_run_pass_concurrent` instead).
        """
        worker_id = slice_index % self.num_workers
        handle = workers[worker_id]
        vertices = self.partition.slices[slice_index].vertices
        try:
            handle.conn.send(
                (
                    "activate",
                    handle.epoch,
                    self._attempt,
                    pass_index,
                    slice_index,
                    state[vertices].copy(),
                    inbound,
                )
            )
            message = handle.conn.recv()
        except Exception as exc:
            # After a SIGKILL the kernel closes the child's pipe ends
            # (we see EOF) before the child is reapable, so is_alive()
            # can transiently report True.  Join briefly to reap an
            # exiting child before deciding whether it died.
            handle.process.join(timeout=5.0)
            if not handle.process.is_alive():
                raise _WorkerDied(worker_id, slice_index, repr(exc)) from None
            raise
        if message[0] != "result":
            raise UnrecoverableFaultError(
                f"worker {worker_id} sent unexpected {message[0]!r}",
                worker=worker_id,
            )
        (
            _,
            epoch,
            reply_attempt,
            reply_pass,
            reply_slice,
            shard,
            outbound,
            processed,
            rounds,
            spilled,
            traffic_delta,
        ) = message
        if (epoch, reply_attempt, reply_pass, reply_slice) != (
            handle.epoch,
            self._attempt,
            pass_index,
            slice_index,
        ):
            raise UnrecoverableFaultError(
                f"worker {worker_id} replied out of order "
                f"(epoch {epoch}, attempt {reply_attempt}, "
                f"pass {reply_pass}, slice {reply_slice})",
                worker=worker_id,
            )
        state[vertices] = shard
        _merge_traffic(traffic, traffic_delta)
        # replay the ordered outbound stream through the exact
        # coalesce-and-journal path the sequential engine uses
        for target, event in outbound:
            self._absorb_spill(spill, target, event)
        if obs_trace.ACTIVE is not None:
            probe.slice_activation(
                slice_index,
                pass_index,
                events_in=len(inbound),
                events_processed=processed,
                events_spilled=spilled,
                rounds=rounds,
            )
            probe.worker_activation(
                worker_id,
                slice_index,
                pass_index,
                events_in=len(inbound),
                events_processed=processed,
                events_spilled=spilled,
                rounds=rounds,
                epoch=handle.epoch,
            )
        if obs_metrics.ACTIVE is not None:
            obs_metrics.ACTIVE.counter(
                "worker.events_drained", worker=worker_id
            ).inc(processed)
            obs_metrics.ACTIVE.counter(
                "worker.activations", worker=worker_id
            ).inc()
        return SliceActivation(
            pass_index=pass_index,
            slice_index=slice_index,
            events_in=len(inbound),
            events_processed=processed,
            events_spilled=spilled,
            rounds=rounds,
        )

    def _run_pass_concurrent(
        self,
        workers: List[Optional[_WorkerHandle]],
        pass_index: int,
        batch: List[Tuple[int, List[Event]]],
        state: np.ndarray,
    ) -> Tuple[Dict[int, tuple], int]:
        """Dispatch one barrier pass's activations across all workers.

        Every slice in ``batch`` (the pass-start active set) is queued
        on its owning worker; each worker holds **at most one
        outstanding activation** — the next is sent only after its
        result arrives, so a send never targets a busy worker and the
        pipe pair cannot fill in both directions at once.  Replies are
        multiplexed with :func:`multiprocessing.connection.wait`, so
        workers genuinely run their slices simultaneously.

        Nothing is applied here: results are buffered and returned as
        ``{slice_index: (worker_id, shard, outbound, processed, rounds,
        spilled, traffic_delta)}`` for the caller to merge at the
        barrier in deterministic slice order.  ``state`` is only *read*
        (pass-start shards), which is safe because barrier slices are
        disjoint and data-independent.

        Also returns the peak outstanding-activation count.  Results
        carrying a stale attempt token (stragglers of an aborted pass
        retry) are discarded without unblocking the slot — the real
        result follows on the same pipe.
        """
        queues: List[List[Tuple[int, List[Event]]]] = [
            [] for _ in range(self.num_workers)
        ]
        for slice_index, inbound in batch:
            queues[slice_index % self.num_workers].append(
                (slice_index, inbound)
            )
        attempt = self._attempt
        #: conn -> (worker_id, expected slice)
        outstanding: Dict[object, Tuple[int, int]] = {}
        results: Dict[int, tuple] = {}
        max_inflight = 0

        def straggler_ids(dead_worker: int) -> Tuple[int, ...]:
            return tuple(
                sorted(
                    wid
                    for wid, _ in outstanding.values()
                    if wid != dead_worker
                )
            )

        def send_next(worker_id: int) -> None:
            nonlocal max_inflight
            if not queues[worker_id]:
                return
            slice_index, inbound = queues[worker_id].pop(0)
            handle = workers[worker_id]
            vertices = self.partition.slices[slice_index].vertices
            try:
                handle.conn.send(
                    (
                        "activate",
                        handle.epoch,
                        attempt,
                        pass_index,
                        slice_index,
                        state[vertices].copy(),
                        inbound,
                    )
                )
            except Exception as exc:
                handle.process.join(timeout=5.0)
                if not handle.process.is_alive():
                    raise _WorkerDied(
                        worker_id,
                        slice_index,
                        repr(exc),
                        stragglers=straggler_ids(worker_id),
                    ) from None
                raise
            outstanding[handle.conn] = (worker_id, slice_index)
            max_inflight = max(max_inflight, len(outstanding))

        for worker_id in range(self.num_workers):
            send_next(worker_id)
        while outstanding:
            for conn in mp_connection.wait(list(outstanding)):
                worker_id, expected_slice = outstanding[conn]
                handle = workers[worker_id]
                try:
                    message = conn.recv()
                except Exception as exc:
                    handle.process.join(timeout=5.0)
                    if not handle.process.is_alive():
                        del outstanding[conn]
                        raise _WorkerDied(
                            worker_id,
                            expected_slice,
                            repr(exc),
                            stragglers=straggler_ids(worker_id),
                        ) from None
                    raise
                if message[0] != "result":
                    raise UnrecoverableFaultError(
                        f"worker {worker_id} sent unexpected "
                        f"{message[0]!r}",
                        worker=worker_id,
                    )
                (
                    _,
                    epoch,
                    reply_attempt,
                    reply_pass,
                    reply_slice,
                    shard,
                    outbound,
                    processed,
                    rounds,
                    spilled,
                    traffic_delta,
                ) = message
                if reply_attempt != attempt:
                    continue  # straggler of an aborted attempt
                if (epoch, reply_pass, reply_slice) != (
                    handle.epoch,
                    pass_index,
                    expected_slice,
                ):
                    raise UnrecoverableFaultError(
                        f"worker {worker_id} replied out of order "
                        f"(epoch {epoch}, attempt {reply_attempt}, "
                        f"pass {reply_pass}, slice {reply_slice})",
                        worker=worker_id,
                    )
                del outstanding[conn]
                results[reply_slice] = (
                    worker_id,
                    shard,
                    outbound,
                    processed,
                    rounds,
                    spilled,
                    traffic_delta,
                )
                send_next(worker_id)
        return results, max_inflight

    def _run_pass_barrier(
        self,
        workers: List[Optional[_WorkerHandle]],
        pass_index: int,
        state: np.ndarray,
        traffic: TrafficCounters,
        spill: List[Dict[int, Event]],
        activations: List[SliceActivation],
        pending: List[List[int]],
    ) -> Tuple[int, int, int]:
        """One barrier pass: concurrent dispatch, deterministic merge.

        Captures the pass-start active set, runs every activation
        concurrently (:meth:`_run_pass_concurrent`), then — at the
        barrier, in slice order — applies the returned shards, merges
        traffic, and replays the outbound streams in (slice-id,
        emission-index) order (:func:`merge_outbound_streams`) through
        the exact coalesce-and-journal path the sequential engine uses.
        Returns ``(pass_inflight, spill_bytes_read,
        spill_bytes_written)``; telemetry deltas go into ``pending``
        for the caller to commit only if the pass succeeds.
        """
        batch = self._collect_pass_inbound(spill)
        results, pass_inflight = self._run_pass_concurrent(
            workers, pass_index, batch, state
        )
        partition = self.partition
        streams: List[Tuple[int, List[Tuple[int, Event]]]] = []
        spill_read = 0
        spill_written = 0
        for slice_index, inbound in batch:
            (
                worker_id,
                shard,
                outbound,
                processed,
                rounds,
                spilled,
                traffic_delta,
            ) = results[slice_index]
            vertices = partition.slices[slice_index].vertices
            state[vertices] = shard
            _merge_traffic(traffic, traffic_delta)
            streams.append((slice_index, outbound))
            spill_read += len(inbound) * _SPILL_EVENT_BYTES
            spill_written += spilled * _SPILL_EVENT_BYTES
            activations.append(
                SliceActivation(
                    pass_index=pass_index,
                    slice_index=slice_index,
                    events_in=len(inbound),
                    events_processed=processed,
                    events_spilled=spilled,
                    rounds=rounds,
                )
            )
            slot = pending[worker_id]
            slot[0] += 1
            slot[1] += processed
            slot[2] += rounds
            if obs_trace.ACTIVE is not None:
                probe.slice_activation(
                    slice_index,
                    pass_index,
                    events_in=len(inbound),
                    events_processed=processed,
                    events_spilled=spilled,
                    rounds=rounds,
                )
                probe.worker_activation(
                    worker_id,
                    slice_index,
                    pass_index,
                    events_in=len(inbound),
                    events_processed=processed,
                    events_spilled=spilled,
                    rounds=rounds,
                    epoch=workers[worker_id].epoch,
                )
            if obs_metrics.ACTIVE is not None:
                obs_metrics.ACTIVE.counter(
                    "worker.events_drained", worker=worker_id
                ).inc(processed)
                obs_metrics.ACTIVE.counter(
                    "worker.activations", worker=worker_id
                ).inc()
        for target, event in merge_outbound_streams(streams):
            self._absorb_spill(spill, target, event)
        return pass_inflight, spill_read, spill_written

    # -- recovery -------------------------------------------------------
    def _replayed_spill_from_journal(
        self, pass_index: int
    ) -> Optional[List[Dict[int, Event]]]:
        """Rebuild spill buffers from the WAL's last per-pass commit.

        At the start of the pass with index ``P`` the journal's newest
        durable commit is always ``P`` (commit 0 covers the initial
        events; ``commit(P)`` sealed pass ``P - 1``; resume truncates at
        the restored commit), so recovery replays ``upto=P``.
        """
        if (
            self.resilience is None
            or self.resilience.durable is None
            or self._journal is None
        ):
            return None
        path = self.resilience.durable.store.journal_path
        transport = build_substrate().spill_transport(path)
        buffers, _ = transport.replay(
            self.partition.num_slices, pass_index, self.spec.reduce
        )
        return [
            {
                vertex: Event(
                    vertex=vertex, delta=delta, generation=generation
                )
                for vertex, (delta, generation) in bucket.items()
            }
            for bucket in buffers
        ]

    def _recover(
        self,
        death: _WorkerDied,
        workers: List[Optional[_WorkerHandle]],
        ctx,
        lease_dir: Path,
        options: Dict[str, object],
        state: np.ndarray,
        spill: List[Dict[int, Event]],
        snapshot_state: np.ndarray,
        snapshot_spill: List[Dict[int, Event]],
        snapshot_traffic: Dict[str, int],
        traffic: TrafficCounters,
        pass_index: int,
    ) -> None:
        """Re-lease a dead worker's slices and rewind to the pass start."""
        # 1. roll back to the pass-start snapshot
        state[:] = snapshot_state
        for i, snap in enumerate(snapshot_spill):
            spill[i] = dict(snap)
        _restore_traffic(traffic, snapshot_traffic)

        # 2. rewind the WAL to the last per-pass commit
        if self._journal is not None:
            self._journal.discard_uncommitted()

        # 3. durable runs: replay the on-disk journal up to that commit,
        #    cross-check against the snapshot, adopt the replayed buffers
        replayed = self._replayed_spill_from_journal(pass_index)
        if replayed is not None:
            self._check_replay_matches(replayed, spill, pass_index)
            for i, bucket in enumerate(replayed):
                spill[i] = bucket

        telemetry = getattr(self, "_telemetry", None)
        if telemetry is not None and replayed is not None:
            telemetry[death.worker_id]["journal_replays"] += 1

        # 4. break the stale leases and re-lease to a fresh worker
        self._respawn_worker(
            death.worker_id,
            death.slice_index,
            workers,
            ctx,
            lease_dir,
            options,
            pass_index,
        )

        # 5. absorb whatever surviving workers still owe from the
        #    aborted attempt so the retry starts with clean pipes
        self._drain_stragglers(
            death.stragglers, workers, ctx, lease_dir, options, pass_index
        )

    def _respawn_worker(
        self,
        worker_id: int,
        slice_index: int,
        workers: List[Optional[_WorkerHandle]],
        ctx,
        lease_dir: Path,
        options: Dict[str, object],
        pass_index: int,
    ) -> None:
        """Replace one dead worker: budget, lease break, epoch bump, spawn.

        The replacement gets chaos hooks disabled so an injected kill
        cannot re-trigger, and a bumped epoch so anything the dead
        incarnation left behind is fenced off.
        """
        self.recoveries += 1
        if self.recoveries > self.max_recoveries:
            raise UnrecoverableFaultError(
                f"worker death budget exhausted "
                f"({self.max_recoveries} recoveries)",
                worker=worker_id,
                slice=slice_index,
            )
        handle = workers[worker_id]
        handle.process.join(timeout=10.0)
        handle.conn.close()
        telemetry = getattr(self, "_telemetry", None)
        if telemetry is not None:
            telemetry[worker_id]["lease_recoveries"] += 1
        store = build_substrate().lease_store(lease_dir)
        for owned_slice in handle.owned:
            store.break_stale(owned_slice, timeout=self.lease_timeout)
        self._epoch += 1
        workers[worker_id] = self._spawn_worker(
            ctx, worker_id, lease_dir, options, chaos=None
        )
        if obs_trace.ACTIVE is not None:
            probe.recovery_span(
                "worker-relaunch",
                float(pass_index),
                float(pass_index),
                worker=worker_id,
                slice=slice_index,
                epoch=self._epoch,
            )

    def _drain_stragglers(
        self,
        stragglers: Tuple[int, ...],
        workers: List[Optional[_WorkerHandle]],
        ctx,
        lease_dir: Path,
        options: Dict[str, object],
        pass_index: int,
    ) -> None:
        """Absorb in-flight results survivors owe from an aborted pass.

        A straggler may still be computing its activation when the pass
        aborts; its result must be read before the retry sends it
        anything, otherwise both directions of the pipe pair could fill
        and deadlock.  The stale attempt token makes the drained result
        safe to discard.  A straggler found dead here is respawned the
        same way as the primary casualty — the one rollback already
        restored pass-start state, so no further rewind is needed.
        """
        for worker_id in stragglers:
            handle = workers[worker_id]
            try:
                if handle.conn.poll(timeout=60.0):
                    handle.conn.recv()
                    continue
                reason = "timed out waiting for the in-flight result"
            except (EOFError, OSError) as exc:
                reason = repr(exc)
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():
                raise UnrecoverableFaultError(
                    f"worker {worker_id} wedged after an aborted pass: "
                    f"{reason}",
                    worker=worker_id,
                )
            self._respawn_worker(
                worker_id,
                -1,
                workers,
                ctx,
                lease_dir,
                options,
                pass_index,
            )

    def _check_replay_matches(
        self,
        replayed: List[Dict[int, Event]],
        snapshot: List[Dict[int, Event]],
        pass_index: int,
    ) -> None:
        """The WAL and the in-memory snapshot must agree bit-for-bit."""
        import struct

        from ..errors import CheckpointCorruptError

        def bits(value: float) -> bytes:
            return struct.pack("<d", value)

        for slice_index, (disk, memory) in enumerate(zip(replayed, snapshot)):
            if set(disk) != set(memory):
                raise CheckpointCorruptError(
                    f"journal replay disagrees with the pass-{pass_index} "
                    f"snapshot on slice {slice_index}'s pending vertices",
                    slice=slice_index,
                    pass_index=pass_index,
                )
            for vertex, event in memory.items():
                other = disk[vertex]
                if (
                    bits(other.delta) != bits(event.delta)
                    or other.generation != event.generation
                ):
                    raise CheckpointCorruptError(
                        f"journal replay disagrees with the pass-"
                        f"{pass_index} snapshot on vertex {vertex} "
                        f"(slice {slice_index})",
                        slice=slice_index,
                        vertex=vertex,
                        pass_index=pass_index,
                    )

    # -- run ------------------------------------------------------------
    def run(self) -> MultiprocessSlicedResult:
        partition = self.partition
        state = self.state
        traffic = TrafficCounters()
        activations: List[SliceActivation] = []
        spill_written = 0
        spill_read = 0

        spill, view, watchdog = self._setup_run()
        lease_dir = self._resolve_lease_dir()
        self._sweep_stale_leases(lease_dir)
        chaos = _parse_kill_spec(os.environ.get(KILL_WORKER_ENV))
        options = {
            "num_bins": self.num_bins,
            "block_size": self.block_size,
            "rounds_per_activation": self.rounds_per_activation,
        }
        ctx = get_context("fork")
        workers: List[Optional[_WorkerHandle]] = [None] * self.num_workers
        # committed per-worker telemetry; pass-local deltas live in
        # ``pending`` below so a _WorkerDied rollback discards them for
        # free (recovery counters accumulate here unconditionally)
        telemetry: List[Dict[str, int]] = [
            {
                "worker": worker_id,
                "activations": 0,
                "events_drained": 0,
                "rounds": 0,
                "barrier_wait_rounds": 0,
                "journal_replays": 0,
                "lease_recoveries": 0,
            }
            for worker_id in range(self.num_workers)
        ]
        self._telemetry = telemetry

        pass_index = self._start_pass
        max_inflight = 0
        try:
            for worker_id in range(self.num_workers):
                workers[worker_id] = self._spawn_worker(
                    ctx, worker_id, lease_dir, options, chaos
                )
            while True:
                while any(spill):
                    verdict = watchdog.verdict()
                    if verdict is not None:
                        self._halt_nonconvergence(verdict, watchdog, view)
                    snapshot_state = state.copy()
                    snapshot_spill = [dict(bucket) for bucket in spill]
                    snapshot_traffic = _traffic_dict(traffic)
                    marks = (spill_read, spill_written, len(activations))
                    writes_before = traffic.vertex_writes
                    pass_processed = 0
                    pass_inflight = 0
                    # [activations, events_drained, rounds] per worker
                    pending = [[0, 0, 0] for _ in range(self.num_workers)]
                    # per-attempt fence: results stamped with an older
                    # token are stragglers of an aborted retry
                    self._attempt += 1
                    try:
                        if self.dispatch == "barrier":
                            (
                                pass_inflight,
                                pass_read,
                                pass_written,
                            ) = self._run_pass_barrier(
                                workers,
                                pass_index,
                                state,
                                traffic,
                                spill,
                                activations,
                                pending,
                            )
                            spill_read += pass_read
                            spill_written += pass_written
                            pass_processed = sum(
                                slot[1] for slot in pending
                            )
                        else:
                            for slice_index in range(partition.num_slices):
                                inbound = spill[slice_index]
                                if not inbound:
                                    continue
                                if self._journal is not None:
                                    self._journal.consume(slice_index)
                                spill[slice_index] = {}
                                spill_read += (
                                    len(inbound) * _SPILL_EVENT_BYTES
                                )
                                activation = self._dispatch(
                                    workers,
                                    pass_index,
                                    slice_index,
                                    list(inbound.values()),
                                    state,
                                    traffic,
                                    spill,
                                )
                                spill_written += (
                                    activation.events_spilled
                                    * _SPILL_EVENT_BYTES
                                )
                                activations.append(activation)
                                pass_processed += (
                                    activation.events_processed
                                )
                                pass_inflight = 1
                                slot = pending[
                                    slice_index % self.num_workers
                                ]
                                slot[0] += 1
                                slot[1] += activation.events_processed
                                slot[2] += activation.rounds
                    except _WorkerDied as death:
                        spill_read, spill_written = marks[0], marks[1]
                        del activations[marks[2] :]
                        self._recover(
                            death,
                            workers,
                            ctx,
                            lease_dir,
                            options,
                            state,
                            spill,
                            snapshot_state,
                            snapshot_spill,
                            snapshot_traffic,
                            traffic,
                            pass_index,
                        )
                        continue  # retry the pass from slice 0
                    max_inflight = max(max_inflight, pass_inflight)
                    pass_rounds = sum(slot[2] for slot in pending)
                    for worker_id, slot in enumerate(pending):
                        entry = telemetry[worker_id]
                        entry["activations"] += slot[0]
                        entry["events_drained"] += slot[1]
                        entry["rounds"] += slot[2]
                        entry["barrier_wait_rounds"] += pass_rounds - slot[2]
                    if obs_metrics.ACTIVE is not None:
                        obs_metrics.round_tick(
                            "sliced-mp",
                            pass_index,
                            events_processed=pass_processed,
                        )
                    watchdog.observe_round(
                        pass_processed, traffic.vertex_writes - writes_before
                    )
                    pass_index += 1
                    if self._journal is not None:
                        self._journal.commit(pass_index)
                    if self.resilience is not None:
                        self.resilience.maybe_checkpoint(
                            pass_index, float(pass_index), state, view
                        )
                if self.resilience is None:
                    break
                self.resilience.note_quiescence(float(pass_index))
                if not self.resilience.repair(
                    state,
                    float(pass_index),
                    inject=self._inject_repair,
                    restore=self._restore_checkpoint,
                ):
                    break
        finally:
            self._shutdown(workers)
            if self._journal is not None:
                self._journal.close()
            if self._tempdir is not None:
                self._tempdir.cleanup()
                self._tempdir = None

        summary = None
        if self.resilience is not None:
            self.resilience.finalize(float(pass_index))
            summary = self.resilience.summary()
        return MultiprocessSlicedResult(
            values=state,
            activations=activations,
            traffic=traffic,
            spill_bytes_written=spill_written,
            spill_bytes_read=spill_read,
            converged=True,
            resilience=summary,
            num_workers=self.num_workers,
            recoveries=self.recoveries,
            worker_stats=telemetry,
            max_inflight=max_inflight,
        )
