"""Multi-process sliced execution with per-slice leases (crash isolation).

``SlicedGraphPulse`` drains slices one at a time inside a single
process; a stray segfault or OOM kill anywhere loses the whole run.
This module moves each slice's drain into its own **worker process**
while a supervisor keeps the parts of the algorithm that must be
centralized: pass barriers, spill-buffer ownership, the WAL, checkpoint
capture, and convergence detection.

Execution model
---------------
Workers are stateless between activations.  For each activation the
supervisor ships the slice's **state shard** (the vertex values of that
slice only) plus its inbound spill events; the worker drains the slice
with :func:`repro.core.slicing.run_slice_activation` and ships back the
updated shard together with the **ordered outbound spill stream**.  The
supervisor replays that stream through the same coalesce-and-journal
path the sequential engine uses, so spill buffers, journal bytes and
final vertex state are bit-identical to a sequential run.  Dispatch is
sequential in slice order — intra-pass chaining (slice ``k`` sees
spills from slices ``< k`` of the same pass) is part of the sequential
schedule, so what the process boundary buys is *crash isolation*, not
wall-clock speedup.

Crash recovery
--------------
Every worker holds a per-slice **lease file**
(:mod:`repro.resilience.lease`) in the durable run directory, refreshed
by a heartbeat thread.  When a worker dies mid-pass (SIGKILL included)
the supervisor observes the broken pipe, verifies the lease is stale,
and then:

1. rolls vertex state, spill buffers and traffic counters back to the
   pass-start snapshot;
2. rewinds the WAL to the last per-pass commit
   (:meth:`SpillJournal.discard_uncommitted` — mid-pass records never
   reached disk, so this is a buffer drop, not a disk rewrite);
3. on durable runs, replays the on-disk journal up to that commit and
   adopts the replayed buffers after cross-checking them bit-for-bit
   against the snapshot;
4. breaks the stale lease, re-leases the dead worker's slices to a
   fresh process (chaos hooks disabled, epoch bumped), and retries the
   pass from slice 0.

The run completes without restarting, and the final values are
bit-identical to ``SlicedGraphPulse`` — asserted by the tests and the
CI chaos job.  Set ``REPRO_KILL_WORKER=SLICE:PASS`` to make the worker
owning ``SLICE`` SIGKILL itself when that activation starts.

Event-fault injection (drop/duplicate/bitflip/spill/dram scripts) is
rejected here: the injector's decision streams are cursor-stateful and
cannot be split across processes without changing the fault schedule.
Checkpointing, the watchdog, and durable resume all work.

Prefer constructing through :func:`repro.core.engines.build_engine`
(``name="sliced-mp"``).
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
from dataclasses import dataclass, field, fields as dataclass_fields
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..errors import ReproError, UnrecoverableFaultError
from ..graph.partition import Partition
from ..obs import metrics as obs_metrics
from ..obs import probe
from ..obs import trace as obs_trace
from ..resilience.lease import DEFAULT_LEASE_TIMEOUT
from ..resilience.substrate import build_substrate
from .event import Event
from .functional import TrafficCounters
from .slicing import (
    _SPILL_EVENT_BYTES,
    SliceActivation,
    SlicedGraphPulse,
    SlicedResult,
    run_slice_activation,
)

__all__ = [
    "MultiprocessSlicedGraphPulse",
    "MultiprocessSlicedResult",
    "KILL_WORKER_ENV",
]

#: chaos hook: ``SLICE:PASS`` — the worker owning SLICE SIGKILLs itself
#: when it starts that activation (respawned workers ignore it)
KILL_WORKER_ENV = "REPRO_KILL_WORKER"

#: seconds between worker heartbeat touches of its lease files
HEARTBEAT_INTERVAL = 0.2


@dataclass
class MultiprocessSlicedResult(SlicedResult):
    """A sliced result plus the worker fleet's crash ledger."""

    num_workers: int = 0
    #: worker deaths recovered via lease re-acquisition + WAL rewind
    recoveries: int = 0
    #: per-worker telemetry (one dict per worker, committed per pass):
    #: ``worker``, ``activations``, ``events_drained``, ``rounds``,
    #: ``barrier_wait_rounds`` (rounds other workers executed while this
    #: one sat at the sequential pass barrier — the engine-time analogue
    #: of barrier wait, kept off the wall clock for determinism),
    #: ``journal_replays`` and ``lease_recoveries``
    worker_stats: List[Dict[str, int]] = field(default_factory=list)


class _WorkerDied(Exception):
    """Internal: a worker process stopped responding mid-pass."""

    def __init__(self, worker_id: int, slice_index: int, reason: str):
        super().__init__(reason)
        self.worker_id = worker_id
        self.slice_index = slice_index
        self.reason = reason


@dataclass
class _WorkerHandle:
    worker_id: int
    process: object
    conn: object
    epoch: int
    owned: Tuple[int, ...]


def _parse_kill_spec(raw: Optional[str]) -> Optional[Tuple[int, int]]:
    """``"SLICE:PASS"`` -> (slice, pass); None when unset/malformed."""
    if not raw:
        return None
    try:
        slice_part, _, pass_part = raw.partition(":")
        return int(slice_part), int(pass_part or 0)
    except ValueError:
        return None


def _traffic_dict(traffic: TrafficCounters) -> Dict[str, int]:
    return {
        f.name: getattr(traffic, f.name)
        for f in dataclass_fields(TrafficCounters)
    }


def _merge_traffic(total: TrafficCounters, delta: Dict[str, int]) -> None:
    for name, value in delta.items():
        setattr(total, name, getattr(total, name) + value)


def _restore_traffic(total: TrafficCounters, snapshot: Dict[str, int]) -> None:
    for name, value in snapshot.items():
        setattr(total, name, value)


def _worker_main(
    worker_id: int,
    epoch: int,
    conn,
    partition: Partition,
    spec: AlgorithmSpec,
    owned_slices: Tuple[int, ...],
    lease_dir: str,
    options: Dict[str, object],
    chaos: Optional[Tuple[int, int]],
) -> None:
    """Worker process loop: lease, heartbeat, activate on request.

    Spawned via fork, so ``partition``/``spec`` arrive by inheritance
    (closures in ``AlgorithmSpec`` work unchanged).  The worker is
    stateless across activations: its scratch ``state`` array only ever
    has the active slice's shard written before a drain and read after.
    """
    # the parent's tracer must not leak into workers: spans are the
    # supervisor's to emit, per-worker, into the one merged trace
    if obs_trace.ACTIVE is not None:
        obs_trace.uninstall()
    try:
        lease_store = build_substrate().lease_store(lease_dir)
        leases = [
            lease_store.acquire(s, owner=f"worker-{worker_id}", epoch=epoch)
            for s in owned_slices
        ]
    except Exception as exc:
        conn.send(("error", epoch, worker_id, type(exc).__name__, str(exc)))
        conn.close()
        return

    stop = threading.Event()

    def heartbeat() -> None:
        while not stop.wait(HEARTBEAT_INTERVAL):
            for lease in leases:
                lease.refresh()

    threading.Thread(target=heartbeat, daemon=True).start()
    state = np.zeros(partition.graph.num_vertices, dtype=np.float64)
    conn.send(("ready", epoch, worker_id))
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            (_, task_epoch, pass_index, slice_index, shard, inbound) = message
            if chaos is not None and chaos == (slice_index, pass_index):
                os.kill(os.getpid(), signal.SIGKILL)
            vertices = partition.slices[slice_index].vertices
            state[vertices] = shard
            traffic = TrafficCounters()
            outbound: List[Tuple[int, Event]] = []
            processed, rounds, spilled = run_slice_activation(
                partition,
                spec,
                pass_index,
                slice_index,
                inbound,
                state,
                traffic,
                lambda target, event: outbound.append((target, event)),
                num_bins=options["num_bins"],
                block_size=options["block_size"],
                rounds_per_activation=options["rounds_per_activation"],
            )
            conn.send(
                (
                    "result",
                    task_epoch,
                    pass_index,
                    slice_index,
                    state[vertices].copy(),
                    outbound,
                    processed,
                    rounds,
                    spilled,
                    _traffic_dict(traffic),
                )
            )
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # supervisor went away; release and exit
    finally:
        stop.set()
        for lease in leases:
            lease.release()
        conn.close()


class MultiprocessSlicedGraphPulse(SlicedGraphPulse):
    """Supervisor for the multi-process sliced runtime (module docs)."""

    ENGINE_NAME = "sliced-mp"

    def __init__(
        self,
        partition: Partition,
        spec: AlgorithmSpec,
        *,
        num_workers: int = 2,
        lease_dir=None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_recoveries: int = 8,
        **kwargs,
    ):
        """
        Parameters
        ----------
        num_workers:
            Worker process count; slice ``s`` is owned by worker
            ``s % num_workers``.  Clamped to the slice count.
        lease_dir:
            Where lease files live.  Defaults to the durable run
            directory when checkpointing is on, else a scratch
            directory cleaned up after the run.
        lease_timeout:
            Heartbeat age beyond which a live-pid lease counts stale.
        max_recoveries:
            Worker-death budget; exceeding it raises
            :class:`repro.errors.UnrecoverableFaultError`.
        """
        super().__init__(partition, spec, **kwargs)
        if num_workers < 1:
            raise ReproError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = min(int(num_workers), partition.num_slices)
        self.lease_timeout = float(lease_timeout)
        self.max_recoveries = int(max_recoveries)
        self._lease_dir = None if lease_dir is None else Path(lease_dir)
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._epoch = 0
        self.recoveries = 0
        if self.resilience is not None:
            plan = self.resilience.config.fault_plan
            if plan.any_event_faults or plan.dead_lanes:
                raise ReproError(
                    "the sliced-mp engine does not support fault injection "
                    "(the injector's decision streams are single-process); "
                    "use --engine sliced for fault campaigns"
                )

    # -- worker fleet ---------------------------------------------------
    def _resolve_lease_dir(self) -> Path:
        if self._lease_dir is not None:
            self._lease_dir.mkdir(parents=True, exist_ok=True)
            return self._lease_dir
        if self.resilience is not None and self.resilience.durable is not None:
            return Path(self.resilience.durable.store.run_dir)
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-leases-")
        return Path(self._tempdir.name)

    def _sweep_stale_leases(self, lease_dir: Path) -> None:
        """Clear leases left by dead processes (e.g. a SIGKILLed run).

        A *fresh* lease means another live run owns this directory —
        that raises :class:`repro.errors.LeaseHeldError` instead of
        silently double-running.
        """
        store = build_substrate().lease_store(lease_dir)
        for slice_index in range(self.partition.num_slices):
            store.break_stale(slice_index, timeout=self.lease_timeout)

    def _spawn_worker(
        self,
        ctx,
        worker_id: int,
        lease_dir: Path,
        options: Dict[str, object],
        chaos: Optional[Tuple[int, int]],
    ) -> _WorkerHandle:
        owned = tuple(
            range(worker_id, self.partition.num_slices, self.num_workers)
        )
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._epoch,
                child_conn,
                self.partition,
                self.spec,
                owned,
                str(lease_dir),
                options,
                chaos,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            message = parent_conn.recv()
        except (EOFError, OSError) as exc:
            raise UnrecoverableFaultError(
                f"worker {worker_id} died during startup: {exc!r}",
                worker=worker_id,
            )
        if message[0] == "error":
            _, _, _, kind, text = message
            process.join(timeout=5.0)
            if kind == "LeaseHeldError":
                from ..errors import LeaseHeldError

                raise LeaseHeldError(text, worker=worker_id)
            raise UnrecoverableFaultError(
                f"worker {worker_id} failed to start: {text}",
                worker=worker_id,
            )
        return _WorkerHandle(worker_id, process, parent_conn, self._epoch, owned)

    def _shutdown(self, workers: List[Optional[_WorkerHandle]]) -> None:
        for handle in workers:
            if handle is None:
                continue
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass
            handle.conn.close()
        for handle in workers:
            if handle is None:
                continue
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)

    # -- dispatch -------------------------------------------------------
    def _dispatch(
        self,
        workers: List[Optional[_WorkerHandle]],
        pass_index: int,
        slice_index: int,
        inbound: List[Event],
        state: np.ndarray,
        traffic: TrafficCounters,
        spill: List[Dict[int, Event]],
    ) -> SliceActivation:
        """Run one activation on the owning worker; apply its results."""
        worker_id = slice_index % self.num_workers
        handle = workers[worker_id]
        vertices = self.partition.slices[slice_index].vertices
        try:
            handle.conn.send(
                (
                    "activate",
                    handle.epoch,
                    pass_index,
                    slice_index,
                    state[vertices].copy(),
                    inbound,
                )
            )
            message = handle.conn.recv()
        except Exception as exc:
            # After a SIGKILL the kernel closes the child's pipe ends
            # (we see EOF) before the child is reapable, so is_alive()
            # can transiently report True.  Join briefly to reap an
            # exiting child before deciding whether it died.
            handle.process.join(timeout=5.0)
            if not handle.process.is_alive():
                raise _WorkerDied(worker_id, slice_index, repr(exc)) from None
            raise
        if message[0] != "result":
            raise UnrecoverableFaultError(
                f"worker {worker_id} sent unexpected {message[0]!r}",
                worker=worker_id,
            )
        (
            _,
            epoch,
            reply_pass,
            reply_slice,
            shard,
            outbound,
            processed,
            rounds,
            spilled,
            traffic_delta,
        ) = message
        if (epoch, reply_pass, reply_slice) != (
            handle.epoch,
            pass_index,
            slice_index,
        ):
            raise UnrecoverableFaultError(
                f"worker {worker_id} replied out of order "
                f"(epoch {epoch}, pass {reply_pass}, slice {reply_slice})",
                worker=worker_id,
            )
        state[vertices] = shard
        _merge_traffic(traffic, traffic_delta)
        # replay the ordered outbound stream through the exact
        # coalesce-and-journal path the sequential engine uses
        for target, event in outbound:
            self._absorb_spill(spill, target, event)
        if obs_trace.ACTIVE is not None:
            probe.slice_activation(
                slice_index,
                pass_index,
                events_in=len(inbound),
                events_processed=processed,
                events_spilled=spilled,
                rounds=rounds,
            )
            probe.worker_activation(
                worker_id,
                slice_index,
                pass_index,
                events_in=len(inbound),
                events_processed=processed,
                events_spilled=spilled,
                rounds=rounds,
                epoch=handle.epoch,
            )
        if obs_metrics.ACTIVE is not None:
            obs_metrics.ACTIVE.counter(
                "worker.events_drained", worker=worker_id
            ).inc(processed)
            obs_metrics.ACTIVE.counter(
                "worker.activations", worker=worker_id
            ).inc()
        return SliceActivation(
            pass_index=pass_index,
            slice_index=slice_index,
            events_in=len(inbound),
            events_processed=processed,
            events_spilled=spilled,
            rounds=rounds,
        )

    # -- recovery -------------------------------------------------------
    def _replayed_spill_from_journal(
        self, pass_index: int
    ) -> Optional[List[Dict[int, Event]]]:
        """Rebuild spill buffers from the WAL's last per-pass commit.

        At the start of the pass with index ``P`` the journal's newest
        durable commit is always ``P`` (commit 0 covers the initial
        events; ``commit(P)`` sealed pass ``P - 1``; resume truncates at
        the restored commit), so recovery replays ``upto=P``.
        """
        if (
            self.resilience is None
            or self.resilience.durable is None
            or self._journal is None
        ):
            return None
        path = self.resilience.durable.store.journal_path
        transport = build_substrate().spill_transport(path)
        buffers, _ = transport.replay(
            self.partition.num_slices, pass_index, self.spec.reduce
        )
        return [
            {
                vertex: Event(
                    vertex=vertex, delta=delta, generation=generation
                )
                for vertex, (delta, generation) in bucket.items()
            }
            for bucket in buffers
        ]

    def _recover(
        self,
        death: _WorkerDied,
        workers: List[Optional[_WorkerHandle]],
        ctx,
        lease_dir: Path,
        options: Dict[str, object],
        state: np.ndarray,
        spill: List[Dict[int, Event]],
        snapshot_state: np.ndarray,
        snapshot_spill: List[Dict[int, Event]],
        snapshot_traffic: Dict[str, int],
        traffic: TrafficCounters,
        pass_index: int,
    ) -> None:
        """Re-lease a dead worker's slices and rewind to the pass start."""
        self.recoveries += 1
        if self.recoveries > self.max_recoveries:
            raise UnrecoverableFaultError(
                f"worker death budget exhausted "
                f"({self.max_recoveries} recoveries)",
                worker=death.worker_id,
                slice=death.slice_index,
            )
        handle = workers[death.worker_id]
        handle.process.join(timeout=10.0)
        handle.conn.close()

        # 1. roll back to the pass-start snapshot
        state[:] = snapshot_state
        for i, snap in enumerate(snapshot_spill):
            spill[i] = dict(snap)
        _restore_traffic(traffic, snapshot_traffic)

        # 2. rewind the WAL to the last per-pass commit
        if self._journal is not None:
            self._journal.discard_uncommitted()

        # 3. durable runs: replay the on-disk journal up to that commit,
        #    cross-check against the snapshot, adopt the replayed buffers
        replayed = self._replayed_spill_from_journal(pass_index)
        if replayed is not None:
            self._check_replay_matches(replayed, spill, pass_index)
            for i, bucket in enumerate(replayed):
                spill[i] = bucket

        telemetry = getattr(self, "_telemetry", None)
        if telemetry is not None:
            entry = telemetry[death.worker_id]
            entry["lease_recoveries"] += 1
            if replayed is not None:
                entry["journal_replays"] += 1

        # 4. break the stale leases and re-lease to a fresh worker
        #    (chaos disabled: the replacement must not re-trigger)
        store = build_substrate().lease_store(lease_dir)
        for slice_index in handle.owned:
            store.break_stale(slice_index, timeout=self.lease_timeout)
        self._epoch += 1
        workers[death.worker_id] = self._spawn_worker(
            ctx, death.worker_id, lease_dir, options, chaos=None
        )
        if obs_trace.ACTIVE is not None:
            probe.recovery_span(
                "worker-relaunch",
                float(pass_index),
                float(pass_index),
                worker=death.worker_id,
                slice=death.slice_index,
                epoch=self._epoch,
            )

    def _check_replay_matches(
        self,
        replayed: List[Dict[int, Event]],
        snapshot: List[Dict[int, Event]],
        pass_index: int,
    ) -> None:
        """The WAL and the in-memory snapshot must agree bit-for-bit."""
        import struct

        from ..errors import CheckpointCorruptError

        def bits(value: float) -> bytes:
            return struct.pack("<d", value)

        for slice_index, (disk, memory) in enumerate(zip(replayed, snapshot)):
            if set(disk) != set(memory):
                raise CheckpointCorruptError(
                    f"journal replay disagrees with the pass-{pass_index} "
                    f"snapshot on slice {slice_index}'s pending vertices",
                    slice=slice_index,
                    pass_index=pass_index,
                )
            for vertex, event in memory.items():
                other = disk[vertex]
                if (
                    bits(other.delta) != bits(event.delta)
                    or other.generation != event.generation
                ):
                    raise CheckpointCorruptError(
                        f"journal replay disagrees with the pass-"
                        f"{pass_index} snapshot on vertex {vertex} "
                        f"(slice {slice_index})",
                        slice=slice_index,
                        vertex=vertex,
                        pass_index=pass_index,
                    )

    # -- run ------------------------------------------------------------
    def run(self) -> MultiprocessSlicedResult:
        partition = self.partition
        state = self.state
        traffic = TrafficCounters()
        activations: List[SliceActivation] = []
        spill_written = 0
        spill_read = 0

        spill, view, watchdog = self._setup_run()
        lease_dir = self._resolve_lease_dir()
        self._sweep_stale_leases(lease_dir)
        chaos = _parse_kill_spec(os.environ.get(KILL_WORKER_ENV))
        options = {
            "num_bins": self.num_bins,
            "block_size": self.block_size,
            "rounds_per_activation": self.rounds_per_activation,
        }
        ctx = get_context("fork")
        workers: List[Optional[_WorkerHandle]] = [None] * self.num_workers
        # committed per-worker telemetry; pass-local deltas live in
        # ``pending`` below so a _WorkerDied rollback discards them for
        # free (recovery counters accumulate here unconditionally)
        telemetry: List[Dict[str, int]] = [
            {
                "worker": worker_id,
                "activations": 0,
                "events_drained": 0,
                "rounds": 0,
                "barrier_wait_rounds": 0,
                "journal_replays": 0,
                "lease_recoveries": 0,
            }
            for worker_id in range(self.num_workers)
        ]
        self._telemetry = telemetry

        pass_index = self._start_pass
        try:
            for worker_id in range(self.num_workers):
                workers[worker_id] = self._spawn_worker(
                    ctx, worker_id, lease_dir, options, chaos
                )
            while True:
                while any(spill):
                    verdict = watchdog.verdict()
                    if verdict is not None:
                        self._halt_nonconvergence(verdict, watchdog, view)
                    snapshot_state = state.copy()
                    snapshot_spill = [dict(bucket) for bucket in spill]
                    snapshot_traffic = _traffic_dict(traffic)
                    marks = (spill_read, spill_written, len(activations))
                    writes_before = traffic.vertex_writes
                    pass_processed = 0
                    # [activations, events_drained, rounds] per worker
                    pending = [[0, 0, 0] for _ in range(self.num_workers)]
                    try:
                        for slice_index in range(partition.num_slices):
                            inbound = spill[slice_index]
                            if not inbound:
                                continue
                            if self._journal is not None:
                                self._journal.consume(slice_index)
                            spill[slice_index] = {}
                            spill_read += len(inbound) * _SPILL_EVENT_BYTES
                            activation = self._dispatch(
                                workers,
                                pass_index,
                                slice_index,
                                list(inbound.values()),
                                state,
                                traffic,
                                spill,
                            )
                            spill_written += (
                                activation.events_spilled * _SPILL_EVENT_BYTES
                            )
                            activations.append(activation)
                            pass_processed += activation.events_processed
                            slot = pending[slice_index % self.num_workers]
                            slot[0] += 1
                            slot[1] += activation.events_processed
                            slot[2] += activation.rounds
                    except _WorkerDied as death:
                        spill_read, spill_written = marks[0], marks[1]
                        del activations[marks[2] :]
                        self._recover(
                            death,
                            workers,
                            ctx,
                            lease_dir,
                            options,
                            state,
                            spill,
                            snapshot_state,
                            snapshot_spill,
                            snapshot_traffic,
                            traffic,
                            pass_index,
                        )
                        continue  # retry the pass from slice 0
                    pass_rounds = sum(slot[2] for slot in pending)
                    for worker_id, slot in enumerate(pending):
                        entry = telemetry[worker_id]
                        entry["activations"] += slot[0]
                        entry["events_drained"] += slot[1]
                        entry["rounds"] += slot[2]
                        entry["barrier_wait_rounds"] += pass_rounds - slot[2]
                    if obs_metrics.ACTIVE is not None:
                        obs_metrics.round_tick(
                            "sliced-mp",
                            pass_index,
                            events_processed=pass_processed,
                        )
                    watchdog.observe_round(
                        pass_processed, traffic.vertex_writes - writes_before
                    )
                    pass_index += 1
                    if self._journal is not None:
                        self._journal.commit(pass_index)
                    if self.resilience is not None:
                        self.resilience.maybe_checkpoint(
                            pass_index, float(pass_index), state, view
                        )
                if self.resilience is None:
                    break
                self.resilience.note_quiescence(float(pass_index))
                if not self.resilience.repair(
                    state,
                    float(pass_index),
                    inject=self._inject_repair,
                    restore=self._restore_checkpoint,
                ):
                    break
        finally:
            self._shutdown(workers)
            if self._journal is not None:
                self._journal.close()
            if self._tempdir is not None:
                self._tempdir.cleanup()
                self._tempdir = None

        summary = None
        if self.resilience is not None:
            self.resilience.finalize(float(pass_index))
            summary = self.resilience.summary()
        return MultiprocessSlicedResult(
            values=state,
            activations=activations,
            traffic=traffic,
            spill_bytes_written=spill_written,
            spill_bytes_read=spill_read,
            converged=True,
            resilience=summary,
            num_workers=self.num_workers,
            recoveries=self.recoveries,
            worker_stats=telemetry,
        )
