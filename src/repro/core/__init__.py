"""GraphPulse core: events, coalescing queue, functional + cycle engines."""

from .accelerator import (
    CycleResult,
    GraphPulseAccelerator,
    OccupancyProfile,
    StageProfile,
)
from .config import GraphPulseConfig, baseline_config, optimized_config
from .engines import (
    Engine,
    EngineSpec,
    RunResult,
    RUN_RESULT_SCHEMA,
    WORKER_STATS_KEYS,
    build_engine,
    engine_names,
    engine_spec,
    register_engine,
    resilient_engine_names,
    resumable_engine_names,
    validate_run_result,
)
from .event import Event
from .functional import (
    LOOKAHEAD_BUCKETS,
    FunctionalGraphPulse,
    FunctionalResult,
    RoundRecord,
    TrafficCounters,
)
from .mpsliced import MultiprocessSlicedGraphPulse, MultiprocessSlicedResult
from .queue import CoalescingQueue, QueueStats, VertexBinMap
from .rowqueue import BinGeometry, BinStorage
from .slicing import (
    ParallelSlicedGraphPulse,
    ParallelSlicedResult,
    SliceActivation,
    SlicedGraphPulse,
    SlicedResult,
    SuperRound,
    build_sliced,
    resolve_partition,
    run_slice_activation,
    run_sliced,
)

__all__ = [
    "Event",
    "CoalescingQueue",
    "QueueStats",
    "VertexBinMap",
    "BinGeometry",
    "BinStorage",
    "FunctionalGraphPulse",
    "FunctionalResult",
    "RoundRecord",
    "TrafficCounters",
    "LOOKAHEAD_BUCKETS",
    "GraphPulseConfig",
    "baseline_config",
    "optimized_config",
    "GraphPulseAccelerator",
    "CycleResult",
    "StageProfile",
    "OccupancyProfile",
    "SlicedGraphPulse",
    "SlicedResult",
    "SliceActivation",
    "build_sliced",
    "run_sliced",
    "resolve_partition",
    "run_slice_activation",
    "ParallelSlicedGraphPulse",
    "ParallelSlicedResult",
    "SuperRound",
    "MultiprocessSlicedGraphPulse",
    "MultiprocessSlicedResult",
    "Engine",
    "EngineSpec",
    "RunResult",
    "RUN_RESULT_SCHEMA",
    "WORKER_STATS_KEYS",
    "build_engine",
    "engine_names",
    "engine_spec",
    "register_engine",
    "resilient_engine_names",
    "resumable_engine_names",
    "validate_run_result",
]
