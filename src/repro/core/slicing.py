"""Large-graph execution via slicing (paper Section IV-F).

When a graph has more vertices than the coalescing queue can map, it is
partitioned offline into slices that each fit on chip.  Slices execute
one at a time; events produced for vertices in other slices are
buffered in off-chip DRAM ("the outbound events to each slice fill a
DRAM page with burst-write") and streamed back in when their slice is
activated.  Because the event model is asynchronous and data-flow, any
interleaving converges to the same fixed point.

The runtime below reproduces that scheme on top of the functional
engine: a round-robin pass over slices, each processing until its local
queue drains, spilling cross-slice events, until no slice has pending
work.  Spill traffic (bytes written + read back) is accounted — it is
the overhead the paper accepts for Twitter-scale graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..graph import CSRGraph
from ..graph.partition import Partition
from ..obs import probe
from ..obs import trace as obs_trace
from .event import Event
from .functional import TrafficCounters
from .queue import CoalescingQueue

__all__ = [
    "SlicedGraphPulse",
    "SlicedResult",
    "SliceActivation",
    "ParallelSlicedGraphPulse",
    "ParallelSlicedResult",
    "SuperRound",
]

#: bytes per spilled event: destination id (4 B per the paper's graphs,
#: we keep 8 to match our 64-bit ids) + payload (8 B)
_SPILL_EVENT_BYTES = 16
_CACHE_LINE = 64


@dataclass
class SliceActivation:
    """One activation of one slice (a swap-in / process / swap-out)."""

    pass_index: int
    slice_index: int
    events_in: int  #: events streamed in from the spill buffer
    events_processed: int
    events_spilled: int  #: cross-slice events written to DRAM
    rounds: int


@dataclass
class SlicedResult:
    """Output of a sliced run."""

    values: np.ndarray
    activations: List[SliceActivation]
    traffic: TrafficCounters
    spill_bytes_written: int
    spill_bytes_read: int
    converged: bool

    @property
    def num_passes(self) -> int:
        if not self.activations:
            return 0
        return self.activations[-1].pass_index + 1

    @property
    def total_spill_bytes(self) -> int:
        return self.spill_bytes_written + self.spill_bytes_read

    def spill_overhead(self) -> float:
        """Spill traffic as a fraction of total off-chip traffic."""
        total = self.traffic.total_bytes_fetched + self.total_spill_bytes
        return self.total_spill_bytes / total if total else 0.0


class SlicedGraphPulse:
    """Multi-slice functional GraphPulse execution."""

    def __init__(
        self,
        partition: Partition,
        spec: AlgorithmSpec,
        *,
        num_bins: int = 64,
        block_size: int = 128,
        max_passes: int = 10_000,
        rounds_per_activation: Optional[int] = None,
    ):
        """
        Parameters
        ----------
        partition:
            Offline partitioning of the graph (``repro.graph.partition``).
        rounds_per_activation:
            Cap on rounds a slice runs before being swapped out even if
            it still has local events (``None``: drain completely).  A
            small cap trades swap overhead for fairness across slices.
        """
        self.partition = partition
        self.spec = spec
        self.num_bins = num_bins
        self.block_size = block_size
        self.max_passes = max_passes
        self.rounds_per_activation = rounds_per_activation

    # ------------------------------------------------------------------
    def run(self) -> SlicedResult:
        partition, spec = self.partition, self.spec
        graph = partition.graph
        state = spec.initial_state(graph)
        traffic = TrafficCounters()
        activations: List[SliceActivation] = []
        spill_written = 0
        spill_read = 0

        # per-slice spill buffers of inbound events (global vertex ids);
        # coalesced on arrival like the DRAM-page burst buffers would be
        spill: List[Dict[int, Event]] = [
            dict() for _ in range(partition.num_slices)
        ]
        for vertex, delta in spec.initial_events(graph).items():
            s = int(partition.slice_of_vertex[vertex])
            spill[s][vertex] = Event(vertex=vertex, delta=delta)

        pass_index = 0
        while any(spill):
            if pass_index >= self.max_passes:
                raise RuntimeError(
                    f"{spec.name} did not converge within "
                    f"{self.max_passes} slice passes"
                )
            for slice_index in range(partition.num_slices):
                inbound = spill[slice_index]
                if not inbound:
                    continue
                spill[slice_index] = {}
                spill_read += len(inbound) * _SPILL_EVENT_BYTES
                activation = self._activate(
                    pass_index,
                    slice_index,
                    list(inbound.values()),
                    state,
                    traffic,
                    spill,
                )
                spill_written += (
                    activation.events_spilled * _SPILL_EVENT_BYTES
                )
                activations.append(activation)
            pass_index += 1
        converged = True

        return SlicedResult(
            values=state,
            activations=activations,
            traffic=traffic,
            spill_bytes_written=spill_written,
            spill_bytes_read=spill_read,
            converged=converged,
        )

    # ------------------------------------------------------------------
    def _activate(
        self,
        pass_index: int,
        slice_index: int,
        inbound: List[Event],
        state: np.ndarray,
        traffic: TrafficCounters,
        spill: List[Dict[int, Event]],
    ) -> SliceActivation:
        """Swap a slice in, run it, spill outbound events."""
        partition, spec = self.partition, self.spec
        graph = partition.graph
        queue = CoalescingQueue(
            graph.num_vertices,
            spec.reduce,
            num_bins=self.num_bins,
            block_size=self.block_size,
        )
        for event in inbound:
            queue.insert(event)

        processed = 0
        spilled = 0
        rounds = 0
        while not queue.is_empty:
            if (
                self.rounds_per_activation is not None
                and rounds >= self.rounds_per_activation
            ):
                break
            rounds += 1
            for bin_index in range(queue.num_bins):
                batch = queue.drain_bin(bin_index)
                if not batch:
                    continue
                processed += len(batch)
                self._account_vertex_batch(batch, traffic)
                for event in batch:
                    spilled += self._process_event(
                        event, state, traffic, queue, slice_index, spill
                    )
        # events still queued at swap-out are spilled back to this
        # slice's own buffer
        for event in queue.drain_all():
            own = spill[slice_index]
            existing = own.get(event.vertex)
            own[event.vertex] = (
                existing.coalesced_with(event, spec.reduce)
                if existing is not None
                else event
            )
            spilled += 1

        if obs_trace.ACTIVE is not None:
            probe.slice_activation(
                slice_index,
                pass_index,
                events_in=len(inbound),
                events_processed=processed,
                events_spilled=spilled,
                rounds=rounds,
            )
        return SliceActivation(
            pass_index=pass_index,
            slice_index=slice_index,
            events_in=len(inbound),
            events_processed=processed,
            events_spilled=spilled,
            rounds=rounds,
        )

    def _process_event(
        self,
        event: Event,
        state: np.ndarray,
        traffic: TrafficCounters,
        queue: CoalescingQueue,
        slice_index: int,
        spill: List[Dict[int, Event]],
    ) -> int:
        """Process one event; returns the number of events spilled."""
        partition, spec = self.partition, self.spec
        graph = partition.graph
        u = event.vertex
        traffic.vertex_reads += 1
        result = spec.apply(float(state[u]), event.delta)
        if not result.changed:
            return 0
        state[u] = result.state
        traffic.vertex_writes += 1
        if not spec.should_propagate(result.change):
            return 0
        degree = graph.out_degree(u)
        if degree == 0:
            return 0
        traffic.edge_reads += degree
        self._account_edge_slice(u, degree, traffic)
        neighbors = graph.neighbors(u)
        weights = graph.edge_weights(u) if spec.uses_weights else None
        generation = event.generation + 1
        spilled = 0
        for k in range(degree):
            dst = int(neighbors[k])
            weight = float(weights[k]) if weights is not None else 1.0
            delta = spec.propagate(result.change, u, dst, weight, degree)
            if delta == spec.identity:
                continue
            new_event = Event(vertex=dst, delta=delta, generation=generation)
            target_slice = int(partition.slice_of_vertex[dst])
            if target_slice == slice_index:
                queue.insert(new_event)
            else:
                bucket = spill[target_slice]
                existing = bucket.get(dst)
                bucket[dst] = (
                    existing.coalesced_with(new_event, spec.reduce)
                    if existing is not None
                    else new_event
                )
                spilled += 1
        return spilled

    # ------------------------------------------------------------------
    def _account_vertex_batch(
        self, batch: List[Event], traffic: TrafficCounters
    ) -> None:
        graph = self.partition.graph
        lines = {
            graph.vertex_address(e.vertex) // _CACHE_LINE for e in batch
        }
        traffic.vertex_bytes_fetched += 2 * len(lines) * _CACHE_LINE
        traffic.vertex_bytes_useful += 2 * len(batch) * graph.vertex_bytes

    def _account_edge_slice(
        self, vertex: int, degree: int, traffic: TrafficCounters
    ) -> None:
        graph = self.partition.graph
        start = graph.edge_address(int(graph.offsets[vertex]))
        stop = graph.edge_address(int(graph.offsets[vertex + 1]))
        first = start // _CACHE_LINE
        last = (stop - 1) // _CACHE_LINE
        traffic.edge_bytes_fetched += (last - first + 1) * _CACHE_LINE
        traffic.edge_bytes_useful += degree * graph.edge_bytes


@dataclass
class SuperRound:
    """One synchronized step of the multi-accelerator runtime."""

    index: int
    events_processed_per_slice: List[int]
    messages_exchanged: int


@dataclass
class ParallelSlicedResult:
    """Output of a multi-accelerator run."""

    values: np.ndarray
    super_rounds: List[SuperRound]
    traffic: TrafficCounters
    converged: bool

    @property
    def num_super_rounds(self) -> int:
        return len(self.super_rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_exchanged for r in self.super_rounds)

    def load_balance(self) -> float:
        """Mean/max ratio of per-slice work (1.0 = perfectly balanced)."""
        totals = None
        for record in self.super_rounds:
            if totals is None:
                totals = list(record.events_processed_per_slice)
            else:
                for i, count in enumerate(record.events_processed_per_slice):
                    totals[i] += count
        if not totals or max(totals) == 0:
            return 1.0
        return (sum(totals) / len(totals)) / max(totals)


class ParallelSlicedGraphPulse:
    """Multi-accelerator execution (paper Section IV-F, option b).

    The paper names, but does not explore, housing all slices on
    "multiple accelerator chips ... while an interconnection network
    streams inter-slice events in real-time".  This runtime models that
    option: every slice owns an accelerator (its own coalescing queue)
    and all accelerators execute one round per *super-round*
    concurrently.  Events crossing slices travel over the modelled
    interconnect and are inserted into the remote queue at the start of
    the next super-round (one network hop of latency); slice-local
    events coalesce immediately as usual.

    The asynchronous model makes this safe: any delivery schedule
    converges to the same fixed point, which the tests assert against
    the single-accelerator engines.
    """

    def __init__(
        self,
        partition: Partition,
        spec: AlgorithmSpec,
        *,
        num_bins: int = 64,
        block_size: int = 128,
        max_super_rounds: int = 100_000,
    ):
        self.partition = partition
        self.spec = spec
        self.num_bins = num_bins
        self.block_size = block_size
        self.max_super_rounds = max_super_rounds

    # ------------------------------------------------------------------
    def run(self) -> ParallelSlicedResult:
        partition, spec = self.partition, self.spec
        graph = partition.graph
        state = spec.initial_state(graph)
        traffic = TrafficCounters()
        queues = [
            CoalescingQueue(
                graph.num_vertices,
                spec.reduce,
                num_bins=self.num_bins,
                block_size=self.block_size,
            )
            for _ in range(partition.num_slices)
        ]
        for vertex, delta in spec.initial_events(graph).items():
            target = int(partition.slice_of_vertex[vertex])
            queues[target].insert(Event(vertex=vertex, delta=delta))

        super_rounds: List[SuperRound] = []
        # inter-accelerator messages in flight toward each slice
        in_flight: List[List[Event]] = [[] for _ in range(partition.num_slices)]
        index = 0
        while any(not q.is_empty for q in queues) or any(in_flight):
            if index >= self.max_super_rounds:
                raise RuntimeError(
                    f"{spec.name} did not converge within "
                    f"{self.max_super_rounds} super-rounds"
                )
            # deliver last super-round's network traffic
            messages = 0
            for slice_index, pending in enumerate(in_flight):
                messages += len(pending)
                for event in pending:
                    queues[slice_index].insert(event)
            in_flight = [[] for _ in range(partition.num_slices)]

            processed_per_slice = []
            for slice_index, queue in enumerate(queues):
                processed = self._run_local_round(
                    slice_index, queue, state, traffic, in_flight
                )
                processed_per_slice.append(processed)
            super_rounds.append(
                SuperRound(
                    index=index,
                    events_processed_per_slice=processed_per_slice,
                    messages_exchanged=messages,
                )
            )
            if obs_trace.ACTIVE is not None:
                probe.super_round(
                    index,
                    messages=messages,
                    events_processed=sum(processed_per_slice),
                )
            index += 1

        return ParallelSlicedResult(
            values=state,
            super_rounds=super_rounds,
            traffic=traffic,
            converged=True,
        )

    # ------------------------------------------------------------------
    def _run_local_round(
        self,
        slice_index: int,
        queue: CoalescingQueue,
        state: np.ndarray,
        traffic: TrafficCounters,
        in_flight: List[List[Event]],
    ) -> int:
        """One round on one accelerator; returns events processed."""
        partition, spec = self.partition, self.spec
        graph = partition.graph
        processed = 0
        for bin_index in range(queue.num_bins):
            batch = queue.drain_bin(bin_index)
            if not batch:
                continue
            processed += len(batch)
            lines = {
                graph.vertex_address(e.vertex) // _CACHE_LINE for e in batch
            }
            traffic.vertex_bytes_fetched += 2 * len(lines) * _CACHE_LINE
            traffic.vertex_bytes_useful += (
                2 * len(batch) * graph.vertex_bytes
            )
            for event in batch:
                u = event.vertex
                traffic.vertex_reads += 1
                result = spec.apply(float(state[u]), event.delta)
                if not result.changed:
                    continue
                state[u] = result.state
                traffic.vertex_writes += 1
                if not spec.should_propagate(result.change):
                    continue
                degree = graph.out_degree(u)
                if degree == 0:
                    continue
                traffic.edge_reads += degree
                neighbors = graph.neighbors(u)
                weights = (
                    graph.edge_weights(u) if spec.uses_weights else None
                )
                generation = event.generation + 1
                for k in range(degree):
                    dst = int(neighbors[k])
                    w = float(weights[k]) if weights is not None else 1.0
                    delta = spec.propagate(result.change, u, dst, w, degree)
                    if delta == spec.identity:
                        continue
                    new_event = Event(
                        vertex=dst, delta=delta, generation=generation
                    )
                    target = int(partition.slice_of_vertex[dst])
                    if target == slice_index:
                        queue.insert(new_event)
                    else:
                        in_flight[target].append(new_event)
        return processed
