"""Large-graph execution via slicing (paper Section IV-F).

When a graph has more vertices than the coalescing queue can map, it is
partitioned offline into slices that each fit on chip.  Slices execute
one at a time; events produced for vertices in other slices are
buffered in off-chip DRAM ("the outbound events to each slice fill a
DRAM page with burst-write") and streamed back in when their slice is
activated.  Because the event model is asynchronous and data-flow, any
interleaving converges to the same fixed point.

The runtime below reproduces that scheme on top of the functional
engine: a round-robin pass over slices, each processing until its local
queue drains, spilling cross-slice events, until no slice has pending
work.  Spill traffic (bytes written + read back) is accounted — it is
the overhead the paper accepts for Twitter-scale graphs.

Dispatch semantics
------------------
``dispatch="barrier"`` (the default) fixes a pass's active set when the
pass starts: every slice drains exactly the events that were pending at
the pass boundary, and outbound spills only become visible at the next
pass.  Because each activation touches only its own slice's vertices,
the slices of one pass are data-independent — which is what lets the
multi-process engine (:mod:`repro.core.mpsliced`) run them genuinely
concurrently and still merge outbound spills in the deterministic
(slice-id, emission-index) order the sequential engine produces.

``dispatch="chained"`` keeps the historical Gauss-Seidel-style schedule
where slice ``k`` sees spills emitted by slices ``< k`` of the same
pass.  It usually converges in fewer passes (information travels
several slice-hops per pass) but serializes the slices by construction.
Both modes converge to the same fixed point; their float trajectories
differ, so bit-identity oracles must compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..errors import NonConvergenceError, QueueCapacityError, ReproError
from ..graph import CSRGraph
from ..graph.partition import Partition, contiguous_partition
from ..obs import metrics as obs_metrics
from ..obs import probe
from ..obs import trace as obs_trace
from ..resilience.harness import ResilienceConfig, ResilienceHarness
from ..resilience.watchdog import ProgressWatchdog, build_diagnostic
from .event import Event
from .functional import TrafficCounters
from .queue import CoalescingQueue

__all__ = [
    "DISPATCH_MODES",
    "SlicedGraphPulse",
    "SlicedResult",
    "SliceActivation",
    "build_sliced",
    "run_sliced",
    "resolve_partition",
    "run_slice_activation",
    "merge_outbound_streams",
    "ParallelSlicedGraphPulse",
    "ParallelSlicedResult",
    "SuperRound",
]

#: slice-schedule modes: ``barrier`` (pass-start active set, outbound
#: merged at the pass barrier) and ``chained`` (slice k sees spills
#: from slices < k of the same pass)
DISPATCH_MODES = ("barrier", "chained")

#: bytes per spilled event: destination id (4 B per the paper's graphs,
#: we keep 8 to match our 64-bit ids) + payload (8 B)
_SPILL_EVENT_BYTES = 16
_CACHE_LINE = 64


@dataclass
class SliceActivation:
    """One activation of one slice (a swap-in / process / swap-out)."""

    pass_index: int
    slice_index: int
    events_in: int  #: events streamed in from the spill buffer
    events_processed: int
    events_spilled: int  #: cross-slice events written to DRAM
    rounds: int


@dataclass
class SlicedResult:
    """Output of a sliced run."""

    values: np.ndarray
    activations: List[SliceActivation]
    traffic: TrafficCounters
    spill_bytes_written: int
    spill_bytes_read: int
    converged: bool
    #: resilience activity summary; None unless resilience was enabled
    resilience: Optional[Dict] = None

    @property
    def num_passes(self) -> int:
        if not self.activations:
            return 0
        return self.activations[-1].pass_index + 1

    @property
    def total_rounds(self) -> int:
        """Engine rounds summed over every slice activation."""
        return sum(a.rounds for a in self.activations)

    @property
    def total_spill_bytes(self) -> int:
        return self.spill_bytes_written + self.spill_bytes_read

    def spill_overhead(self) -> float:
        """Spill traffic as a fraction of total off-chip traffic."""
        total = self.traffic.total_bytes_fetched + self.total_spill_bytes
        return self.total_spill_bytes / total if total else 0.0


class _SpillBufferView:
    """Queue-shaped view over the per-slice spill buffers.

    Adapts the sliced runtime's DRAM spill buffers to the duck-typed
    queue interface the watchdog diagnostics and checkpoint capture
    expect (``num_bins`` / ``occupancy`` / ``peek_bin`` / ``snapshot``):
    each slice's buffer plays the role of one bin, so a watchdog
    diagnostic names the stuck *slices* and their pending vertices.
    """

    def __init__(self, spill: List[Dict[int, Event]]):
        self._spill = spill

    @property
    def num_bins(self) -> int:
        return len(self._spill)

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._spill)

    def peek_bin(self, index: int) -> List[Event]:
        bucket = self._spill[index]
        return [bucket[v] for v in sorted(bucket)]

    def snapshot(self) -> List[Dict[int, Event]]:
        return [
            {
                v: Event(
                    vertex=e.vertex,
                    delta=e.delta,
                    generation=e.generation,
                    ready=e.ready,
                )
                for v, e in bucket.items()
            }
            for bucket in self._spill
        ]


def resolve_partition(
    graph: CSRGraph,
    *,
    num_slices: int = 1,
    queue_capacity: Optional[int] = None,
    auto_slice: bool = True,
    partition_fn=contiguous_partition,
) -> Partition:
    """Partition ``graph``, auto-sizing the slice count to the queue.

    The single place the Section IV-F slice-count decision lives: when
    ``queue_capacity`` is given and the largest slice does not fit, the
    raised :class:`repro.errors.QueueCapacityError` names the minimum
    working count (``required_slices``, the single source of truth);
    with ``auto_slice`` the helper retries once with that suggestion.
    ``build_sliced``, the multi-process engine, and the CLI all route
    through here, so every caller makes the same deterministic decision.
    """
    num_slices = max(1, int(num_slices))
    partition = partition_fn(graph, num_slices)
    if queue_capacity is None:
        return partition
    largest = max(s.num_vertices for s in partition.slices)
    if largest <= queue_capacity:
        return partition
    exc = QueueCapacityError(graph.num_vertices, queue_capacity)
    if not auto_slice or exc.required_slices <= num_slices:
        raise exc
    partition = partition_fn(graph, exc.required_slices)
    largest = max(s.num_vertices for s in partition.slices)
    if largest > queue_capacity:
        # pathological partitioner (e.g. badly skewed greedy cut):
        # even the suggested count produced an oversized slice
        raise QueueCapacityError(graph.num_vertices, queue_capacity)
    return partition


# ----------------------------------------------------------------------
# The slice-activation kernel, shared by the sequential engine and the
# multi-process workers.  ``emit(target_slice, event)`` receives every
# spilled event — cross-slice spills and the swap-out residue — in
# exactly the order the sequential engine would apply them, which is
# what keeps both execution modes bit-identical.
# ----------------------------------------------------------------------


def _account_vertex_batch(
    graph: CSRGraph, batch: List[Event], traffic: TrafficCounters
) -> None:
    lines = {graph.vertex_address(e.vertex) // _CACHE_LINE for e in batch}
    traffic.vertex_bytes_fetched += 2 * len(lines) * _CACHE_LINE
    traffic.vertex_bytes_useful += 2 * len(batch) * graph.vertex_bytes


def _account_edge_slice(
    graph: CSRGraph, vertex: int, degree: int, traffic: TrafficCounters
) -> None:
    start = graph.edge_address(int(graph.offsets[vertex]))
    stop = graph.edge_address(int(graph.offsets[vertex + 1]))
    first = start // _CACHE_LINE
    last = (stop - 1) // _CACHE_LINE
    traffic.edge_bytes_fetched += (last - first + 1) * _CACHE_LINE
    traffic.edge_bytes_useful += degree * graph.edge_bytes


def _process_slice_event(
    partition: Partition,
    spec: AlgorithmSpec,
    event: Event,
    state: np.ndarray,
    traffic: TrafficCounters,
    queue: CoalescingQueue,
    slice_index: int,
    emit: Callable[[int, Event], None],
    resilience,
    now: float,
) -> int:
    """Process one event; returns the number of events spilled."""
    graph = partition.graph
    u = event.vertex
    traffic.vertex_reads += 1
    result = spec.apply(float(state[u]), event.delta)
    if not result.changed:
        return 0
    new_state = result.state
    if resilience is not None:
        ok, new_state = resilience.guard_value(u, new_state, now)
        if not ok:
            # quarantine: reset to identity, never propagate garbage
            state[u] = new_state
            traffic.vertex_writes += 1
            return 0
    state[u] = new_state
    traffic.vertex_writes += 1
    if not spec.should_propagate(result.change):
        return 0
    degree = graph.out_degree(u)
    if degree == 0:
        return 0
    traffic.edge_reads += degree
    _account_edge_slice(graph, u, degree, traffic)
    neighbors = graph.neighbors(u)
    weights = graph.edge_weights(u) if spec.uses_weights else None
    generation = event.generation + 1
    spilled = 0
    for k in range(degree):
        dst = int(neighbors[k])
        weight = float(weights[k]) if weights is not None else 1.0
        delta = spec.propagate(result.change, u, dst, weight, degree)
        if delta == spec.identity:
            continue
        new_event = Event(vertex=dst, delta=delta, generation=generation)
        target_slice = int(partition.slice_of_vertex[dst])
        if target_slice == slice_index:
            if resilience is not None:
                for survivor in resilience.filter_insert(new_event, now):
                    queue.insert(survivor)
            else:
                queue.insert(new_event)
        else:
            spilled += 1
            if resilience is not None and resilience.spill_lost(
                new_event, now
            ):
                continue  # lost in the DRAM spill buffer (not journaled)
            emit(target_slice, new_event)
    return spilled


def run_slice_activation(
    partition: Partition,
    spec: AlgorithmSpec,
    pass_index: int,
    slice_index: int,
    inbound: List[Event],
    state: np.ndarray,
    traffic: TrafficCounters,
    emit: Callable[[int, Event], None],
    *,
    num_bins: int = 64,
    block_size: int = 128,
    rounds_per_activation: Optional[int] = None,
    resilience=None,
) -> Tuple[int, int, int]:
    """Swap one slice in, drain it, emit outbound spills in order.

    Returns ``(events_processed, rounds, events_spilled)``.  The caller
    owns what ``emit`` means: the sequential engine coalesces into its
    in-memory spill buckets and appends to the WAL, a worker process
    appends to the outbound stream it ships back to the supervisor.
    Only the vertices of ``partition.slices[slice_index]`` are read or
    written in ``state`` — the contract that lets the supervisor ship
    workers a single slice's state shard.
    """
    graph = partition.graph
    now = float(pass_index)
    queue = CoalescingQueue(
        graph.num_vertices,
        spec.reduce,
        num_bins=num_bins,
        block_size=block_size,
    )
    if resilience is not None:
        plan = resilience.config.fault_plan
        if plan.rate("bitflip") > 0 or "bitflip" in plan.scripted:
            queue.payload_check = lambda event: (
                resilience.payload_ok(event, now)
            )
        for event in inbound:
            for survivor in resilience.filter_insert(event, now):
                queue.insert(survivor)
    else:
        for event in inbound:
            queue.insert(event)

    processed = 0
    spilled = 0
    rounds = 0
    while not queue.is_empty:
        if (
            rounds_per_activation is not None
            and rounds >= rounds_per_activation
        ):
            break
        rounds += 1
        for bin_index in range(queue.num_bins):
            batch = queue.drain_bin(bin_index)
            if not batch:
                continue
            processed += len(batch)
            _account_vertex_batch(graph, batch, traffic)
            for event in batch:
                spilled += _process_slice_event(
                    partition,
                    spec,
                    event,
                    state,
                    traffic,
                    queue,
                    slice_index,
                    emit,
                    resilience,
                    now,
                )
    # events still queued at swap-out are spilled back to this slice's
    # own buffer
    for event in queue.drain_all():
        emit(slice_index, event)
        spilled += 1
    return processed, rounds, spilled


def merge_outbound_streams(streams):
    """Merge per-slice outbound spill streams in deterministic order.

    ``streams`` is an iterable of ``(slice_index, [(target, event), ...])``
    pairs, one per activation of a pass; each inner list preserves the
    emission order of :func:`run_slice_activation`.  Yields every
    ``(target, event)`` sorted by **(slice-id, emission-index)** — the
    exact order a sequential barrier pass (slices activated in slice
    order, spills absorbed as emitted) produces, and therefore the exact
    order the spill journal records and replays.  The multi-process
    supervisor routes worker results through here so coalesced spill
    buffers, journal bytes and final state stay bit-identical to the
    sequential engine no matter how activations interleaved in time.
    """
    for _, outbound in sorted(streams, key=lambda item: item[0]):
        yield from outbound


class SlicedGraphPulse:
    """Multi-slice functional GraphPulse execution.

    Prefer constructing through :func:`repro.core.engines.build_engine`
    (``name="sliced"``); direct construction remains supported for
    callers that need a custom :class:`Partition`.
    """

    #: registry name; subclasses override (the resilience harness keys
    #: journal/tolerance behavior off it)
    ENGINE_NAME = "sliced"

    def __init__(
        self,
        partition: Partition,
        spec: AlgorithmSpec,
        *,
        num_bins: int = 64,
        block_size: int = 128,
        max_passes: int = 10_000,
        rounds_per_activation: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        dispatch: str = "barrier",
        resilience: Optional[ResilienceConfig] = None,
    ):
        """
        Parameters
        ----------
        partition:
            Offline partitioning of the graph (``repro.graph.partition``).
        rounds_per_activation:
            Cap on rounds a slice runs before being swapped out even if
            it still has local events (``None``: drain completely).  A
            small cap trades swap overhead for fairness across slices.
        dispatch:
            Slice schedule within a pass — see the module docstring.
            ``"barrier"`` (default) fixes the active set at pass start;
            ``"chained"`` lets slice ``k`` see same-pass spills from
            slices ``< k``.
        queue_capacity:
            On-chip queue capacity in vertices.  Every slice must fit:
            a partition whose largest slice exceeds this raises
            :class:`repro.errors.QueueCapacityError` naming the number
            of slices that would fit (see :func:`run_sliced`).
        resilience:
            Optional fault-injection / detection / recovery configuration
            (:class:`repro.resilience.ResilienceConfig`).
        """
        self.partition = partition
        self.spec = spec
        self.num_bins = num_bins
        self.block_size = block_size
        self.max_passes = max_passes
        self.rounds_per_activation = rounds_per_activation
        if dispatch not in DISPATCH_MODES:
            raise ReproError(
                f"unknown dispatch mode {dispatch!r}; "
                f"expected one of {', '.join(DISPATCH_MODES)}"
            )
        self.dispatch = dispatch
        if queue_capacity is not None:
            largest = max(s.num_vertices for s in partition.slices)
            if largest > queue_capacity:
                raise QueueCapacityError(
                    partition.graph.num_vertices, queue_capacity
                )
        self._now = 0.0
        self._spill: List[Dict[int, Event]] = []
        self._journal = None  #: SpillJournal on durable runs, else None
        self._resumed = False
        self._start_pass = 0
        self._resume_spill: Optional[List[Dict[int, Event]]] = None
        self.state = spec.initial_state(partition.graph)
        #: journal-replay provenance of the last restore() (or None)
        self.journal_replay: Optional[Dict[str, Any]] = None
        self.resilience: Optional[ResilienceHarness] = None
        if resilience is not None:
            # the additive-invariant residual band scales with how many
            # times a vertex's sub-threshold tail is re-dropped; barrier
            # (Jacobi) dispatch runs roughly twice the passes of the
            # chained (Gauss-Seidel) schedule, so its fault-free band
            # doubles (measured fault-free ratios: chained <= ~3x,
            # barrier <= ~5.2x the per-edge bound on tier-1 workloads)
            self.resilience = ResilienceHarness(
                resilience,
                spec,
                partition.graph,
                self.ENGINE_NAME,
                residual_band=8.0 if self.dispatch == "barrier" else 4.0,
            )

    # ------------------------------------------------------------------
    def restore(self, restored) -> None:
        """Adopt a durable checkpoint; the next ``run`` continues from it.

        The checkpoint's spill snapshot is the restored truth; the spill
        journal is independently replayed up to the commit the
        checkpoint references and cross-checked bit-for-bit (raw f64
        delta bits, generations) against it — a torn or inconsistent
        journal fails loudly instead of silently diverging.  The journal
        is then truncated at that commit so resumed appends continue
        from a clean tail.
        """
        if len(restored.queue_snapshot) != self.partition.num_slices:
            from ..errors import CheckpointCorruptError

            raise CheckpointCorruptError(
                f"checkpoint snapshot has {len(restored.queue_snapshot)} "
                f"slices but the partition has {self.partition.num_slices}",
                snapshot_slices=len(restored.queue_snapshot),
                partition_slices=self.partition.num_slices,
            )
        self.state[:] = restored.state
        self._resume_spill = [
            {
                v: Event(
                    vertex=e.vertex,
                    delta=e.delta,
                    generation=e.generation,
                    ready=e.ready,
                )
                for v, e in bucket.items()
            }
            for bucket in restored.queue_snapshot
        ]
        self._start_pass = restored.round_index
        if self.resilience is not None and restored.fault_cursor:
            self.resilience.injector.restore_cursor(restored.fault_cursor)
        self._verify_and_trim_journal(restored)
        self._resumed = True

    def _verify_and_trim_journal(self, restored) -> None:
        """Replay the WAL to the checkpoint's commit and cross-check it."""
        if self.resilience is None or self.resilience.durable is None:
            return
        import struct

        from ..errors import CheckpointCorruptError
        from ..resilience.journal import SpillJournal

        path = self.resilience.durable.store.journal_path
        scan = SpillJournal.scan(
            path,
            self.partition.num_slices,
            restored.journal_commit,
            self.spec.reduce,
        )
        buffers, offset = scan.buffers, scan.offset

        def bits(value: float) -> bytes:
            return struct.pack("<d", value)

        for slice_index, snap in enumerate(restored.queue_snapshot):
            replayed = buffers[slice_index]
            if set(replayed) != set(snap):
                raise CheckpointCorruptError(
                    f"{path}: journal replay disagrees with checkpoint on "
                    f"slice {slice_index}'s pending vertices",
                    path=str(path),
                    slice=slice_index,
                )
            for vertex, event in snap.items():
                delta, generation = replayed[vertex]
                if bits(delta) != bits(event.delta) or generation != event.generation:
                    raise CheckpointCorruptError(
                        f"{path}: journal replay disagrees with checkpoint "
                        f"on vertex {vertex} (slice {slice_index})",
                        path=str(path),
                        slice=slice_index,
                        vertex=vertex,
                    )
        SpillJournal.truncate(path, offset)
        # recovery provenance for `repro resume --json` (resume_run
        # reads this attr after restore; sliced-mp inherits)
        self.journal_replay = scan.provenance()

    def _journal_spill(self, slice_index: int, event: Event) -> None:
        """WAL one event landing in a spill bucket (no-op when off)."""
        if self._journal is not None:
            self._journal.spill(
                slice_index, event.vertex, event.generation, event.delta
            )

    # ------------------------------------------------------------------
    def _setup_run(self):
        """Shared run preamble: spill buffers, WAL, seed events, watchdog.

        Returns ``(spill, view, watchdog)``; used by both this class and
        the multi-process subclass so resume/journal semantics cannot
        drift between them.
        """
        partition, spec = self.partition, self.spec
        # per-slice spill buffers of inbound events (global vertex ids);
        # coalesced on arrival like the DRAM-page burst buffers would be
        spill: List[Dict[int, Event]] = [
            dict() for _ in range(partition.num_slices)
        ]
        self._spill = spill
        view = _SpillBufferView(spill)
        if self.resilience is not None:
            self._journal = self.resilience.open_journal(partition.num_slices)
        if self._resumed:
            for bucket, snap in zip(spill, self._resume_spill or []):
                bucket.update(snap)
        else:
            for vertex, delta in spec.initial_events(partition.graph).items():
                s = int(partition.slice_of_vertex[vertex])
                spill[s][vertex] = Event(vertex=vertex, delta=delta)
                if self._journal is not None:
                    self._journal.spill(s, vertex, 0, delta)
            if self._journal is not None:
                self._journal.commit(0)
        if self.resilience is not None:
            watchdog = self.resilience.make_watchdog(self.max_passes)
        else:
            watchdog = ProgressWatchdog(self.max_passes)
        return spill, view, watchdog

    def _halt_nonconvergence(self, verdict, watchdog, view) -> None:
        diagnostic = build_diagnostic(
            "sliced", verdict, watchdog.rounds, view
        )
        raise NonConvergenceError(
            f"{self.spec.name} did not converge within "
            f"{self.max_passes} slice passes"
            if verdict == "round-limit"
            else f"{self.spec.name} made no progress (livelock: "
            f"events flow but no state changes)",
            diagnostic,
        )

    def _collect_pass_inbound(
        self, spill: List[Dict[int, Event]]
    ) -> List[Tuple[int, List[Event]]]:
        """Capture and clear every pending bucket at a pass barrier.

        Journal ``consume`` marks are written in slice order before any
        activation runs, so a barrier pass's WAL record stream is
        "consume all active slices, then the outbound spills" — replay
        up to the pass commit reconstructs exactly the pass-start
        buffers, same as it does for the chained schedule.
        """
        batch: List[Tuple[int, List[Event]]] = []
        for slice_index, bucket in enumerate(spill):
            if not bucket:
                continue
            if self._journal is not None:
                self._journal.consume(slice_index)
            spill[slice_index] = {}
            batch.append((slice_index, list(bucket.values())))
        return batch

    def run(self) -> SlicedResult:
        partition, spec = self.partition, self.spec
        state = self.state
        traffic = TrafficCounters()
        activations: List[SliceActivation] = []
        spill_written = 0
        spill_read = 0

        spill, view, watchdog = self._setup_run()

        pass_index = self._start_pass
        try:
            while True:
                while any(spill):
                    verdict = watchdog.verdict()
                    if verdict is not None:
                        self._halt_nonconvergence(verdict, watchdog, view)
                    writes_before = traffic.vertex_writes
                    pass_processed = 0
                    if self.dispatch == "barrier":
                        # active set fixed at the pass boundary: every
                        # pending bucket is consumed before any slice
                        # runs, so same-pass outbound spills land in
                        # fresh buckets and only become visible next
                        # pass — the schedule the concurrent engine
                        # reproduces bit-for-bit
                        batch = self._collect_pass_inbound(spill)
                    else:
                        batch = None
                    for slice_index in range(partition.num_slices):
                        if batch is not None:
                            if not batch or batch[0][0] != slice_index:
                                continue
                            inbound_events = batch.pop(0)[1]
                        else:
                            inbound = spill[slice_index]
                            if not inbound:
                                continue
                            if self._journal is not None:
                                self._journal.consume(slice_index)
                            spill[slice_index] = {}
                            inbound_events = list(inbound.values())
                        spill_read += (
                            len(inbound_events) * _SPILL_EVENT_BYTES
                        )
                        activation = self._activate(
                            pass_index,
                            slice_index,
                            inbound_events,
                            state,
                            traffic,
                            spill,
                        )
                        spill_written += (
                            activation.events_spilled * _SPILL_EVENT_BYTES
                        )
                        activations.append(activation)
                        pass_processed += activation.events_processed
                    if obs_metrics.ACTIVE is not None:
                        obs_metrics.round_tick(
                            "sliced",
                            pass_index,
                            events_processed=pass_processed,
                        )
                    watchdog.observe_round(
                        pass_processed, traffic.vertex_writes - writes_before
                    )
                    pass_index += 1
                    if self._journal is not None:
                        # a pass is the durability unit: everything above
                        # reaches stable storage before the checkpoint
                        # that references this commit can be captured
                        self._journal.commit(pass_index)
                    if self.resilience is not None:
                        self.resilience.maybe_checkpoint(
                            pass_index, float(pass_index), state, view
                        )
                # quiescent invariant sweep: repairs re-populate the spill
                # buffers and the pass loop resumes (see functional.py)
                if self.resilience is None:
                    break
                self.resilience.note_quiescence(float(pass_index))
                if not self.resilience.repair(
                    state,
                    float(pass_index),
                    inject=self._inject_repair,
                    restore=self._restore_checkpoint,
                ):
                    break
        finally:
            if self._journal is not None:
                self._journal.close()
        converged = True

        summary = None
        if self.resilience is not None:
            self.resilience.finalize(float(pass_index))
            summary = self.resilience.summary()
        return SlicedResult(
            values=state,
            activations=activations,
            traffic=traffic,
            spill_bytes_written=spill_written,
            spill_bytes_read=spill_read,
            converged=converged,
            resilience=summary,
        )

    # ------------------------------------------------------------------
    # Resilience callbacks
    # ------------------------------------------------------------------
    def _inject_repair(self, vertex: int, delta: float) -> None:
        """Queue a repair delta into the owning slice's spill buffer."""
        target = int(self.partition.slice_of_vertex[vertex])
        bucket = self._spill[target]
        event = Event(vertex=vertex, delta=delta)
        existing = bucket.get(vertex)
        bucket[vertex] = (
            existing.coalesced_with(event, self.spec.reduce)
            if existing is not None
            else event
        )
        self._journal_spill(target, event)

    def _restore_checkpoint(self, checkpoint) -> None:
        """Roll state and spill buffers back to a checkpoint."""
        self.state[:] = checkpoint.state
        for bucket, snap in zip(self._spill, checkpoint.queue_snapshot):
            bucket.clear()
            for v, e in snap.items():
                bucket[v] = Event(
                    vertex=e.vertex,
                    delta=e.delta,
                    generation=e.generation,
                    ready=e.ready,
                )
        if self._journal is not None:
            # in-memory rollback rewrote the buffers without history;
            # re-baseline the WAL so replay-to-commit stays equivalent
            self._journal.reset(
                [
                    {v: (e.delta, e.generation) for v, e in bucket.items()}
                    for bucket in self._spill
                ]
            )

    # ------------------------------------------------------------------
    def _absorb_spill(
        self,
        spill: List[Dict[int, Event]],
        target_slice: int,
        event: Event,
    ) -> None:
        """Coalesce one spilled event into its bucket and WAL it."""
        bucket = spill[target_slice]
        existing = bucket.get(event.vertex)
        bucket[event.vertex] = (
            existing.coalesced_with(event, self.spec.reduce)
            if existing is not None
            else event
        )
        self._journal_spill(target_slice, event)

    def _activate(
        self,
        pass_index: int,
        slice_index: int,
        inbound: List[Event],
        state: np.ndarray,
        traffic: TrafficCounters,
        spill: List[Dict[int, Event]],
    ) -> SliceActivation:
        """Swap a slice in, run it, spill outbound events."""
        self._now = float(pass_index)
        processed, rounds, spilled = run_slice_activation(
            self.partition,
            self.spec,
            pass_index,
            slice_index,
            inbound,
            state,
            traffic,
            lambda target, event: self._absorb_spill(spill, target, event),
            num_bins=self.num_bins,
            block_size=self.block_size,
            rounds_per_activation=self.rounds_per_activation,
            resilience=self.resilience,
        )
        if obs_trace.ACTIVE is not None:
            probe.slice_activation(
                slice_index,
                pass_index,
                events_in=len(inbound),
                events_processed=processed,
                events_spilled=spilled,
                rounds=rounds,
            )
        return SliceActivation(
            pass_index=pass_index,
            slice_index=slice_index,
            events_in=len(inbound),
            events_processed=processed,
            events_spilled=spilled,
            rounds=rounds,
        )


def build_sliced(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    *,
    num_slices: int = 1,
    queue_capacity: Optional[int] = None,
    auto_slice: bool = True,
    partition_fn=contiguous_partition,
    **kwargs,
) -> SlicedGraphPulse:
    """Partition a graph and build a sliced runner, auto-sizing slices.

    The construction half of :func:`run_sliced`, exposed separately so
    ``repro resume`` can rebuild the exact runner a durable run used
    (same deterministic auto-slice decision) and restore a checkpoint
    into it before running.  Slice-count normalization is
    :func:`resolve_partition`'s job — this helper adds nothing to it.
    """
    partition = resolve_partition(
        graph,
        num_slices=num_slices,
        queue_capacity=queue_capacity,
        auto_slice=auto_slice,
        partition_fn=partition_fn,
    )
    return SlicedGraphPulse(
        partition,
        spec,
        queue_capacity=queue_capacity,
        **kwargs,
    )


def run_sliced(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    *,
    num_slices: int = 1,
    queue_capacity: Optional[int] = None,
    auto_slice: bool = True,
    partition_fn=contiguous_partition,
    **kwargs,
) -> SlicedResult:
    """Partition a graph and run it sliced, auto-sizing the slice count.

    Convenience entry point for the Section IV-F flow: the graph is
    partitioned into ``num_slices`` slices and executed.  When a
    ``queue_capacity`` is given and the largest slice does not fit, the
    resulting :class:`repro.errors.QueueCapacityError` names the number
    of slices that would fit (``exc.required_slices``); with
    ``auto_slice`` (the default) the helper catches it and retries with
    that suggestion, otherwise the error propagates for the caller (or
    the CLI) to surface.
    """
    return build_sliced(
        graph,
        spec,
        num_slices=num_slices,
        queue_capacity=queue_capacity,
        auto_slice=auto_slice,
        partition_fn=partition_fn,
        **kwargs,
    ).run()


@dataclass
class SuperRound:
    """One synchronized step of the multi-accelerator runtime."""

    index: int
    events_processed_per_slice: List[int]
    messages_exchanged: int


@dataclass
class ParallelSlicedResult:
    """Output of a multi-accelerator run."""

    values: np.ndarray
    super_rounds: List[SuperRound]
    traffic: TrafficCounters
    converged: bool

    @property
    def num_super_rounds(self) -> int:
        return len(self.super_rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_exchanged for r in self.super_rounds)

    def load_balance(self) -> float:
        """Mean/max ratio of per-slice work (1.0 = perfectly balanced)."""
        totals = None
        for record in self.super_rounds:
            if totals is None:
                totals = list(record.events_processed_per_slice)
            else:
                for i, count in enumerate(record.events_processed_per_slice):
                    totals[i] += count
        if not totals or max(totals) == 0:
            return 1.0
        return (sum(totals) / len(totals)) / max(totals)


class ParallelSlicedGraphPulse:
    """Multi-accelerator execution (paper Section IV-F, option b).

    The paper names, but does not explore, housing all slices on
    "multiple accelerator chips ... while an interconnection network
    streams inter-slice events in real-time".  This runtime models that
    option: every slice owns an accelerator (its own coalescing queue)
    and all accelerators execute one round per *super-round*
    concurrently.  Events crossing slices travel over the modelled
    interconnect and are inserted into the remote queue at the start of
    the next super-round (one network hop of latency); slice-local
    events coalesce immediately as usual.

    The asynchronous model makes this safe: any delivery schedule
    converges to the same fixed point, which the tests assert against
    the single-accelerator engines.

    Prefer constructing through :func:`repro.core.engines.build_engine`
    (``name="parallel-sliced"``); direct construction remains supported
    for callers that need a custom :class:`Partition`.
    """

    def __init__(
        self,
        partition: Partition,
        spec: AlgorithmSpec,
        *,
        num_bins: int = 64,
        block_size: int = 128,
        max_super_rounds: int = 100_000,
    ):
        self.partition = partition
        self.spec = spec
        self.num_bins = num_bins
        self.block_size = block_size
        self.max_super_rounds = max_super_rounds

    # ------------------------------------------------------------------
    def run(self) -> ParallelSlicedResult:
        partition, spec = self.partition, self.spec
        graph = partition.graph
        state = spec.initial_state(graph)
        traffic = TrafficCounters()
        queues = [
            CoalescingQueue(
                graph.num_vertices,
                spec.reduce,
                num_bins=self.num_bins,
                block_size=self.block_size,
            )
            for _ in range(partition.num_slices)
        ]
        for vertex, delta in spec.initial_events(graph).items():
            target = int(partition.slice_of_vertex[vertex])
            queues[target].insert(Event(vertex=vertex, delta=delta))

        super_rounds: List[SuperRound] = []
        # inter-accelerator messages in flight toward each slice
        in_flight: List[List[Event]] = [[] for _ in range(partition.num_slices)]
        index = 0
        while any(not q.is_empty for q in queues) or any(in_flight):
            if index >= self.max_super_rounds:
                raise RuntimeError(
                    f"{spec.name} did not converge within "
                    f"{self.max_super_rounds} super-rounds"
                )
            # deliver last super-round's network traffic
            messages = 0
            for slice_index, pending in enumerate(in_flight):
                messages += len(pending)
                for event in pending:
                    queues[slice_index].insert(event)
            in_flight = [[] for _ in range(partition.num_slices)]

            processed_per_slice = []
            for slice_index, queue in enumerate(queues):
                processed = self._run_local_round(
                    slice_index, queue, state, traffic, in_flight
                )
                processed_per_slice.append(processed)
            super_rounds.append(
                SuperRound(
                    index=index,
                    events_processed_per_slice=processed_per_slice,
                    messages_exchanged=messages,
                )
            )
            if obs_trace.ACTIVE is not None:
                probe.super_round(
                    index,
                    messages=messages,
                    events_processed=sum(processed_per_slice),
                )
            index += 1

        return ParallelSlicedResult(
            values=state,
            super_rounds=super_rounds,
            traffic=traffic,
            converged=True,
        )

    # ------------------------------------------------------------------
    def _run_local_round(
        self,
        slice_index: int,
        queue: CoalescingQueue,
        state: np.ndarray,
        traffic: TrafficCounters,
        in_flight: List[List[Event]],
    ) -> int:
        """One round on one accelerator; returns events processed."""
        partition, spec = self.partition, self.spec
        graph = partition.graph
        processed = 0
        for bin_index in range(queue.num_bins):
            batch = queue.drain_bin(bin_index)
            if not batch:
                continue
            processed += len(batch)
            lines = {
                graph.vertex_address(e.vertex) // _CACHE_LINE for e in batch
            }
            traffic.vertex_bytes_fetched += 2 * len(lines) * _CACHE_LINE
            traffic.vertex_bytes_useful += (
                2 * len(batch) * graph.vertex_bytes
            )
            for event in batch:
                u = event.vertex
                traffic.vertex_reads += 1
                result = spec.apply(float(state[u]), event.delta)
                if not result.changed:
                    continue
                state[u] = result.state
                traffic.vertex_writes += 1
                if not spec.should_propagate(result.change):
                    continue
                degree = graph.out_degree(u)
                if degree == 0:
                    continue
                traffic.edge_reads += degree
                neighbors = graph.neighbors(u)
                weights = (
                    graph.edge_weights(u) if spec.uses_weights else None
                )
                generation = event.generation + 1
                for k in range(degree):
                    dst = int(neighbors[k])
                    w = float(weights[k]) if weights is not None else 1.0
                    delta = spec.propagate(result.change, u, dst, w, degree)
                    if delta == spec.identity:
                        continue
                    new_event = Event(
                        vertex=dst, delta=delta, generation=generation
                    )
                    target = int(partition.slice_of_vertex[dst])
                    if target == slice_index:
                        queue.insert(new_event)
                    else:
                        in_flight[target].append(new_event)
        return processed
