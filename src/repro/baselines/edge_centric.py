"""Memory-access-pattern analyses of conventional models (Fig 1, Table I).

The paper's Figure 1 and Table I contrast the access patterns of the
Vertex-Centric Push/Pull and Edge-Centric paradigms with GraphPulse's
event-driven pattern.  These analyzers run one synchronous iteration
schedule of a delta algorithm and count, per model, the random versus
sequential reads and writes plus atomic operations the model would
issue — the quantitative backing for Table I that the
``bench_table1_models`` benchmark prints.

The counts are per-execution totals over the full run to convergence,
derived from the same BSP iteration trace so the comparison is apples to
apples (identical active sets and convergence behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..algorithms.base import AlgorithmSpec
from ..graph import CSRGraph
from .bsp import BSPIteration, SynchronousDeltaEngine

__all__ = ["ModelAccessProfile", "profile_models"]


@dataclass
class ModelAccessProfile:
    """Access-pattern totals for one processing paradigm."""

    model: str
    random_reads: int = 0
    random_writes: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0
    atomic_updates: int = 0
    synchronizations: int = 0
    #: bookkeeping operations for tracking the active set
    active_set_ops: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "random_reads": self.random_reads,
            "random_writes": self.random_writes,
            "sequential_reads": self.sequential_reads,
            "sequential_writes": self.sequential_writes,
            "atomic_updates": self.atomic_updates,
            "synchronizations": self.synchronizations,
            "active_set_ops": self.active_set_ops,
        }


def profile_models(graph: CSRGraph, spec: AlgorithmSpec) -> Dict[str, ModelAccessProfile]:
    """Count per-model access patterns over a full run to convergence.

    Returns profiles for ``push``, ``pull``, ``edge-centric`` and
    ``event-driven`` (GraphPulse's model).
    """
    push = ModelAccessProfile("push")
    pull = ModelAccessProfile("pull")
    edge_centric = ModelAccessProfile("edge-centric")
    event_driven = ModelAccessProfile("event-driven")
    n, m = graph.num_vertices, graph.num_edges

    def account(iteration: BSPIteration) -> None:
        frontier = len(iteration.active_vertices)
        frontier_edges = iteration.edges_scanned
        touched = iteration.touched_vertices

        # Vertex-centric PUSH: read own value (via active list), stream
        # out-edges, random atomic read-modify-write per destination.
        push.sequential_reads += frontier  # frontier + own property
        push.sequential_reads += frontier_edges  # edge list entries
        push.random_reads += frontier_edges  # destination values
        push.random_writes += frontier_edges
        push.atomic_updates += frontier_edges
        push.active_set_ops += frontier + touched
        push.synchronizations += 1

        # Vertex-centric PULL: every vertex scans its in-edges and
        # randomly reads each in-neighbour's value; writes own value
        # sequentially.  No atomics, but reads are redundant for
        # unchanged sources.
        pull.sequential_reads += m  # full in-edge scan
        pull.random_reads += m  # source property gathers
        pull.sequential_writes += n  # own value update
        pull.active_set_ops += frontier
        pull.synchronizations += 1

        # EDGE-CENTRIC: stream the whole sorted edge list, read source
        # (random or redundant) and update destination.
        edge_centric.sequential_reads += m  # edge records
        edge_centric.random_reads += m  # source values
        edge_centric.random_writes += m  # destination values (locked)
        edge_centric.atomic_updates += m
        edge_centric.synchronizations += 1

        # EVENT-DRIVEN (GraphPulse): events carry data, so the only
        # vertex-memory operations are the per-event read-modify-write of
        # the destination, made sequential by binning; edges stream.
        event_driven.sequential_reads += frontier  # binned vertex reads
        event_driven.sequential_writes += frontier
        event_driven.sequential_reads += frontier_edges  # edge stream
        # no atomics (coalescing serializes per-vertex events), no
        # barriers (asynchronous rounds), no explicit active set (the
        # queue is the active set)

    # iteration substrate for the access-profile model  # repro: allow(ENG-001)
    SynchronousDeltaEngine(graph, spec).run(on_iteration=account)
    return {
        "push": push,
        "pull": pull,
        "edge-centric": edge_centric,
        "event-driven": event_driven,
    }
