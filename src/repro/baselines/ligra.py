"""Ligra-like direction-optimizing software framework (the paper's
software baseline, Shun & Blelloch PPoPP'13).

Ligra's core primitive is ``edgeMap`` over a frontier with automatic
direction selection: a *sparse* (push) traversal when the frontier is
small, a *dense* (pull) traversal when the frontier's out-edge count
exceeds a threshold fraction of the graph (|F| + outdeg(F) > (n+m)/20 in
Ligra).  We reproduce that scheduling decision per iteration on top of
the BSP delta engine and count the memory operations each direction
performs — the counts the CPU cost model converts into the runtime used
for Figure 10's speedup denominators.

Operation accounting per iteration:

sparse/push: the frontier array streams sequentially; each active
vertex's out-edge list streams sequentially; every out-edge performs a
random read-modify-write (an atomic CAS in Ligra) on the destination's
accumulator.

dense/pull: every vertex scans its in-edge list (the whole edge array
streams); each in-edge checks the source's frontier membership and
change value — a random read; destination-side accumulation is local,
so no atomics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..graph import CSRGraph
from ..obs import probe
from ..obs import trace as obs_trace
from .bsp import BSPIteration, SynchronousDeltaEngine
from .cpu_model import CPUCostModel, CPUModelConfig, OpCounts

__all__ = ["LigraEngine", "LigraResult"]

#: Ligra's dense/sparse switch: dense when |F| + outdeg(F) > (n + m) / 20
DENSE_THRESHOLD_DIVISOR = 20


@dataclass
class LigraResult:
    values: np.ndarray
    num_iterations: int
    counts: OpCounts
    seconds: float
    #: per-iteration direction decisions ("push" / "pull")
    directions: List[str] = field(default_factory=list)
    converged: bool = True

    @property
    def pull_fraction(self) -> float:
        if not self.directions:
            return 0.0
        return self.directions.count("pull") / len(self.directions)


class LigraEngine:
    """Direction-optimizing BSP framework with CPU cost accounting."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        *,
        cpu_config: Optional[CPUModelConfig] = None,
        random_footprint_bytes: Optional[float] = None,
        max_iterations: int = 100_000,
    ):
        """
        Parameters
        ----------
        random_footprint_bytes:
            Size of the randomly-accessed working set for the cache
            model.  Defaults to this graph's vertex array; pass the
            *original* dataset's footprint when the graph is a scaled
            proxy (see DESIGN.md).
        """
        self.graph = graph
        self.spec = spec
        # the BSP engine is this cost model's internal iteration
        # substrate, not a user-facing run  # repro: allow(ENG-001)
        self.engine = SynchronousDeltaEngine(
            graph, spec, max_iterations=max_iterations
        )
        footprint = (
            random_footprint_bytes
            if random_footprint_bytes is not None
            else graph.num_vertices * graph.vertex_bytes
        )
        self.cost_model = CPUCostModel(
            config=cpu_config or CPUModelConfig(),
            random_footprint_bytes=footprint,
        )
        self._dense_threshold = (
            graph.num_vertices + graph.num_edges
        ) // DENSE_THRESHOLD_DIVISOR

    # ------------------------------------------------------------------
    def run(self) -> LigraResult:
        graph = self.graph
        counts = OpCounts()
        directions: List[str] = []

        def account(iteration: BSPIteration) -> None:
            frontier_size = len(iteration.active_vertices)
            frontier_edges = iteration.edges_scanned
            counts.iterations += 1
            counts.vertex_work += frontier_size
            # apply phase reads+writes the frontier's states (random
            # within the vertex array, gathered by the frontier order)
            counts.random_reads += frontier_size
            counts.random_writes += frontier_size
            if frontier_size + frontier_edges > self._dense_threshold:
                directions.append("pull")
                # dense: scan every in-edge list once
                counts.sequential_bytes += graph.num_edges * graph.edge_bytes
                counts.sequential_bytes += graph.num_vertices * graph.vertex_bytes
                counts.random_reads += graph.num_edges  # source lookups
                counts.edge_work += graph.num_edges
            else:
                directions.append("push")
                counts.sequential_bytes += frontier_size * 8  # frontier array
                counts.sequential_bytes += frontier_edges * graph.edge_bytes
                counts.random_reads += frontier_edges
                counts.atomic_updates += frontier_edges
                counts.edge_work += frontier_edges
            if obs_trace.ACTIVE is not None:
                # Same shared round schema; the Ligra time domain is the
                # iteration index, with the direction decision attached.
                probe.round_span(
                    "ligra",
                    iteration.index,
                    float(iteration.index),
                    float(iteration.index + 1),
                    events_processed=frontier_size,
                    events_produced=iteration.touched_vertices,
                    edges_scanned=frontier_edges,
                    direction=directions[-1],
                )

        result = self.engine.run(on_iteration=account)
        seconds = self.cost_model.seconds(counts)
        return LigraResult(
            values=result.values,
            num_iterations=result.num_iterations,
            counts=counts,
            seconds=seconds,
            directions=directions,
            converged=result.converged,
        )
