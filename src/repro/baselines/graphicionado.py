"""Graphicionado accelerator model (Ham et al., MICRO'16) — the paper's
hardware baseline.

Graphicionado is a pipelined vertex-centric BSP accelerator.  Following
the paper's methodology (Section VI-A) we model it generously:

- zero-cost active-vertex management;
- on-chip temporary (shadow) vertex-property memory large enough for the
  whole graph, so scatter updates never go off-chip;
- a memory subsystem identical to GraphPulse's (same 4-channel DDR3).

Per BSP iteration the pipeline:

1. streams each active vertex's property (8 B, sequential over the
   active array) and its out-edge slice from DRAM;
2. processes edges at 1 edge/cycle/stream across ``num_streams``
   parallel streams (8, matching GraphPulse's processor count);
3. runs an apply phase reading the shadow updates and writing changed
   vertex properties back to DRAM.

Iteration time is the slower of the memory system and the processing
pipeline, plus the apply phase — the standard throughput model for this
class of accelerator.  Off-chip bytes come out of the shared DRAM model,
giving the Figure 11 denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..graph import CSRGraph
from ..memory.dram import DRAMConfig, DRAMSystem
from ..memory.request import MemoryRequest
from ..sim.stats import StatSet
from .bsp import BSPIteration, SynchronousDeltaEngine

__all__ = ["GraphicionadoAccelerator", "GraphicionadoResult"]

_LINE = 64


@dataclass
class GraphicionadoResult:
    values: np.ndarray
    total_cycles: int
    num_iterations: int
    edges_processed: int
    dram_stats: Dict[str, float]
    clock_ghz: float
    converged: bool

    @property
    def seconds(self) -> float:
        return self.total_cycles * 1e-9 / self.clock_ghz

    @property
    def offchip_bytes(self) -> float:
        return self.dram_stats.get("bytes", 0.0)


class GraphicionadoAccelerator:
    """Throughput/bandwidth model of the Graphicionado pipeline."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        *,
        num_streams: int = 8,
        clock_ghz: float = 1.0,
        dram_config: Optional[DRAMConfig] = None,
        #: pipeline depth: cycles from issue to update for one element
        pipeline_fill_cycles: int = 20,
        max_iterations: int = 100_000,
    ):
        self.graph = graph
        self.spec = spec
        self.num_streams = num_streams
        self.clock_ghz = clock_ghz
        self.pipeline_fill_cycles = pipeline_fill_cycles
        # the BSP engine is this cost model's internal iteration
        # substrate, not a user-facing run  # repro: allow(ENG-001)
        self.engine = SynchronousDeltaEngine(
            graph, spec, max_iterations=max_iterations
        )
        self.dram = DRAMSystem(dram_config or DRAMConfig())
        self.stats = StatSet("graphicionado")

    # ------------------------------------------------------------------
    def run(self) -> GraphicionadoResult:
        graph = self.graph
        cursor = 0
        edges_total = 0
        iterations = 0

        def time_iteration(iteration: BSPIteration) -> None:
            nonlocal cursor, edges_total, iterations
            iterations += 1
            start = cursor
            active = iteration.active_vertices
            edges = iteration.edges_scanned
            edges_total += edges

            # --- processing phase: stream properties + edge slices ----
            # Active vertices are distributed over the parallel streams;
            # each stream double-buffers: it fetches its next vertex's
            # edge slice while processing the current one, and consumes
            # edges at one per cycle.
            mem_done = start
            if len(active):
                # active source properties stream as one dense run
                result = self.dram.access(
                    MemoryRequest(
                        graph.vertex_address(int(active[0])),
                        max(len(active) * graph.vertex_bytes, 1),
                        kind="vertex",
                    ),
                    start,
                )
                mem_done = max(mem_done, result.done_cycle)
            fetch_cursor = [start] * self.num_streams
            process_cursor = [start] * self.num_streams
            for idx, v in enumerate(active.tolist()):
                lo = int(graph.offsets[v])
                hi = int(graph.offsets[v + 1])
                if hi == lo:
                    continue
                s = idx % self.num_streams
                fetched = self.dram.access(
                    MemoryRequest(
                        graph.edge_address(lo),
                        (hi - lo) * graph.edge_bytes,
                        kind="edge",
                    ),
                    fetch_cursor[s],
                ).done_cycle
                begin = max(process_cursor[s], fetched)
                process_cursor[s] = begin + (hi - lo)  # 1 edge/cycle
                # next fetch may start once this slice enters processing
                fetch_cursor[s] = begin
            processing_end = (
                max(max(process_cursor), mem_done) + self.pipeline_fill_cycles
            )

            # --- apply phase: write back touched properties ------------
            touched = iteration.touched_vertices
            apply_mem_done = processing_end
            if touched:
                result = self.dram.access(
                    MemoryRequest(
                        0,
                        max(touched * graph.vertex_bytes, 1),
                        is_write=True,
                        kind="vertex",
                    ),
                    processing_end,
                )
                apply_mem_done = result.done_cycle
            apply_cycles = -(-touched // self.num_streams) if touched else 0
            cursor = max(apply_mem_done, processing_end + apply_cycles)
            self.stats.add("iterations")
            self.stats.add("active_vertices", len(active))

        result = self.engine.run(on_iteration=time_iteration)
        return GraphicionadoResult(
            values=result.values,
            total_cycles=cursor,
            num_iterations=iterations,
            edges_processed=edges_total,
            dram_stats=self.dram.stats.snapshot(),
            clock_ghz=self.clock_ghz,
            converged=result.converged,
        )
