"""Analytic CPU timing model for the software baseline (Table III).

The paper measures Ligra on a 12-core Intel Xeon E5-2697 v2 @ 2.7 GHz
with a 12 MB last-level cache and the same 4x17 GB/s DDR3 memory as the
accelerator.  We reproduce Ligra's *algorithmic behaviour* exactly (see
:mod:`repro.baselines.ligra`) and convert its measured operation counts
to time with this model.

The model charges, per iteration:

- sequential traffic (edge streams, frontier arrays) against the
  aggregate DRAM bandwidth;
- random accesses (vertex-property gathers/scatters) as cache-missing
  loads with limited memory-level parallelism per core — the dominant
  cost on power-law graphs, and 15x dearer still when atomic (the paper
  cites CAS being >15x slower in RAM than in L1);
- per-edge/per-vertex compute against the cores' issue rate;
- a synchronization barrier per iteration.

Cache behaviour is *footprint-based*: the fraction of random vertex
accesses that hit in the LLC is the fraction of the vertex array that
fits.  Proxy graphs are small, so by default the footprint of the
*original* dataset each proxy stands in for should be supplied — the
miss rate is an intensive property the scaled-down proxy cannot
reproduce (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CPUModelConfig", "CPUCostModel", "OpCounts"]


@dataclass
class OpCounts:
    """Operation counts accumulated by an instrumented software engine."""

    sequential_bytes: float = 0.0
    random_reads: float = 0.0
    random_writes: float = 0.0
    atomic_updates: float = 0.0
    edge_work: float = 0.0  #: per-edge compute operations
    vertex_work: float = 0.0  #: per-vertex compute operations
    iterations: int = 0

    def merged_with(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            sequential_bytes=self.sequential_bytes + other.sequential_bytes,
            random_reads=self.random_reads + other.random_reads,
            random_writes=self.random_writes + other.random_writes,
            atomic_updates=self.atomic_updates + other.atomic_updates,
            edge_work=self.edge_work + other.edge_work,
            vertex_work=self.vertex_work + other.vertex_work,
            iterations=self.iterations + other.iterations,
        )


@dataclass(frozen=True)
class CPUModelConfig:
    """Hardware parameters of the software platform (Table III)."""

    num_cores: int = 12
    frequency_ghz: float = 2.7
    llc_bytes: int = 12 * 1024 * 1024
    dram_bandwidth_bytes_per_s: float = 4 * 17e9
    dram_latency_ns: float = 80.0
    llc_latency_ns: float = 12.0
    #: outstanding misses a core can sustain (MSHRs / run-ahead)
    memory_level_parallelism: float = 8.0
    #: CAS on RAM-resident data is >15x slower than cache-resident
    atomic_penalty: float = 15.0
    #: cycles of compute per edge operation (gather+apply arithmetic)
    cycles_per_edge_op: float = 4.0
    #: cycles of compute per vertex operation
    cycles_per_vertex_op: float = 6.0
    barrier_latency_s: float = 5e-6
    cache_line_bytes: int = 64


@dataclass
class CPUCostModel:
    """Converts :class:`OpCounts` into seconds on the modelled CPU."""

    config: CPUModelConfig = field(default_factory=CPUModelConfig)
    #: bytes of randomly-accessed state (the vertex property array at the
    #: modelled scale); sets the LLC hit fraction
    random_footprint_bytes: float = 0.0

    def llc_hit_fraction(self) -> float:
        """Fraction of random accesses served by the LLC."""
        if self.random_footprint_bytes <= 0:
            return 1.0
        return min(1.0, self.config.llc_bytes / self.random_footprint_bytes)

    def seconds(self, counts: OpCounts) -> float:
        """Total runtime: overlapped streams bound by the slowest, plus
        non-overlappable atomics and barriers."""
        cfg = self.config
        hit = self.llc_hit_fraction()
        miss = 1.0 - hit

        random_ops = counts.random_reads + counts.random_writes
        # average latency of one random access, hiding misses behind MLP
        miss_cost = cfg.dram_latency_ns / cfg.memory_level_parallelism
        hit_cost = cfg.llc_latency_ns / cfg.memory_level_parallelism
        random_s = (
            random_ops * (miss * miss_cost + hit * hit_cost) * 1e-9
            / cfg.num_cores
        )
        # missing random accesses also consume a cache line of bandwidth
        random_bytes = random_ops * miss * cfg.cache_line_bytes
        bandwidth_s = (
            counts.sequential_bytes + random_bytes
        ) / cfg.dram_bandwidth_bytes_per_s
        compute_cycles = (
            counts.edge_work * cfg.cycles_per_edge_op
            + counts.vertex_work * cfg.cycles_per_vertex_op
        )
        compute_s = compute_cycles / (cfg.frequency_ghz * 1e9 * cfg.num_cores)

        atomic_cost = miss_cost * (miss * cfg.atomic_penalty + hit)
        atomic_s = counts.atomic_updates * atomic_cost * 1e-9 / cfg.num_cores

        overlapped = max(random_s, bandwidth_s, compute_s)
        barriers = counts.iterations * cfg.barrier_latency_s
        return overlapped + atomic_s + barriers
