"""Comparison baselines: BSP engine, Ligra, Graphicionado, model profiles."""

from .bsp import BSPIteration, BSPResult, SynchronousDeltaEngine
from .cpu_model import CPUCostModel, CPUModelConfig, OpCounts
from .edge_centric import ModelAccessProfile, profile_models
from .graphicionado import GraphicionadoAccelerator, GraphicionadoResult
from .ligra import LigraEngine, LigraResult

__all__ = [
    "SynchronousDeltaEngine",
    "BSPIteration",
    "BSPResult",
    "CPUModelConfig",
    "CPUCostModel",
    "OpCounts",
    "LigraEngine",
    "LigraResult",
    "GraphicionadoAccelerator",
    "GraphicionadoResult",
    "ModelAccessProfile",
    "profile_models",
]
