"""Bulk-synchronous (iteration-barrier) execution of delta algorithms.

This is the conventional execution model GraphPulse is compared against
(Section II): per iteration, all pending contributions are applied to
vertex states, changes are computed, and new contributions are scattered
to neighbours; a global barrier separates iterations.  Both software
baselines (Ligra) and the Graphicionado accelerator model run on top of
this engine — they differ only in how each iteration's operations are
*timed*, which the ``on_iteration`` hook exposes.

The fixed point is identical to the asynchronous engines' (the reorder
property guarantees it), which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..graph import CSRGraph
from ..obs import probe
from ..obs import trace as obs_trace

__all__ = ["SynchronousDeltaEngine", "BSPIteration", "BSPResult"]


@dataclass
class BSPIteration:
    """What happened in one BSP superstep (input to timing models)."""

    index: int
    #: vertices whose state changed and which scatter this iteration
    active_vertices: np.ndarray
    #: per-active-vertex change values (aligned with active_vertices)
    changes: np.ndarray
    #: total out-edges scanned while scattering
    edges_scanned: int
    #: vertices that received at least one contribution
    touched_vertices: int


@dataclass
class BSPResult:
    values: np.ndarray
    iterations: List[BSPIteration]
    converged: bool

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_edges_scanned(self) -> int:
        return sum(it.edges_scanned for it in self.iterations)


class SynchronousDeltaEngine:
    """Executes an :class:`AlgorithmSpec` under the BSP model."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        *,
        max_iterations: int = 100_000,
    ):
        self.graph = graph
        self.spec = spec
        self.max_iterations = max_iterations

    def run(
        self,
        on_iteration: Optional[Callable[[BSPIteration], None]] = None,
    ) -> BSPResult:
        graph, spec = self.graph, self.spec
        n = graph.num_vertices
        state = spec.initial_state(graph)
        identity = spec.identity

        pending = np.full(n, identity, dtype=np.float64)
        has_pending = np.zeros(n, dtype=bool)
        for vertex, delta in spec.initial_events(graph).items():
            pending[vertex] = delta
            has_pending[vertex] = True

        iterations: List[BSPIteration] = []
        converged = False
        for index in range(self.max_iterations):
            if not has_pending.any():
                converged = True
                break
            iteration = self._superstep(index, state, pending, has_pending)
            iterations.append(iteration)
            if obs_trace.ACTIVE is not None:
                # Round-level telemetry in the shared cross-engine schema;
                # the BSP time domain is the superstep index.
                probe.round_span(
                    "bsp",
                    index,
                    float(index),
                    float(index + 1),
                    events_processed=len(iteration.active_vertices),
                    events_produced=iteration.touched_vertices,
                    edges_scanned=iteration.edges_scanned,
                )
            if on_iteration is not None:
                on_iteration(iteration)
        else:  # pragma: no cover - guards runaway configurations
            raise RuntimeError(
                f"{spec.name} did not converge within {self.max_iterations} "
                "BSP iterations"
            )
        if not has_pending.any():
            converged = True
        return BSPResult(values=state, iterations=iterations, converged=converged)

    # ------------------------------------------------------------------
    def _superstep(
        self,
        index: int,
        state: np.ndarray,
        pending: np.ndarray,
        has_pending: np.ndarray,
    ) -> BSPIteration:
        graph, spec = self.graph, self.spec
        identity = spec.identity

        # Apply phase: fold pending contributions into vertex states.
        candidates = np.flatnonzero(has_pending)
        active: List[int] = []
        changes: List[float] = []
        for v in candidates.tolist():
            result = spec.apply(float(state[v]), float(pending[v]))
            pending[v] = identity
            has_pending[v] = False
            if not result.changed:
                continue
            state[v] = result.state
            if spec.should_propagate(result.change):
                active.append(v)
                changes.append(result.change)

        # Scatter phase: push changes along out-edges into next pending.
        edges_scanned = 0
        touched = 0
        for v, change in zip(active, changes):
            degree = graph.out_degree(v)
            if degree == 0:
                continue
            edges_scanned += degree
            neighbors = graph.neighbors(v)
            weights = graph.edge_weights(v) if spec.uses_weights else None
            for k in range(degree):
                dst = int(neighbors[k])
                weight = float(weights[k]) if weights is not None else 1.0
                delta = spec.propagate(change, v, dst, weight, degree)
                if delta == identity:
                    continue
                if has_pending[dst]:
                    pending[dst] = spec.reduce(float(pending[dst]), delta)
                else:
                    pending[dst] = delta
                    has_pending[dst] = True
                    touched += 1

        return BSPIteration(
            index=index,
            active_vertices=np.array(active, dtype=np.int64),
            changes=np.array(changes, dtype=np.float64),
            edges_scanned=edges_scanned,
            touched_vertices=touched,
        )
