"""Simulation kernel: discrete-event core and resource-timing primitives."""

from .kernel import BandwidthResource, PipelinedResource, Resource, Simulator
from .stats import StatSet, merge_stats

__all__ = [
    "Simulator",
    "Resource",
    "PipelinedResource",
    "BandwidthResource",
    "StatSet",
    "merge_stats",
]
