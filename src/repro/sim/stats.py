"""Statistics registry for simulator components.

Every modelled component (DRAM channel, crossbar port, processor, queue)
owns a :class:`StatSet`.  Benchmarks and figures read *only* these stats;
they never reach into component internals, which keeps the measurement
surface explicit and stable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Optional, Set

__all__ = ["StatSet", "merge_stats"]


class StatSet:
    """A named bag of counters with a few convenience operations.

    Keys are *counters* by default (summed when StatSets merge).  Keys
    written through :meth:`max` — peak occupancies, high-water marks —
    are tagged as *gauges* and merge with ``max`` instead, so combining
    per-slice or per-channel stats never sums a peak.
    """

    def __init__(self, name: str = "stats"):
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)
        self._gauges: Set[str] = set()

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment a counter (created on first use)."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Overwrite a counter (for gauges like peak occupancy)."""
        self._counters[key] = value

    def max(self, key: str, value: float) -> None:
        """Keep the running maximum of a gauge (tags the key as one)."""
        self._gauges.add(key)
        if value > self._counters.get(key, float("-inf")):
            self._counters[key] = value

    def mark_gauge(self, key: str) -> None:
        """Tag a key as a gauge without writing it."""
        self._gauges.add(key)

    def is_gauge(self, key: str) -> bool:
        return key in self._gauges

    def get(self, key: str, default: float = 0.0) -> float:
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters[key]

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterable[str]:
        return self._counters.keys()

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe counter ratio (0 when the denominator is 0)."""
        denom = self._counters.get(denominator, 0.0)
        return self._counters.get(numerator, 0.0) / denom if denom else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, suitable for reports and assertions."""
        return dict(self._counters)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{k}={v:g}" for k, v in sorted(self._counters.items())
        )
        return f"StatSet({self.name}: {inner})"


def merge_stats(
    stat_sets: Iterable[StatSet], name: str = "merged"
) -> StatSet:
    """Combine several StatSets (e.g. all DRAM channels).

    Counters sum; gauge-tagged keys (written via :meth:`StatSet.max`,
    e.g. ``peak_occupancy``) take the maximum — summing a peak across
    slices or channels would fabricate an occupancy no component ever
    saw.
    """
    merged = StatSet(name)
    for stats in stat_sets:
        for key, value in stats.snapshot().items():
            if stats.is_gauge(key):
                merged.max(key, value)
            else:
                merged.add(key, value)
    return merged
