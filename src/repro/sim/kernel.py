"""Cycle-level simulation kernel (stand-in for the Structural Simulation
Toolkit the paper's evaluation is built on).

Two complementary facilities:

1. A discrete-event :class:`Simulator` — a cycle-stamped callback heap.
   Components schedule work at future cycles; the kernel advances time to
   the next pending event.  Used by component-level tests and by models
   that genuinely need callbacks.

2. Resource-timing primitives (:class:`Resource`,
   :class:`PipelinedResource`, :class:`BandwidthResource`) implementing
   *next-free-cycle* semantics.  A hardware unit that serves one request
   at a time is fully described by when it next becomes free; a request
   arriving at cycle ``t`` starts at ``max(t, next_free)`` and occupies
   the unit for its service time.  All contention in the accelerator
   models (DRAM banks and buses, crossbar ports, coalescer pipelines,
   generation streams) is expressed with these primitives, which makes
   the cycle models deterministic and fast enough for Python while still
   capturing queueing, bandwidth saturation and pipelining — the effects
   the paper's figures measure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..obs import probe
from ..obs import trace as obs_trace
from .stats import StatSet

__all__ = [
    "Simulator",
    "Resource",
    "PipelinedResource",
    "BandwidthResource",
]


@dataclass(order=True)
class _ScheduledEvent:
    cycle: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """Minimal discrete-event kernel with integer cycle time."""

    def __init__(self):
        self.now: int = 0
        self._heap: List[_ScheduledEvent] = []
        self._sequence = 0
        self.stats = StatSet("simulator")

    def at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at an absolute cycle."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule at cycle {cycle}; now is {self.now}"
            )
        heapq.heappush(
            self._heap, _ScheduledEvent(cycle, self._sequence, callback)
        )
        self._sequence += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run all callbacks of the next pending cycle; False when idle."""
        if not self._heap:
            return False
        cycle = self._heap[0].cycle
        self.now = cycle
        while self._heap and self._heap[0].cycle == cycle:
            event = heapq.heappop(self._heap)
            event.callback()
            self.stats.add("events_executed")
        return True

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Drain the event heap; returns the final cycle.

        ``max_cycles`` bounds the simulated horizon (events beyond it
        stay pending), protecting tests from livelocked models.
        """
        while self._heap:
            if max_cycles is not None and self._heap[0].cycle > max_cycles:
                self.now = max_cycles
                break
            self.step()
        return self.now


class Resource:
    """A unit that serves one request at a time (next-free-cycle model)."""

    def __init__(self, name: str):
        self.name = name
        self.next_free: int = 0
        self.stats = StatSet(name)

    def acquire(self, at: int, occupancy: int) -> int:
        """Reserve the unit for ``occupancy`` cycles; returns start cycle."""
        if occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        start = max(at, self.next_free)
        self.next_free = start + occupancy
        self.stats.add("requests")
        self.stats.add("busy_cycles", occupancy)
        self.stats.add("wait_cycles", start - at)
        if obs_trace.ACTIVE is not None:
            probe.resource_busy(self.name, "busy", start, occupancy)
        return start

    def utilization(self, horizon: int) -> float:
        """Busy fraction of the first ``horizon`` cycles.

        Returns the *true* ratio — a value above 1.0 means the unit was
        reserved past the horizon (oversubscription), which is recorded
        in the ``oversubscribed`` stat rather than silently clamped.
        """
        if horizon <= 0:
            return 0.0
        ratio = self.stats.get("busy_cycles") / horizon
        if ratio > 1.0:
            self.stats.max("oversubscribed", ratio)
        return ratio

    def reset(self) -> None:
        self.next_free = 0
        self.stats.clear()


class PipelinedResource:
    """A pipelined unit: issues every ``initiation_interval`` cycles,
    results emerge ``latency`` cycles after issue.

    Models the 4-stage coalescer FPA pipeline ("insertion units are
    pipelined so that a bin can accept multiple events in consecutive
    cycles") and similar structures.
    """

    def __init__(self, name: str, initiation_interval: int, latency: int):
        if initiation_interval < 1:
            raise ValueError("initiation_interval must be >= 1")
        if latency < initiation_interval:
            raise ValueError("latency must be >= initiation_interval")
        self.name = name
        self.initiation_interval = initiation_interval
        self.latency = latency
        self.next_issue: int = 0
        self.stats = StatSet(name)

    def issue(self, at: int) -> Tuple[int, int]:
        """Issue one operation; returns ``(start_cycle, done_cycle)``."""
        start = max(at, self.next_issue)
        self.next_issue = start + self.initiation_interval
        self.stats.add("issued")
        self.stats.add("wait_cycles", start - at)
        if obs_trace.ACTIVE is not None:
            probe.resource_busy(self.name, "issue", start, self.latency)
        return start, start + self.latency

    def reset(self) -> None:
        self.next_issue = 0
        self.stats.clear()


class BandwidthResource:
    """A bus/link moving ``bytes_per_cycle``; transfers serialize.

    Fractional rates are supported (a DDR3-1066 channel moves ~8.5 B per
    1 GHz accelerator cycle); time is still reported in whole cycles.
    """

    def __init__(self, name: str, bytes_per_cycle: float):
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.next_free: int = 0
        self.stats = StatSet(name)

    def transfer(self, at: int, num_bytes: int) -> Tuple[int, int]:
        """Move ``num_bytes``; returns ``(start_cycle, done_cycle)``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        start = max(at, self.next_free)
        duration = max(
            1, int(round(num_bytes / self.bytes_per_cycle))
        ) if num_bytes else 0
        self.next_free = start + duration
        self.stats.add("transfers")
        self.stats.add("bytes", num_bytes)
        self.stats.add("busy_cycles", duration)
        self.stats.add("wait_cycles", start - at)
        if obs_trace.ACTIVE is not None:
            probe.resource_busy(
                self.name, "xfer", start, duration, bytes=num_bytes
            )
        return start, start + duration

    def utilization(self, horizon: int) -> float:
        """True busy ratio over ``horizon``; see :meth:`Resource.utilization`."""
        if horizon <= 0:
            return 0.0
        ratio = self.stats.get("busy_cycles") / horizon
        if ratio > 1.0:
            self.stats.max("oversubscribed", ratio)
        return ratio

    def reset(self) -> None:
        self.next_free = 0
        self.stats.clear()
