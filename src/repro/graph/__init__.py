"""Graph substrate: CSR storage, generators, dataset proxies, partitioning."""

from .csr import CSRGraph
from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset
from .generators import (
    binary_tree_graph,
    chain_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    random_weights,
    rmat_graph,
    small_world_graph,
    star_graph,
)
from .io import load_csr, load_edge_list, save_csr, save_edge_list
from .partition import (
    GraphSlice,
    Partition,
    contiguous_partition,
    greedy_edge_cut_partition,
)

__all__ = [
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "rmat_graph",
    "erdos_renyi_graph",
    "small_world_graph",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "binary_tree_graph",
    "random_weights",
    "load_edge_list",
    "save_edge_list",
    "save_csr",
    "load_csr",
    "GraphSlice",
    "Partition",
    "contiguous_partition",
    "greedy_edge_cut_partition",
]
