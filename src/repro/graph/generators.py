"""Synthetic graph generators.

The paper evaluates on five real-world graphs (Table IV).  Those datasets
are not redistributable inside this offline reproduction, so the
benchmarks substitute synthetic graphs whose *shape* matches: power-law
degree distributions via R-MAT/Kronecker for the social/web graphs, plus
a few regular topologies used by the unit tests (chains, grids, stars).

All generators are deterministic given a seed and return `CSRGraph`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "rmat_graph",
    "erdos_renyi_graph",
    "small_world_graph",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "binary_tree_graph",
    "random_weights",
]


def _dedupe_edges(edge_array: np.ndarray) -> np.ndarray:
    """Drop duplicate (src, dst) pairs and self loops, keep determinism."""
    if edge_array.size == 0:
        return edge_array.reshape(0, 2)
    mask = edge_array[:, 0] != edge_array[:, 1]
    edge_array = edge_array[mask]
    if edge_array.size == 0:
        return edge_array.reshape(0, 2)
    keys = edge_array[:, 0].astype(np.int64) * (edge_array[:, 1].max() + 1)
    keys = keys + edge_array[:, 1]
    _, unique_idx = np.unique(keys, return_index=True)
    return edge_array[np.sort(unique_idx)]


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "rmat",
    permute: bool = True,
) -> CSRGraph:
    """Generate an R-MAT (recursive matrix) power-law graph.

    The default ``(a, b, c)`` parameters are the Graph500 values, which
    produce degree skew comparable to social networks like LiveJournal —
    the skew is what drives GraphPulse's coalescing benefit, so this is
    the key stand-in generator for Table IV's workloads.

    ``num_vertices`` is rounded up to the next power of two internally;
    vertices beyond the requested count are folded back by modulo so the
    returned graph has exactly ``num_vertices`` vertices.
    """
    if num_vertices <= 1:
        raise ValueError("rmat_graph needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    scale = int(np.ceil(np.log2(num_vertices)))
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    probs = np.array([a, b, c, d])
    cumulative = np.cumsum(probs)
    for level in range(scale):
        draws = rng.random(num_edges)
        quadrant = np.searchsorted(cumulative, draws)
        bit = 1 << (scale - level - 1)
        src += np.where(quadrant >= 2, bit, 0)
        dst += np.where((quadrant == 1) | (quadrant == 3), bit, 0)

    src %= num_vertices
    dst %= num_vertices
    edge_array = _dedupe_edges(np.stack([src, dst], axis=1))
    if permute:
        # Relabel so high-degree vertices are not clustered at low ids.
        perm = rng.permutation(num_vertices)
        edge_array = perm[edge_array]
    return CSRGraph.from_edges(num_vertices, edge_array, name=name)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """Uniform random directed graph with ~``num_edges`` distinct edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    edge_array = _dedupe_edges(np.stack([src, dst], axis=1))
    return CSRGraph.from_edges(num_vertices, edge_array, name=name)


def small_world_graph(
    num_vertices: int,
    neighbors: int = 4,
    rewire_prob: float = 0.1,
    *,
    seed: int = 0,
    name: str = "small-world",
) -> CSRGraph:
    """Watts–Strogatz-style ring lattice with random rewiring (directed)."""
    rng = np.random.default_rng(seed)
    sources = []
    targets = []
    for v in range(num_vertices):
        for k in range(1, neighbors + 1):
            target = (v + k) % num_vertices
            if rng.random() < rewire_prob:
                target = int(rng.integers(0, num_vertices))
            if target != v:
                sources.append(v)
                targets.append(target)
    edge_array = _dedupe_edges(
        np.stack(
            [np.array(sources, dtype=np.int64), np.array(targets, dtype=np.int64)],
            axis=1,
        )
    )
    return CSRGraph.from_edges(num_vertices, edge_array, name=name)


def chain_graph(num_vertices: int, *, name: str = "chain") -> CSRGraph:
    """0 → 1 → 2 → ... → n-1 (worst case for asynchronous lookahead)."""
    edges = [(v, v + 1) for v in range(num_vertices - 1)]
    return CSRGraph.from_edges(num_vertices, edges, name=name)


def cycle_graph(num_vertices: int, *, name: str = "cycle") -> CSRGraph:
    """Directed ring; exercises indefinite propagation / thresholds."""
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    return CSRGraph.from_edges(num_vertices, edges, name=name)


def grid_graph(rows: int, cols: int, *, name: str = "grid") -> CSRGraph:
    """2-D grid with bidirectional edges (mesh workloads, SSSP tests)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
                edges.append((v + 1, v))
            if r + 1 < rows:
                edges.append((v, v + cols))
                edges.append((v + cols, v))
    return CSRGraph.from_edges(rows * cols, edges, name=name)


def star_graph(
    num_leaves: int, *, outward: bool = True, name: str = "star"
) -> CSRGraph:
    """Hub-and-spoke graph; stresses single-vertex event fan-out."""
    if outward:
        edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    else:
        edges = [(leaf, 0) for leaf in range(1, num_leaves + 1)]
    return CSRGraph.from_edges(num_leaves + 1, edges, name=name)


def complete_graph(num_vertices: int, *, name: str = "complete") -> CSRGraph:
    """All-to-all directed graph (no self loops)."""
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    return CSRGraph.from_edges(num_vertices, edges, name=name)


def binary_tree_graph(
    depth: int, *, downward: bool = True, name: str = "tree"
) -> CSRGraph:
    """Complete binary tree with edges pointing away from (or to) the root."""
    num_vertices = (1 << depth) - 1
    edges = []
    for v in range(num_vertices):
        for child in (2 * v + 1, 2 * v + 2):
            if child < num_vertices:
                edges.append((v, child) if downward else (child, v))
    return CSRGraph.from_edges(num_vertices, edges, name=name)


def random_weights(
    graph: CSRGraph,
    *,
    low: float = 1.0,
    high: float = 10.0,
    seed: int = 0,
) -> CSRGraph:
    """Attach uniform random weights in ``[low, high)`` to a graph.

    Mirrors the paper's Adsorption setup: "We created randomly weighted
    edges for the graphs".
    """
    rng = np.random.default_rng(seed)
    weights = rng.uniform(low, high, size=graph.num_edges)
    return graph.with_weights(weights)
