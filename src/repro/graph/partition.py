"""Graph slicing for large-graph execution (paper Section IV-F).

GraphPulse handles graphs whose vertex set exceeds the coalescing queue's
capacity by partitioning them into *slices* that each fit on chip.  The
paper assumes offline partitioning that "limits the maximum number of
vertices in each slice while minimizing edges that cross slice
boundaries" and relabels vertices "to make them contiguous within each
slice".

Two partitioners are provided:

- :func:`contiguous_partition` — split the (already laid out) vertex range
  into equal contiguous chunks.  Cheap, and the natural choice when the
  graph generator already clusters communities in id space.
- :func:`greedy_edge_cut_partition` — a lightweight LDG-style streaming
  heuristic that assigns each vertex to the slice holding most of its
  already-placed neighbours, subject to a capacity bound.  This is the
  stand-in for the offline METIS/PuLP partitioners the paper cites.

The result is a :class:`Partition` carrying per-slice subgraphs with
*local* contiguous ids plus the translation tables the slicing runtime
needs to route inter-slice events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "GraphSlice",
    "Partition",
    "contiguous_partition",
    "greedy_edge_cut_partition",
]


@dataclass
class GraphSlice:
    """One slice of a partitioned graph.

    ``subgraph`` holds only the *internal* edges (both endpoints in the
    slice) with vertices renumbered to ``[0, len(vertices))``.  Edges
    leaving the slice are listed in ``boundary_edges`` as
    ``(local_src, global_dst, weight)`` triples; the slicing runtime
    turns these into spilled inter-slice events.
    """

    index: int
    vertices: np.ndarray  # global ids owned by this slice, ascending
    subgraph: CSRGraph
    boundary_sources: np.ndarray  # local source vertex per boundary edge
    boundary_targets: np.ndarray  # global destination per boundary edge
    boundary_weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_internal_edges(self) -> int:
        return self.subgraph.num_edges

    @property
    def num_boundary_edges(self) -> int:
        return len(self.boundary_targets)


@dataclass
class Partition:
    """A full partitioning of a graph into slices."""

    graph: CSRGraph
    slices: List[GraphSlice]
    slice_of_vertex: np.ndarray  # global vertex -> slice index
    local_id_of_vertex: np.ndarray  # global vertex -> local id in its slice

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def cut_edges(self) -> int:
        """Total number of edges crossing slice boundaries."""
        return sum(s.num_boundary_edges for s in self.slices)

    def cut_fraction(self) -> float:
        """Fraction of all edges that cross slices (partition quality)."""
        if self.graph.num_edges == 0:
            return 0.0
        return self.cut_edges / self.graph.num_edges

    def locate(self, global_vertex: int) -> Tuple[int, int]:
        """Map a global vertex id to ``(slice_index, local_id)``."""
        return (
            int(self.slice_of_vertex[global_vertex]),
            int(self.local_id_of_vertex[global_vertex]),
        )


def _build_partition(graph: CSRGraph, assignment: np.ndarray) -> Partition:
    """Materialize slices from a vertex → slice assignment vector."""
    num_slices = int(assignment.max()) + 1 if assignment.size else 0
    local_ids = np.zeros(graph.num_vertices, dtype=np.int64)
    slice_vertex_lists: List[np.ndarray] = []
    for s in range(num_slices):
        members = np.flatnonzero(assignment == s)
        slice_vertex_lists.append(members)
        local_ids[members] = np.arange(len(members))

    slices: List[GraphSlice] = []
    for s in range(num_slices):
        members = slice_vertex_lists[s]
        internal_edges: List[Tuple[int, int]] = []
        internal_weights: List[float] = []
        boundary_src: List[int] = []
        boundary_dst: List[int] = []
        boundary_w: List[float] = []
        for gsrc in members:
            lsrc = int(local_ids[gsrc])
            neigh = graph.neighbors(int(gsrc))
            wts = graph.edge_weights(int(gsrc))
            for gdst, w in zip(neigh.tolist(), wts.tolist()):
                if assignment[gdst] == s:
                    internal_edges.append((lsrc, int(local_ids[gdst])))
                    internal_weights.append(w)
                else:
                    boundary_src.append(lsrc)
                    boundary_dst.append(int(gdst))
                    boundary_w.append(w)
        sub = CSRGraph.from_edges(
            len(members),
            internal_edges,
            weights=internal_weights if graph.is_weighted else None,
            name=f"{graph.name}/slice{s}",
        )
        slices.append(
            GraphSlice(
                index=s,
                vertices=members,
                subgraph=sub,
                boundary_sources=np.array(boundary_src, dtype=np.int64),
                boundary_targets=np.array(boundary_dst, dtype=np.int64),
                boundary_weights=np.array(boundary_w, dtype=np.float64),
            )
        )
    return Partition(
        graph=graph,
        slices=slices,
        slice_of_vertex=assignment,
        local_id_of_vertex=local_ids,
    )


def contiguous_partition(graph: CSRGraph, num_slices: int) -> Partition:
    """Split the vertex range into ``num_slices`` contiguous chunks."""
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    if num_slices > max(1, graph.num_vertices):
        raise ValueError("more slices than vertices")
    bounds = np.linspace(0, graph.num_vertices, num_slices + 1).astype(np.int64)
    assignment = np.zeros(graph.num_vertices, dtype=np.int64)
    for s in range(num_slices):
        assignment[bounds[s]: bounds[s + 1]] = s
    return _build_partition(graph, assignment)


def greedy_edge_cut_partition(
    graph: CSRGraph,
    num_slices: int,
    *,
    balance_slack: float = 0.05,
) -> Partition:
    """Streaming LDG-style partitioner minimizing cut edges.

    Vertices are visited in id order; each is placed in the slice that
    already holds the most of its (in+out) neighbours, discounted by a
    linear penalty as a slice approaches its capacity
    ``ceil(n / num_slices) * (1 + balance_slack)``.
    """
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    n = graph.num_vertices
    if num_slices > max(1, n):
        raise ValueError("more slices than vertices")
    capacity = int(np.ceil(n / num_slices) * (1.0 + balance_slack))
    capacity = max(capacity, 1)
    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_slices, dtype=np.int64)
    reverse = graph.reverse()

    for v in range(n):
        scores = np.zeros(num_slices, dtype=np.float64)
        for u in graph.neighbors(v):
            if assignment[u] >= 0:
                scores[assignment[u]] += 1.0
        for u in reverse.neighbors(v):
            if assignment[u] >= 0:
                scores[assignment[u]] += 1.0
        penalty = 1.0 - sizes / capacity
        scores = (scores + 1e-9) * np.maximum(penalty, 0.0)
        full = sizes >= capacity
        scores[full] = -1.0
        target = int(np.argmax(scores))
        assignment[v] = target
        sizes[target] += 1
    return _build_partition(graph, assignment)
