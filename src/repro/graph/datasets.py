"""Scaled-down synthetic stand-ins for the paper's workloads (Table IV).

The paper evaluates on Web-Google (WG), Facebook (FB), Wikipedia (WK),
LiveJournal (LJ) and Twitter (TW).  These datasets are unavailable
offline, so each is replaced by a deterministic synthetic proxy whose
degree distribution and density are shaped like the original, scaled down
so the pure-Python simulators finish:

===========  ==============  =============  =============================
dataset      original (V,E)  proxy (V,E)    generator
===========  ==============  =============  =============================
WG           0.87M / 5.1M    8.7k / 51k     R-MAT, web-ish skew
FB           3.01M / 47.3M   6.0k / 95k     R-MAT, denser social skew
WK           3.56M / 45.0M   7.1k / 90k     R-MAT
LJ           4.84M / 69.0M   9.7k / 138k    R-MAT, Graph500 parameters
TW           41.6M / 1.46B   20.8k / 730k   R-MAT, heavy skew
===========  ==============  =============  =============================

The proxies preserve average degree ratios and power-law skew — the
properties GraphPulse's coalescing, locality and slicing results depend
on.  A ``scale`` argument shrinks them further for cycle-level runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .csr import CSRGraph
from .generators import random_weights, rmat_graph

__all__ = ["DATASETS", "DatasetSpec", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic proxy dataset."""

    name: str
    description: str
    num_vertices: int
    num_edges: int
    rmat_a: float
    rmat_b: float
    rmat_c: float
    seed: int
    #: size of the real dataset this proxy stands in for (Table IV).
    #: Used by the CPU cost model to derive cache-resident fractions at
    #: the paper's scale (an intensive property the proxy can't capture).
    original_vertices: int = 0
    original_edges: int = 0

    def scaled(self, scale: float) -> Tuple[int, int]:
        vertices = max(64, int(self.num_vertices * scale))
        edges = max(128, int(self.num_edges * scale))
        return vertices, edges


DATASETS: Dict[str, DatasetSpec] = {
    "WG": DatasetSpec(
        name="WG",
        description="Web-Google proxy (web crawl skew)",
        num_vertices=8_700,
        num_edges=51_000,
        rmat_a=0.57,
        rmat_b=0.19,
        rmat_c=0.19,
        seed=101,
        original_vertices=870_000,
        original_edges=5_100_000,
    ),
    "FB": DatasetSpec(
        name="FB",
        description="Facebook social-network proxy",
        num_vertices=6_000,
        num_edges=95_000,
        rmat_a=0.55,
        rmat_b=0.20,
        rmat_c=0.20,
        seed=102,
        original_vertices=3_010_000,
        original_edges=47_330_000,
    ),
    "WK": DatasetSpec(
        name="WK",
        description="Wikipedia page-link proxy",
        num_vertices=7_100,
        num_edges=90_000,
        rmat_a=0.57,
        rmat_b=0.19,
        rmat_c=0.19,
        seed=103,
        original_vertices=3_560_000,
        original_edges=45_030_000,
    ),
    "LJ": DatasetSpec(
        name="LJ",
        description="LiveJournal social-network proxy (Graph500 skew)",
        num_vertices=9_700,
        num_edges=138_000,
        rmat_a=0.57,
        rmat_b=0.19,
        rmat_c=0.19,
        seed=104,
        original_vertices=4_840_000,
        original_edges=68_990_000,
    ),
    "TW": DatasetSpec(
        name="TW",
        description="Twitter follower-graph proxy (heavy skew, large)",
        num_vertices=20_800,
        num_edges=730_000,
        rmat_a=0.60,
        rmat_b=0.18,
        rmat_c=0.18,
        seed=105,
        original_vertices=41_650_000,
        original_edges=1_460_000_000,
    ),
}


def dataset_names() -> Tuple[str, ...]:
    """The workload roster of Table IV, in paper order."""
    return ("WG", "FB", "WK", "LJ", "TW")


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    weighted: bool = False,
    seed_offset: int = 0,
) -> CSRGraph:
    """Materialize a proxy dataset.

    Parameters
    ----------
    name:
        One of ``WG``, ``FB``, ``WK``, ``LJ``, ``TW``.
    scale:
        Multiplier on the proxy's vertex/edge counts (``0.1`` gives a
        ~10x smaller graph for the cycle-level simulator).
    weighted:
        Attach uniform random edge weights (used by SSSP/Adsorption).
    seed_offset:
        Added to the dataset seed; lets tests draw independent instances.
    """
    try:
        spec = DATASETS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
    vertices, edges = spec.scaled(scale)
    graph = rmat_graph(
        vertices,
        edges,
        a=spec.rmat_a,
        b=spec.rmat_b,
        c=spec.rmat_c,
        seed=spec.seed + seed_offset,
        name=spec.name if scale == 1.0 else f"{spec.name}@{scale:g}",
    )
    if weighted:
        graph = random_weights(graph, seed=spec.seed + seed_offset)
    return graph
