"""Compressed Sparse Row graph storage.

This is the in-memory graph format used by every engine in the
reproduction, mirroring the paper's statement that "the graph is stored in
a Compressed Sparse Row format in memory" (Section IV-E).  Vertex ids are
dense integers in ``[0, num_vertices)``.  Out-edges of vertex ``v`` occupy
``adjacency[offsets[v]:offsets[v + 1]]`` and the matching entries of
``weights`` (when the graph is weighted).

The class also exposes the *byte layout* of the structure (`vertex_bytes`,
`edge_bytes`, address helpers) because the cycle-level simulator issues
memory requests against concrete addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphValidationError

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """A directed graph in Compressed Sparse Row form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``offsets[0] == 0`` and
        ``offsets[-1] == num_edges``.
    adjacency:
        ``int32``/``int64`` array of destination vertex ids, grouped by
        source vertex.
    weights:
        Optional ``float64`` per-edge weights, same length as
        ``adjacency``.  ``None`` models an unweighted graph.
    name:
        Human-readable label used in benchmark reports.
    """

    offsets: np.ndarray
    adjacency: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "graph"

    #: bytes occupied by one vertex property (double-precision rank etc.)
    vertex_bytes: int = field(default=8, repr=False)
    #: bytes occupied by one edge record (destination id, 4 bytes in the
    #: paper's graphs; weighted graphs carry 4 more for the weight)
    edge_bytes: int = field(default=4, repr=False)

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.adjacency = np.asarray(self.adjacency, dtype=np.int64)
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
        self._validate()
        self._in_degrees: Optional[np.ndarray] = None
        self._reverse: Optional["CSRGraph"] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Sequence[float]] = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from an iterable of ``(src, dst)`` pairs.

        Edge order within a vertex's adjacency list follows the sorted
        order of ``(src, dst)``, which keeps layouts deterministic across
        runs regardless of input ordering.
        """
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphValidationError("edges must be (src, dst) pairs")
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_vertices
        ):
            bad = int(np.flatnonzero(
                (edge_array < 0).any(axis=1)
                | (edge_array >= num_vertices).any(axis=1)
            )[0])
            raise GraphValidationError(
                f"edge endpoint out of range at edge index {bad}: "
                f"{tuple(edge_array[bad])} with num_vertices="
                f"{num_vertices}",
                index=bad,
            )

        weight_array = None
        if weights is not None:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.shape[0] != edge_array.shape[0]:
                raise GraphValidationError(
                    "weights length must match edges length"
                )

        order = np.lexsort((edge_array[:, 1], edge_array[:, 0]))
        edge_array = edge_array[order]
        if weight_array is not None:
            weight_array = weight_array[order]

        counts = np.bincount(edge_array[:, 0], minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            offsets=offsets,
            adjacency=edge_array[:, 1],
            weights=weight_array,
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return int(self.offsets[-1])

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, vertex: int) -> int:
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for every vertex."""
        return np.diff(self.offsets)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for every vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.adjacency, minlength=self.num_vertices
            ).astype(np.int64)
        return self._in_degrees

    def neighbors(self, vertex: int) -> np.ndarray:
        """Destination ids of ``vertex``'s out-edges (a CSR slice view)."""
        return self.adjacency[self.offsets[vertex]: self.offsets[vertex + 1]]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of ``vertex``'s out-edges; ones when unweighted."""
        if self.weights is None:
            return np.ones(self.out_degree(vertex), dtype=np.float64)
        return self.weights[self.offsets[vertex]: self.offsets[vertex + 1]]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(src, dst)`` pairs in CSR order."""
        for src in range(self.num_vertices):
            for dst in self.neighbors(src):
                yield src, int(dst)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, aligned with ``adjacency``."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.out_degrees()
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph (in-edges become out-edges), cached.

        Pull-style baselines iterate a vertex's *incoming* neighbours,
        which in CSR terms is the adjacency of the reversed graph.
        """
        if self._reverse is None:
            sources = self.edge_sources()
            self._reverse = CSRGraph.from_edges(
                self.num_vertices,
                zip(self.adjacency.tolist(), sources.tolist()),
                weights=None if self.weights is None else self.weights.tolist(),
                name=f"{self.name}^T",
            )
        return self._reverse

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """A copy of this graph carrying the given per-edge weights."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != self.num_edges:
            raise ValueError("weights length must equal num_edges")
        return CSRGraph(
            offsets=self.offsets.copy(),
            adjacency=self.adjacency.copy(),
            weights=weights,
            name=self.name,
        )

    def with_unit_weights(self) -> "CSRGraph":
        """A copy with all-ones weights (for SSSP on unweighted inputs)."""
        return self.with_weights(np.ones(self.num_edges, dtype=np.float64))

    # ------------------------------------------------------------------
    # Memory layout (used by the cycle-level simulator)
    # ------------------------------------------------------------------
    def vertex_address(self, vertex: int) -> int:
        """Byte address of a vertex property in the simulated memory.

        Vertex properties live at the base of the simulated address
        space, packed contiguously.
        """
        return vertex * self.vertex_bytes

    def edge_address(self, edge_index: int) -> int:
        """Byte address of an edge record (edges follow the vertices)."""
        return self.edge_region_base + edge_index * self.edge_bytes

    @property
    def edge_region_base(self) -> int:
        return self.num_vertices * self.vertex_bytes

    @property
    def footprint_bytes(self) -> int:
        """Total simulated memory footprint of properties plus structure."""
        return (
            self.num_vertices * self.vertex_bytes
            + self.num_edges * self.edge_bytes
        )

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.offsets.ndim != 1 or len(self.offsets) < 1:
            raise GraphValidationError(
                "offsets must be a 1-D array of length >= 1"
            )
        if self.offsets[0] != 0:
            raise GraphValidationError("offsets[0] must be 0")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphValidationError("offsets must be non-decreasing")
        if int(self.offsets[-1]) != len(self.adjacency):
            raise GraphValidationError(
                "offsets[-1] must equal len(adjacency)"
            )
        if self.adjacency.size and (
            self.adjacency.min() < 0
            or self.adjacency.max() >= len(self.offsets) - 1
        ):
            raise GraphValidationError("adjacency entry out of range")
        if self.weights is not None and len(self.weights) != len(self.adjacency):
            raise GraphValidationError("weights must align with adjacency")
        if self.weights is not None and np.isnan(self.weights).any():
            bad = int(np.flatnonzero(np.isnan(self.weights))[0])
            raise GraphValidationError(
                f"weights contain NaN (first at edge index {bad})",
                index=bad,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, weighted={self.is_weighted})"
        )
