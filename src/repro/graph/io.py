"""Graph persistence: plain edge-list text files and binary CSR bundles.

Real deployments would load SNAP/Network-Repository files (Table IV); the
same loaders here read the standard whitespace-separated edge-list format
those collections use, so a user with the original datasets can drop them
in directly.
"""

from __future__ import annotations

import hashlib
import math
import os
import zipfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import GraphValidationError
from ..ioutil import atomic_open
from .csr import CSRGraph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "save_csr",
    "load_csr",
    "graph_fingerprint",
]

PathLike = Union[str, os.PathLike]


def load_edge_list(
    path: PathLike,
    *,
    num_vertices: Optional[int] = None,
    weighted: bool = False,
    comment: str = "#",
    name: Optional[str] = None,
    allow_negative_weights: bool = False,
) -> CSRGraph:
    """Load a whitespace-separated ``src dst [weight]`` edge-list file.

    Lines starting with ``comment`` are skipped (SNAP convention).  When
    ``num_vertices`` is omitted it is inferred as ``max id + 1``.

    Every malformed input raises
    :class:`repro.errors.GraphValidationError` (a ``ValueError``
    subclass) whose message and ``context`` name the offending
    ``path``/``line``: non-integer or negative endpoints, endpoints at
    or beyond ``num_vertices``, unparsable weights, and NaN or — unless
    ``allow_negative_weights`` — negative weights (the Table II
    algorithms all assume non-negative edge weights: probabilities for
    PageRank/Adsorption, distances for SSSP).
    """
    path = Path(path)
    sources: List[int] = []
    targets: List[int] = []
    weights: List[float] = []

    def invalid(lineno: int, message: str) -> GraphValidationError:
        return GraphValidationError(
            f"{path}:{lineno}: {message}", path=str(path), line=lineno
        )

    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise invalid(lineno, "expected 'src dst [w]'")
            try:
                src, dst = int(parts[0]), int(parts[1])
            except ValueError:
                raise invalid(
                    lineno,
                    f"expected integer endpoints, got "
                    f"{parts[0]!r} {parts[1]!r}",
                ) from None
            if src < 0 or dst < 0:
                raise invalid(lineno, f"negative endpoint in {src} -> {dst}")
            if num_vertices is not None and (
                src >= num_vertices or dst >= num_vertices
            ):
                raise invalid(
                    lineno,
                    f"endpoint out of range in {src} -> {dst} "
                    f"(num_vertices={num_vertices})",
                )
            sources.append(src)
            targets.append(dst)
            if weighted:
                if len(parts) > 2:
                    try:
                        weight = float(parts[2])
                    except ValueError:
                        raise invalid(
                            lineno, f"expected numeric weight, got {parts[2]!r}"
                        ) from None
                else:
                    weight = 1.0
                if math.isnan(weight):
                    raise invalid(lineno, "weight is NaN")
                if weight < 0 and not allow_negative_weights:
                    raise invalid(lineno, f"negative weight {weight:g}")
                weights.append(weight)
    if num_vertices is None:
        highest = max(max(sources, default=-1), max(targets, default=-1))
        num_vertices = highest + 1
    return CSRGraph.from_edges(
        num_vertices,
        zip(sources, targets),
        weights=weights if weighted else None,
        name=name or path.stem,
    )


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a ``src dst [weight]`` text file."""
    path = Path(path)
    # atomic_open writes to a temp file in the same directory and
    # os.replace()s it in, so a crash mid-save never leaves a truncated
    # edge list where a good one (or nothing) used to be
    with atomic_open(path, "w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for index, (src, dst) in enumerate(graph.edges()):
            if graph.weights is not None:
                handle.write(f"{src} {dst} {graph.weights[index]:g}\n")
            else:
                handle.write(f"{src} {dst}\n")


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Persist a graph as a compressed ``.npz`` CSR bundle."""
    arrays = {
        "offsets": graph.offsets,
        "adjacency": graph.adjacency,
        "name": np.array(graph.name),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    # np.savez appends ".npz" when given a bare path but not a handle;
    # resolve the final name ourselves so the atomic rename lands where
    # the non-atomic version used to write
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    with atomic_open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def graph_fingerprint(graph: CSRGraph) -> str:
    """SHA-256 over the graph's structural content.

    Covers vertex count, CSR offsets, adjacency, and (when present) the
    raw weight bits — everything an algorithm's result depends on, and
    nothing it doesn't (the display ``name`` is excluded).  Stored in a
    durable run's manifest so ``repro resume`` can refuse to continue a
    checkpointed run against a different graph.
    """
    digest = hashlib.sha256()
    digest.update(f"v{graph.num_vertices}".encode())
    digest.update(np.ascontiguousarray(graph.offsets, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.adjacency, dtype=np.int64).tobytes())
    if graph.weights is not None:
        digest.update(b"w")
        digest.update(
            np.ascontiguousarray(graph.weights, dtype=np.float64).tobytes()
        )
    return digest.hexdigest()


def load_csr(path: PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_csr`.

    Truncated or corrupt bundles (bad zip container, missing arrays,
    inconsistent offsets) raise
    :class:`repro.errors.GraphValidationError` naming the file instead
    of leaking ``zipfile``/``KeyError`` internals.
    """
    path = Path(path)
    # own the file handle so a bundle that fails mid-parse still closes
    # its descriptor (np.load would otherwise leak it on BadZipFile)
    with open(path, "rb") as stream:
        try:
            with np.load(stream, allow_pickle=False) as data:
                missing = {"offsets", "adjacency", "name"} - set(data.files)
                if missing:
                    raise GraphValidationError(
                        f"{path}: CSR bundle is missing array(s) "
                        f"{sorted(missing)}",
                        path=str(path),
                    )
                weights = data["weights"] if "weights" in data.files else None
                return CSRGraph(
                    offsets=data["offsets"],
                    adjacency=data["adjacency"],
                    weights=weights,
                    name=str(data["name"]),
                )
        except (zipfile.BadZipFile, EOFError, OSError) as exc:
            raise GraphValidationError(
                f"{path}: truncated or corrupt CSR bundle ({exc})",
                path=str(path),
            ) from exc
        except ValueError as exc:
            if isinstance(exc, GraphValidationError):
                raise
            raise GraphValidationError(
                f"{path}: invalid CSR bundle ({exc})", path=str(path)
            ) from exc


def edge_list_round_trip(graph: CSRGraph, path: PathLike) -> Tuple[CSRGraph, bool]:
    """Save + reload a graph, returning the reloaded graph and equality.

    Convenience used by tests and by users validating dataset ingest.
    """
    save_edge_list(graph, path)
    reloaded = load_edge_list(
        path,
        num_vertices=graph.num_vertices,
        weighted=graph.is_weighted,
        name=graph.name,
    )
    same = bool(
        np.array_equal(graph.offsets, reloaded.offsets)
        and np.array_equal(graph.adjacency, reloaded.adjacency)
    )
    return reloaded, same
