"""Graph persistence: plain edge-list text files and binary CSR bundles.

Real deployments would load SNAP/Network-Repository files (Table IV); the
same loaders here read the standard whitespace-separated edge-list format
those collections use, so a user with the original datasets can drop them
in directly.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from .csr import CSRGraph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "save_csr",
    "load_csr",
]

PathLike = Union[str, os.PathLike]


def load_edge_list(
    path: PathLike,
    *,
    num_vertices: Optional[int] = None,
    weighted: bool = False,
    comment: str = "#",
    name: Optional[str] = None,
) -> CSRGraph:
    """Load a whitespace-separated ``src dst [weight]`` edge-list file.

    Lines starting with ``comment`` are skipped (SNAP convention).  When
    ``num_vertices`` is omitted it is inferred as ``max id + 1``.
    """
    path = Path(path)
    sources: List[int] = []
    targets: List[int] = []
    weights: List[float] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'src dst [w]'")
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
            if weighted:
                weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    if num_vertices is None:
        highest = max(max(sources, default=-1), max(targets, default=-1))
        num_vertices = highest + 1
    return CSRGraph.from_edges(
        num_vertices,
        zip(sources, targets),
        weights=weights if weighted else None,
        name=name or path.stem,
    )


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a ``src dst [weight]`` text file."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for index, (src, dst) in enumerate(graph.edges()):
            if graph.weights is not None:
                handle.write(f"{src} {dst} {graph.weights[index]:g}\n")
            else:
                handle.write(f"{src} {dst}\n")


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Persist a graph as a compressed ``.npz`` CSR bundle."""
    arrays = {
        "offsets": graph.offsets,
        "adjacency": graph.adjacency,
        "name": np.array(graph.name),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(Path(path), **arrays)


def load_csr(path: PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_csr`."""
    with np.load(Path(path), allow_pickle=False) as data:
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(
            offsets=data["offsets"],
            adjacency=data["adjacency"],
            weights=weights,
            name=str(data["name"]),
        )


def edge_list_round_trip(graph: CSRGraph, path: PathLike) -> Tuple[CSRGraph, bool]:
    """Save + reload a graph, returning the reloaded graph and equality.

    Convenience used by tests and by users validating dataset ingest.
    """
    save_edge_list(graph, path)
    reloaded = load_edge_list(
        path,
        num_vertices=graph.num_vertices,
        weighted=graph.is_weighted,
        name=graph.name,
    )
    same = bool(
        np.array_equal(graph.offsets, reloaded.offsets)
        and np.array_equal(graph.adjacency, reloaded.adjacency)
    )
    return reloaded, same
