"""Typed errors shared across the reproduction.

Every failure a user (or the campaign runner) is expected to handle
programmatically raises one of these types instead of a bare
``ValueError``/``RuntimeError`` with an opaque message.  The hierarchy
deliberately double-inherits from the builtin type each error used to
be, so existing ``except ValueError`` / ``except RuntimeError`` call
sites — and the seed test-suite — keep working unchanged.

``NonConvergenceError`` carries the structured diagnostic the progress
watchdog assembles (stuck vertices, fullest bins, last progress) so a
non-converging configuration aborts with an actionable report rather
than spinning until the round limit and dying with a one-line message.
"""

from __future__ import annotations

import errno as _errno
from typing import Any, Dict, List, Optional

__all__ = [
    "ReproError",
    "GraphValidationError",
    "QueueCapacityError",
    "NonConvergenceError",
    "UnrecoverableFaultError",
    "CheckpointCorruptError",
    "ManifestMismatchError",
    "RunInterruptedError",
    "LeaseHeldError",
    "OutOfSpaceError",
]


class ReproError(Exception):
    """Base class of all typed errors raised by the reproduction."""


class GraphValidationError(ReproError, ValueError):
    """A graph input (edge list, CSR bundle, weight array) is invalid.

    ``context`` points at the offending location: ``path``/``line`` for
    text edge lists, ``path`` for binary bundles, ``index`` for in-memory
    arrays.  The message always embeds the same information so the error
    is self-describing when it escapes to a traceback.
    """

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        self.context: Dict[str, Any] = context


class QueueCapacityError(ReproError, ValueError):
    """The graph does not fit the coalescing queue's direct-mapped store.

    Carries the numbers a caller needs to pick a working configuration:
    ``num_vertices`` of the offending graph, the queue ``capacity``, and
    ``required_slices`` — the minimum slice count that makes every slice
    fit (Section IV-F's remedy).
    """

    def __init__(self, num_vertices: int, capacity: int):
        self.num_vertices = int(num_vertices)
        self.capacity = int(capacity)
        self.required_slices = max(
            1, -(-self.num_vertices // max(self.capacity, 1))
        )
        super().__init__(
            f"graph has {self.num_vertices} vertices but the queue can map "
            f"only {self.capacity}; partition the graph into at least "
            f"{self.required_slices} slices"
        )


class NonConvergenceError(ReproError, RuntimeError):
    """An engine was halted by the progress watchdog.

    ``diagnostic`` is a JSON-serializable dict naming the reason
    (``"round-limit"`` or ``"no-progress"``), the engine, the rounds
    executed, the queue occupancy, the fullest bins and a sample of the
    stuck vertices with their pending deltas.
    """

    def __init__(self, message: str, diagnostic: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.diagnostic: Dict[str, Any] = diagnostic or {}

    @property
    def stuck_vertices(self) -> List[int]:
        return list(self.diagnostic.get("stuck_vertices", []))

    @property
    def stuck_bins(self) -> List[int]:
        return list(self.diagnostic.get("stuck_bins", []))


class UnrecoverableFaultError(ReproError, RuntimeError):
    """Fault recovery was exhausted (repair epochs, rollbacks, lanes).

    Raised only when resilience is enabled and the configured recovery
    budget cannot restore a consistent state — the structured equivalent
    of a machine check.
    """

    def __init__(self, message: str, **detail: Any):
        super().__init__(message)
        self.detail: Dict[str, Any] = detail


class CheckpointCorruptError(ReproError, ValueError):
    """A durable checkpoint or journal file failed integrity validation.

    Raised for bad magic, unsupported format versions, CRC32 mismatches,
    truncation, and journals that end before the commit a checkpoint
    references.  Corruption is *never* silently repaired or partially
    loaded — a resume either restores a verified-consistent state or
    fails with this error.  ``context`` names the offending ``path`` and
    whatever the validator knows (expected/actual CRC, offset, commit).
    """

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        self.context: Dict[str, Any] = context


class ManifestMismatchError(ReproError, ValueError):
    """A run directory's manifest does not match the resume environment.

    Raised by ``repro resume`` when the manifest is missing, names an
    unknown engine/workload, or its recorded graph fingerprint disagrees
    with the graph the workload reproduces — resuming against a
    different graph would silently produce wrong answers.
    """

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        self.context: Dict[str, Any] = context


class LeaseHeldError(ReproError, RuntimeError):
    """A slice lease is held by a live owner and cannot be taken.

    Raised when a worker tries to acquire a lease file that already
    exists, or when the supervisor asks to break a lease whose holder
    still heartbeats (its pid is alive and the file's mtime is fresh).
    Stale leases — dead pid, or no heartbeat within the timeout — are
    broken silently; this error firing means two live processes claim
    the same slice, which is a configuration bug, never a race to paper
    over.  ``context`` carries the lease ``path`` and whatever is known
    about the ``holder``.
    """

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        self.context: Dict[str, Any] = context


class OutOfSpaceError(ReproError, OSError):
    """The storage backing the durable layer is persistently full.

    Raised when a bounded IO retry (``retry_transient``) exhausts its
    attempt budget and *every* failure was ``ENOSPC`` — a full disk is
    not transient flakiness, and surfacing it as a generic ``OSError``
    would bury the one failure an operator can actually act on.
    Double-inherits :class:`OSError` (with ``errno`` forced to
    ``ENOSPC``) so existing ``except OSError`` recovery ladders keep
    working; the CLI reports it as a typed exit-2 ``--json`` payload.
    ``context`` carries the operation ``description``, ``path`` when
    known, and the exhausted ``attempts`` budget.
    """

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        self.errno = _errno.ENOSPC
        self.context: Dict[str, Any] = context


class RunInterruptedError(ReproError):
    """A run stopped cleanly on SIGINT/SIGTERM after flushing a checkpoint.

    Not a failure: the engine finished its current round, persisted a
    final durable checkpoint, and unwound.  ``detail`` carries the
    structured partial summary the CLI reports (run directory, last
    checkpoint sequence/file, round index) so ``repro resume`` can be
    suggested.  Exits the CLI with status 130, mirroring shell SIGINT
    convention.
    """

    def __init__(self, message: str, **detail: Any):
        super().__init__(message)
        self.detail: Dict[str, Any] = detail
