"""Experiment orchestration, throughput timing, report formatting and
the ``repro lint`` static invariant checker (:mod:`.staticcheck`)."""

from . import staticcheck
from .experiments import (
    ALGORITHMS,
    ComparisonResult,
    prepare_workload,
    run_comparison,
)
from .report import format_series, format_table, geometric_mean
from .sweep import SweepResult, run_sweep
from .throughput import TimingBreakdown, time_graphicionado, time_graphpulse

__all__ = [
    "ALGORITHMS",
    "staticcheck",
    "ComparisonResult",
    "prepare_workload",
    "run_comparison",
    "format_table",
    "format_series",
    "geometric_mean",
    "SweepResult",
    "run_sweep",
    "TimingBreakdown",
    "time_graphpulse",
    "time_graphicionado",
]
