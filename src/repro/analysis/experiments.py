"""End-to-end experiment runner shared by the benchmark harness.

One *workload* is a (dataset, algorithm) pair from the paper's
evaluation matrix (Table IV x the five algorithms).  This module owns
the workload preparation conventions (SSSP gets random weights, CC runs
on the symmetrized graph, Adsorption on inbound-normalized weights) and
runs the full cross-system comparison behind Figure 10/11/12:
GraphPulse optimized + baseline (functional engine + throughput timing),
Graphicionado (BSP engine + throughput timing) and Ligra (instrumented
framework + CPU cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import algorithms
from ..algorithms.base import AlgorithmSpec
from ..baselines import LigraResult
from ..core.config import baseline_config, optimized_config
from ..core.engines import build_engine
from ..core.functional import FunctionalResult
from ..graph import CSRGraph, load_dataset
from ..graph.datasets import DATASETS
from .throughput import TimingBreakdown, time_graphicionado, time_graphpulse

__all__ = [
    "ALGORITHMS",
    "prepare_workload",
    "run_comparison",
    "ComparisonResult",
]

#: the paper's five evaluated algorithms, in Figure 10 order
ALGORITHMS = ("pagerank", "adsorption", "sssp", "bfs", "cc")


def prepare_workload(
    dataset: str,
    algorithm: str,
    *,
    scale: float = 1.0,
    root: Optional[int] = None,
) -> Tuple[CSRGraph, AlgorithmSpec]:
    """Materialize a dataset proxy prepared for one algorithm.

    Applies the paper's preprocessing conventions: random edge weights
    for SSSP; random weights normalized per-vertex inbound for
    Adsorption; symmetrization for Connected Components.  Traversal
    roots default to the highest-out-degree vertex so the traversal
    covers the giant component (synthetic proxies have no canonical
    root ids).
    """
    if algorithm not in ALGORITHMS and algorithm != "bfs-reachability":
        raise ValueError(f"unknown algorithm {algorithm!r}")
    weighted = algorithm in ("sssp", "adsorption")
    graph = load_dataset(dataset, scale=scale, weighted=weighted)
    if algorithm == "adsorption":
        graph = algorithms.normalize_inbound_weights(graph)
    elif algorithm == "cc":
        graph = algorithms.symmetrize(graph)
    if algorithm in ("sssp", "bfs", "bfs-reachability"):
        if root is None:
            root = int(np.argmax(graph.out_degrees()))
        spec = algorithms.get_algorithm(algorithm, graph, root=root)
    else:
        spec = algorithms.get_algorithm(algorithm, graph)
    return graph, spec


@dataclass
class ComparisonResult:
    """All systems' measurements for one workload."""

    dataset: str
    algorithm: str
    graph: CSRGraph
    functional: FunctionalResult
    graphpulse: TimingBreakdown
    graphpulse_baseline: TimingBreakdown
    graphicionado: TimingBreakdown
    ligra: LigraResult
    bsp_iterations: int

    # ------------------------------------------------------------------
    @property
    def speedup_over_ligra(self) -> float:
        """Figure 10's primary series (GraphPulse optimized vs Ligra)."""
        return self.ligra.seconds / self.graphpulse.seconds

    @property
    def baseline_speedup_over_ligra(self) -> float:
        return self.ligra.seconds / self.graphpulse_baseline.seconds

    @property
    def speedup_over_graphicionado(self) -> float:
        return self.graphicionado.seconds / self.graphpulse.seconds

    @property
    def traffic_vs_graphicionado(self) -> float:
        """Figure 11: GraphPulse off-chip bytes / Graphicionado's."""
        denominator = self.graphicionado.offchip_bytes
        return (
            self.graphpulse.offchip_bytes / denominator
            if denominator
            else 0.0
        )

    @property
    def data_utilization(self) -> float:
        """Figure 12: fraction of fetched off-chip data utilized."""
        return self.functional.traffic.utilization()

    def summary(self) -> Dict[str, float]:
        return {
            "speedup_vs_ligra": self.speedup_over_ligra,
            "baseline_speedup_vs_ligra": self.baseline_speedup_over_ligra,
            "speedup_vs_graphicionado": self.speedup_over_graphicionado,
            "traffic_vs_graphicionado": self.traffic_vs_graphicionado,
            "data_utilization": self.data_utilization,
            "graphpulse_rounds": self.functional.num_rounds,
            "bsp_iterations": self.bsp_iterations,
        }


def run_comparison(
    dataset: str,
    algorithm: str,
    *,
    scale: float = 1.0,
    verify: bool = True,
) -> ComparisonResult:
    """Run one workload across all four systems.

    ``verify`` cross-checks every engine's converged values against the
    golden reference (cheap insurance that the measured systems computed
    the same answer; tolerance per algorithm spec).
    """
    graph, spec = prepare_workload(dataset, algorithm, scale=scale)

    # the timing models consume the engines' native results (per-round
    # records, iteration lists), so keep the registry results' .raw
    functional = build_engine("functional", (graph, spec)).run().raw
    graphpulse = time_graphpulse(functional.rounds, optimized_config())
    graphpulse_base = time_graphpulse(functional.rounds, baseline_config())

    bsp = build_engine("bsp", (graph, spec)).run().raw
    graphicionado = time_graphicionado(bsp.iterations, graph)

    original_vertices = DATASETS[dataset.upper()].original_vertices
    ligra = build_engine(
        "ligra",
        (graph, spec),
        {"random_footprint_bytes": original_vertices * graph.vertex_bytes},
    ).run().raw

    if verify:
        _verify_values(graph, spec, algorithm, functional.values, "functional")
        _verify_values(graph, spec, algorithm, bsp.values, "bsp")
        _verify_values(graph, spec, algorithm, ligra.values, "ligra")

    return ComparisonResult(
        dataset=dataset,
        algorithm=algorithm,
        graph=graph,
        functional=functional,
        graphpulse=graphpulse,
        graphpulse_baseline=graphpulse_base,
        graphicionado=graphicionado,
        ligra=ligra,
        bsp_iterations=bsp.num_iterations,
    )


def _verify_values(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    algorithm: str,
    values: np.ndarray,
    engine: str,
) -> None:
    injection = (
        algorithms.injection_values(graph) if algorithm == "adsorption" else None
    )
    # same deterministic default root as prepare_workload
    root = int(np.argmax(graph.out_degrees()))
    reference = algorithms.reference_for(
        algorithm, graph, injection=injection, root=root
    )
    finite = np.isfinite(reference)
    tolerance = max(spec.comparison_tolerance, 1e-12)
    if not np.allclose(
        values[finite], reference[finite], atol=tolerance * 100, rtol=1e-4
    ):
        worst = float(np.max(np.abs(values[finite] - reference[finite])))
        raise AssertionError(
            f"{engine} diverged from reference on {algorithm}: "
            f"max error {worst:g}"
        )
    if not np.all(np.isinf(values[~finite]) | (~np.isfinite(reference[~finite]))):
        raise AssertionError(
            f"{engine} marked unreachable vertices reachable on {algorithm}"
        )
