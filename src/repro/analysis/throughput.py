"""Throughput timing models for full-proxy-scale experiments (Figure 10).

The detailed cycle model (:mod:`repro.core.accelerator`) times every
event individually, which in Python limits it to small graphs.  At that
scale both accelerators are *latency-bound* — there isn't enough work
per round to cover pipeline latency — whereas the paper's workloads
(milions of events per round) keep the machines *throughput-bound*.

These models restore the paper's operating regime: they take the exact
per-round/per-iteration operation counts measured by the functional
engines (which run at full proxy scale) and convert each round into
cycles as the maximum over the modelled hardware's throughput bounds —
drain bandwidth, dispatch rate, processor occupancy, generation-stream
issue rate, crossbar/coalescer rates, and DRAM bandwidth — plus a
pipeline-fill latency per round.  This is the classical bound-and-
bottleneck (roofline) timing used throughout accelerator evaluation; the
detailed cycle model cross-validates it on small graphs (see tests).

All three compared systems get the same treatment:

- :func:`time_graphpulse` — rounds from :class:`FunctionalGraphPulse`;
- :func:`time_graphicionado` — iterations from the BSP engine;
- Ligra's CPU model is already analytic (:mod:`repro.baselines.cpu_model`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..baselines.bsp import BSPIteration
from ..core.config import GraphPulseConfig
from ..core.functional import RoundRecord
from ..graph import CSRGraph

__all__ = [
    "TimingBreakdown",
    "time_graphpulse",
    "time_graphicionado",
]

_LINE = 64


@dataclass
class TimingBreakdown:
    """Cycle estimate with per-bound attribution."""

    total_cycles: float
    clock_ghz: float
    #: how many rounds each throughput bound dominated
    bound_rounds: Dict[str, int] = field(default_factory=dict)
    #: total off-chip traffic implied by the counts
    offchip_bytes: float = 0.0
    num_rounds: int = 0

    @property
    def seconds(self) -> float:
        return self.total_cycles * 1e-9 / self.clock_ghz

    def dominant_bound(self) -> str:
        """The bound that limited the most rounds."""
        if not self.bound_rounds:
            return "none"
        return max(self.bound_rounds, key=self.bound_rounds.get)


def _round_fill_cycles(config: GraphPulseConfig) -> int:
    """Latency to fill/drain the pipeline once per round: DRAM access,
    process pipeline, crossbar traversal and coalescer write-back."""
    return (
        config.dram.row_miss_cycles
        + config.process_pipeline_cycles
        + config.crossbar_traversal_cycles
        + config.coalescer_latency_cycles
        + config.dram.row_hit_cycles
    )


def time_graphpulse(
    rounds: Sequence[RoundRecord],
    config: GraphPulseConfig,
) -> TimingBreakdown:
    """Convert functional-engine rounds into GraphPulse cycles."""
    cfg = config
    bandwidth = cfg.dram.total_bandwidth  # bytes / cycle
    streams = cfg.total_generation_streams
    fill = _round_fill_cycles(cfg)
    bound_rounds: Dict[str, int] = {}
    total = 0.0
    total_bytes = 0.0

    for record in rounds:
        events = record.events_processed
        edges = record.edges_scanned
        insertions = record.events_produced

        if cfg.prefetch_enabled:
            # prefetched blocks: 1-cycle vertex read + apply issue +
            # hand-off; vertex lines are fetched once per block
            processor = events * 3 / cfg.num_processors
            round_bytes = float(record.offchip_bytes)
            # N-block prefetch hides line latency inside the stream
            generation = (edges + record.edge_lines) / streams
        else:
            # direct memory access per event: latency exposed per
            # processor (overlapped across the 256 processors), and each
            # event's read-modify-write moves its own cache line
            per_event = (
                cfg.dram.row_miss_cycles + cfg.process_pipeline_cycles
            )
            processor = events * per_event / cfg.num_processors
            round_bytes = float(
                2 * events * _LINE + record.edge_lines * _LINE
            )
            # in-order generation exposes each edge line's access
            # latency to its stream
            generation = (
                edges + record.edge_lines * cfg.dram.row_hit_cycles
            ) / streams
        total_bytes += round_bytes
        bounds = {
            "drain": events / cfg.drain_events_per_cycle,
            "dispatch": events / cfg.drain_events_per_cycle
            if cfg.prefetch_enabled
            else float(events),
            "processor": processor,
            "generation": generation,
            "memory": round_bytes / bandwidth,
            "crossbar": insertions / cfg.crossbar_ports,
            "coalescer": insertions / cfg.num_bins,
        }
        limiter = max(bounds, key=bounds.get)
        bound_rounds[limiter] = bound_rounds.get(limiter, 0) + 1
        total += bounds[limiter] + fill

    return TimingBreakdown(
        total_cycles=total,
        clock_ghz=cfg.clock_ghz,
        bound_rounds=bound_rounds,
        offchip_bytes=total_bytes,
        num_rounds=len(rounds),
    )


def time_graphicionado(
    iterations: Sequence[BSPIteration],
    graph: CSRGraph,
    *,
    num_streams: int = 8,
    clock_ghz: float = 1.0,
    bandwidth_bytes_per_cycle: float = 68.0,
    pipeline_fill_cycles: int = 80,
) -> TimingBreakdown:
    """Convert BSP iterations into Graphicionado cycles.

    Per iteration the pipeline streams each active vertex's property and
    out-edge slice (line-granular) and applies updates through on-chip
    shadow memory; the apply phase writes back touched properties.
    Iteration time is the max of the edge-processing rate
    (1 edge/cycle/stream) and the memory system, plus pipeline fill.
    """
    offsets = graph.offsets
    bound_rounds: Dict[str, int] = {}
    total = 0.0
    total_bytes = 0.0

    for iteration in iterations:
        active = iteration.active_vertices
        if len(active):
            lo = offsets[active]
            hi = offsets[active + 1]
            start_lines = (
                graph.edge_region_base + lo * graph.edge_bytes
            ) // _LINE
            stop_lines = (
                graph.edge_region_base + hi * graph.edge_bytes - 1
            ) // _LINE
            nonempty = hi > lo
            edge_lines = int(
                np.sum((stop_lines - start_lines + 1)[nonempty])
            )
        else:
            edge_lines = 0
        # Graphicionado's apply phase streams the whole vertex property
        # array (read shadow copy + write back), as in Ham et al.; the
        # paper's generosity (zero-cost active tracking, on-chip shadow)
        # is preserved, but the apply stream itself is off-chip traffic.
        apply_bytes = 2 * graph.num_vertices * graph.vertex_bytes
        iter_bytes = (
            edge_lines * _LINE
            + len(active) * graph.vertex_bytes  # source property stream
            + apply_bytes
        )
        total_bytes += iter_bytes
        bounds = {
            "pipeline": iteration.edges_scanned / num_streams,
            "memory": iter_bytes / bandwidth_bytes_per_cycle,
            "apply": graph.num_vertices / num_streams,
        }
        limiter = max(bounds, key=bounds.get)
        bound_rounds[limiter] = bound_rounds.get(limiter, 0) + 1
        total += bounds[limiter] + pipeline_fill_cycles

    return TimingBreakdown(
        total_cycles=total,
        clock_ghz=clock_ghz,
        bound_rounds=bound_rounds,
        offchip_bytes=total_bytes,
        num_rounds=len(iterations),
    )
