"""Formatting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper; these
helpers render the measured rows/series as aligned text so the harness
output reads like the paper's artifacts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "geometric_mean"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell)
                if isinstance(cell, float)
                else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_series(
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    title: Optional[str] = None,
    float_format: str = "{:.3g}",
) -> str:
    """Render named numeric series (a figure's data) as columns."""
    lengths = {len(values) for values in series.values()}
    if len(lengths) > 1:
        raise ValueError("all series must have the same length")
    length = lengths.pop() if lengths else 0
    headers = [x_label] + list(series)
    rows = [
        [str(i)] + [float_format.format(series[name][i]) for name in series]
        for i in range(length)
    ]
    return format_table(headers, rows, title=title)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's 'average speedup' convention)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
