"""Full evaluation sweep: the paper's 5-algorithms x 5-graphs matrix.

Runs :func:`repro.analysis.experiments.run_comparison` over a workload
matrix and aggregates the three evaluation figures that share it:
Figure 10 (speedups), Figure 11 (normalized off-chip traffic) and
Figure 12 (data utilization).  Library users get the whole evaluation
in one call::

    from repro.analysis import run_sweep

    sweep = run_sweep(scale=0.2)
    print(sweep.render_figure10())
    print(f"geomean speedup vs Ligra: {sweep.geomean_speedup():.1f}x")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..graph import dataset_names
from .experiments import ALGORITHMS, ComparisonResult, run_comparison
from .report import format_table, geometric_mean

__all__ = ["SweepResult", "run_sweep"]

WorkloadKey = Tuple[str, str]  # (algorithm, dataset)


@dataclass
class SweepResult:
    """Aggregated measurements for a workload matrix."""

    results: Dict[WorkloadKey, ComparisonResult] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def workloads(self) -> List[WorkloadKey]:
        return sorted(self.results)

    def geomean_speedup(self) -> float:
        """Figure 10 headline: geomean speedup over Ligra."""
        return geometric_mean(
            [r.speedup_over_ligra for r in self.results.values()]
        )

    def geomean_speedup_vs_graphicionado(self) -> float:
        return geometric_mean(
            [r.speedup_over_graphicionado for r in self.results.values()]
        )

    def mean_traffic_ratio(self) -> float:
        """Figure 11 headline: mean traffic normalized to Graphicionado."""
        values = [
            r.traffic_vs_graphicionado for r in self.results.values()
        ]
        return sum(values) / len(values) if values else 0.0

    def mean_utilization(self) -> float:
        values = [r.data_utilization for r in self.results.values()]
        return sum(values) / len(values) if values else 0.0

    # ------------------------------------------------------------------
    def render_figure10(self) -> str:
        rows = [
            [
                algorithm,
                dataset,
                result.speedup_over_ligra,
                result.baseline_speedup_over_ligra,
                result.speedup_over_graphicionado,
            ]
            for (algorithm, dataset), result in sorted(self.results.items())
        ]
        return format_table(
            [
                "algorithm",
                "graph",
                "GP+opt/Ligra",
                "GP-base/Ligra",
                "GP/G'nado",
            ],
            rows,
            title=(
                "Figure 10: speedups "
                f"(geomean vs Ligra {self.geomean_speedup():.1f}x, "
                f"vs Graphicionado "
                f"{self.geomean_speedup_vs_graphicionado():.1f}x)"
            ),
        )

    def render_figure11(self) -> str:
        rows = [
            [algorithm, dataset, result.traffic_vs_graphicionado]
            for (algorithm, dataset), result in sorted(self.results.items())
        ]
        return format_table(
            ["algorithm", "graph", "traffic vs Graphicionado"],
            rows,
            title=(
                "Figure 11: off-chip traffic normalized to Graphicionado "
                f"(mean {self.mean_traffic_ratio():.2f})"
            ),
        )

    def render_figure12(self) -> str:
        rows = [
            [algorithm, dataset, result.data_utilization]
            for (algorithm, dataset), result in sorted(self.results.items())
        ]
        return format_table(
            ["algorithm", "graph", "utilized fraction"],
            rows,
            title=(
                "Figure 12: off-chip data utilization "
                f"(mean {self.mean_utilization():.2f})"
            ),
        )


def run_sweep(
    *,
    datasets: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    scale: Union[float, Mapping[str, float]] = 1.0,
    verify: bool = False,
) -> SweepResult:
    """Run the evaluation matrix.

    ``scale`` is either one factor for every dataset or a per-dataset
    mapping (the benchmark harness shrinks TW more than WG).
    """
    datasets = tuple(datasets or dataset_names())
    algorithms = tuple(algorithms or ALGORITHMS)
    sweep = SweepResult()
    for algorithm in algorithms:
        for dataset in datasets:
            factor = (
                scale.get(dataset, 1.0)
                if isinstance(scale, Mapping)
                else scale
            )
            sweep.results[(algorithm, dataset)] = run_comparison(
                dataset, algorithm, scale=factor, verify=verify
            )
    return sweep
