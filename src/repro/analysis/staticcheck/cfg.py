"""Intraprocedural control-flow graphs over stdlib ``ast``.

The syntactic rules of :mod:`.rules` inspect one call site at a time;
the dataflow rules (DET-003, DUR-002, CONC-001) need to reason about
*paths* — "was the shard published on every route to this cursor
update", "does the wall-clock value survive the branch join".  This
module builds the control-flow graph those analyses run on: basic
blocks of simple statements connected by edges for branches, loops
(with back edges), ``try``/``except``/``finally`` and early exits.

Design notes
------------
* Compound statements are decomposed: ``if``/``while`` conditions live
  on the block as ``Block.test``; ``for``/``with``/``match`` headers are
  kept *in* the statement list as marker nodes so transfer functions can
  model their bindings (loop target, ``as`` names) without seeing the
  nested bodies (those are in their own blocks).
* Exception edges are conservative: every block created inside a
  ``try`` body gets an edge to every handler of that ``try``.  An
  explicit ``raise`` jumps to the innermost enclosing handlers, or to
  the dedicated ``raise_exit`` block when none enclose it (those raises
  are recorded in :attr:`CFG.escaping_raises` — they leave the
  function).
* Approximations (deliberate, documented): a ``return`` inside
  ``try``/``finally`` does not route through the ``finally`` suite, and
  implicit exceptions from arbitrary calls are not modelled.  Both keep
  the graph small and the analyses' false-positive rate near zero; the
  rules that run here are linters, not verifiers.

Nested ``def``/``class`` statements are opaque single statements — a
nested function's body belongs to *its* CFG (:func:`iter_function_defs`
yields every def in a module for exactly that reason).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

__all__ = ["Block", "CFG", "build_cfg", "iter_function_defs"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: statement types that terminate a block's straight-line flow
_JUMPS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class Block:
    """One basic block: simple statements, an optional branch test."""

    __slots__ = ("index", "kind", "statements", "test", "successors")

    def __init__(self, index: int, kind: str = "block"):
        self.index = index
        self.kind = kind
        self.statements: List[ast.stmt] = []
        #: branch condition evaluated after ``statements`` (if/while)
        self.test: Optional[ast.expr] = None
        self.successors: List[Block] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.index} {self.kind} ->{[b.index for b in self.successors]}>"


class CFG:
    """The graph for one function (or module) body."""

    def __init__(self, entry: Block, exit_block: Block, raise_exit: Block,
                 blocks: List[Block], escaping_raises: Set[int]):
        self.entry = entry
        self.exit = exit_block
        self.raise_exit = raise_exit
        self.blocks = blocks
        #: ids of ``ast.Raise`` nodes with no enclosing handler — these
        #: propagate out of the function
        self.escaping_raises = escaping_raises

    def predecessors(self) -> Dict[int, List[Block]]:
        preds: Dict[int, List[Block]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ.index].append(block)
        return preds


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.exit = self.new_block("exit")
        self.raise_exit = self.new_block("raise")
        #: (continue_target, break_target) per enclosing loop
        self.loops: List[Tuple[Block, Block]] = []
        #: handler entry blocks per enclosing ``try`` with handlers
        self.handlers: List[List[Block]] = []
        self.escaping_raises: Set[int] = set()

    def new_block(self, kind: str = "block") -> Block:
        block = Block(len(self.blocks), kind)
        self.blocks.append(block)
        return block

    @staticmethod
    def edge(src: Block, dst: Block) -> None:
        if dst not in src.successors:
            src.successors.append(dst)

    # ------------------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        entry = self.new_block("entry")
        end = self.stmts(body, entry)
        if end is not None:
            self.edge(end, self.exit)  # fall-off-the-end return
        return CFG(entry, self.exit, self.raise_exit, self.blocks,
                   self.escaping_raises)

    def stmts(self, body: List[ast.stmt], current: Optional[Block]
              ) -> Optional[Block]:
        """Thread ``body`` starting at ``current``; the block control
        falls out of, or ``None`` when every path jumped away."""
        for stmt in body:
            if current is None:
                # unreachable code after a jump; still build it so its
                # findings (and nested defs) are not silently skipped
                current = self.new_block("unreachable")
            current = self.stmt(stmt, current)
        return current

    def stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self.if_stmt(stmt, current)
        if isinstance(stmt, ast.While):
            return self.while_stmt(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self.for_stmt(stmt, current)
        if isinstance(stmt, ast.Try):
            return self.try_stmt(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.statements.append(stmt)  # marker: binds `as` names
            return self.stmts(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self.match_stmt(stmt, current)
        if isinstance(stmt, _JUMPS):
            current.statements.append(stmt)
            if isinstance(stmt, ast.Return):
                self.edge(current, self.exit)
            elif isinstance(stmt, ast.Raise):
                if self.handlers:
                    for handler in self.handlers[-1]:
                        self.edge(current, handler)
                else:
                    self.escaping_raises.add(id(stmt))
                    self.edge(current, self.raise_exit)
            elif isinstance(stmt, ast.Break):
                self.edge(current, self.loops[-1][1] if self.loops
                          else self.exit)
            else:  # Continue
                self.edge(current, self.loops[-1][0] if self.loops
                          else self.exit)
            return None
        # simple statement (incl. nested def/class, which are opaque)
        current.statements.append(stmt)
        return current

    # ------------------------------------------------------------------
    def if_stmt(self, stmt: ast.If, current: Block) -> Optional[Block]:
        current.test = stmt.test
        then_entry = self.new_block("then")
        self.edge(current, then_entry)
        then_end = self.stmts(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.new_block("else")
            self.edge(current, else_entry)
            else_end = self.stmts(stmt.orelse, else_entry)
        else:
            else_end = current  # false edge falls through
        if then_end is None and else_end is None:
            return None
        join = self.new_block("join")
        if then_end is not None:
            self.edge(then_end, join)
        if else_end is not None:
            self.edge(else_end, join)
        return join

    def while_stmt(self, stmt: ast.While, current: Block) -> Block:
        header = self.new_block("loop-header")
        self.edge(current, header)
        header.test = stmt.test
        after = self.new_block("loop-after")
        body_entry = self.new_block("loop-body")
        self.edge(header, body_entry)
        self.loops.append((header, after))
        body_end = self.stmts(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self.edge(body_end, header)  # back edge
        if stmt.orelse:
            else_entry = self.new_block("loop-else")
            self.edge(header, else_entry)
            else_end = self.stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self.edge(else_end, after)
        else:
            self.edge(header, after)
        return after

    def for_stmt(self, stmt: Union[ast.For, ast.AsyncFor],
                 current: Block) -> Block:
        header = self.new_block("loop-header")
        self.edge(current, header)
        # marker: transfer functions bind stmt.target from stmt.iter
        header.statements.append(stmt)
        after = self.new_block("loop-after")
        body_entry = self.new_block("loop-body")
        self.edge(header, body_entry)
        self.loops.append((header, after))
        body_end = self.stmts(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self.edge(body_end, header)
        if stmt.orelse:
            else_entry = self.new_block("loop-else")
            self.edge(header, else_entry)
            else_end = self.stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self.edge(else_end, after)
        else:
            self.edge(header, after)
        return after

    def try_stmt(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        handler_entries = [self.new_block("handler")
                           for _ in stmt.handlers]
        body_entry = self.new_block("try-body")
        self.edge(current, body_entry)
        first_new = len(self.blocks)
        if handler_entries:
            self.handlers.append(handler_entries)
        body_end = self.stmts(stmt.body, body_entry)
        if handler_entries:
            self.handlers.pop()
        # conservative: any block of the try body may raise into any
        # handler (plus the entry block itself)
        body_blocks = [body_entry] + self.blocks[first_new:]
        for block in body_blocks:
            if block.kind in ("handler",):
                continue
            for handler in handler_entries:
                self.edge(block, handler)

        if stmt.orelse and body_end is not None:
            body_end = self.stmts(stmt.orelse, body_end)

        exits: List[Block] = []
        if body_end is not None:
            exits.append(body_end)
        for handler, entry in zip(stmt.handlers, handler_entries):
            # marker: binds `except X as name`
            entry.statements.append(handler)
            handler_end = self.stmts(handler.body, entry)
            if handler_end is not None:
                exits.append(handler_end)

        if stmt.finalbody:
            final_entry = self.new_block("finally")
            for block in exits:
                self.edge(block, final_entry)
            final_end = self.stmts(stmt.finalbody, final_entry)
            if not handler_entries:
                # try/finally without handlers: an in-body exception
                # runs the finally suite then leaves the function
                if final_end is not None:
                    self.edge(final_end, self.raise_exit)
            exits = [final_end] if final_end is not None else []

        if not exits:
            return None
        if len(exits) == 1:
            return exits[0]
        join = self.new_block("join")
        for block in exits:
            self.edge(block, join)
        return join

    def match_stmt(self, stmt: ast.Match, current: Block
                   ) -> Optional[Block]:
        current.statements.append(stmt)  # marker: evaluates subject
        after = self.new_block("join")
        self.edge(current, after)  # no case may match
        any_end = False
        for case in stmt.cases:
            case_entry = self.new_block("case")
            self.edge(current, case_entry)
            case_end = self.stmts(case.body, case_entry)
            if case_end is not None:
                self.edge(case_end, after)
                any_end = True
        return after if (any_end or True) else None


def build_cfg(node: Union[FunctionNode, ast.Module]) -> CFG:
    """Build the CFG of one function's (or module's) body."""
    return _Builder().build(list(node.body))


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[Tuple[str, FunctionNode, Optional[str]]]:
    """Yield ``(local_qualname, node, enclosing_class)`` for every def.

    ``local_qualname`` is dotted within the module (``Class.method``,
    ``outer.inner``); ``enclosing_class`` is the nearest class name, or
    ``None`` for plain functions — what ``self.method()`` resolution
    needs.
    """

    def walk(body, prefix: str, cls: Optional[str]):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{node.name}"
                yield name, node, cls
                yield from walk(node.body, f"{name}.", cls)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.",
                                node.name)
            elif isinstance(node, (ast.If, ast.Try, ast.With,
                                   ast.AsyncWith, ast.For, ast.AsyncFor,
                                   ast.While)):
                for attr in ("body", "orelse", "finalbody", "handlers"):
                    sub = getattr(node, attr, None) or []
                    for child in sub:
                        if isinstance(child, ast.ExceptHandler):
                            yield from walk(child.body, prefix, cls)
                        elif isinstance(child, ast.stmt):
                            yield from walk([child], prefix, cls)

    yield from walk(getattr(tree, "body", []), "", None)
