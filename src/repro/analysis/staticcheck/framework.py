"""Rule framework for ``repro lint`` (the AST invariant checker).

The reproduction's correctness argument rests on invariants that no
unit test can watch globally: deterministic modules must not read the
wall clock, every persisted artifact must go through
:mod:`repro.ioutil`'s atomic writes, engines must be constructed
through the :func:`repro.core.build_engine` registry.  This module
provides the machinery that turns each invariant into a
:class:`Rule` — a scoped AST visitor producing structured
:class:`Finding` records — so violations fail CI instead of living as
prose in DESIGN.md.

Vocabulary
----------
:class:`Finding`
    One violation: rule id, severity, file/line/col, message, fix
    hint, and whether an inline suppression covers it.

:class:`Rule`
    One invariant.  A rule owns a path ``scope`` (fnmatch patterns the
    file must match), an ``allowlist`` mapping path patterns to the
    *reason* the file is exempt (reasons are part of the contract and
    surface in ``repro lint --list-rules``), and paired self-check
    fixtures — a snippet that must trigger the rule and one that must
    not — so a rule that silently stops firing fails the build too.

Suppressions
------------
A finding on line *N* is suppressed by ``# repro: allow(RULE-ID)`` on
line *N* or line *N-1*.  Several ids may be listed
(``allow(DET-001, DUR-001)``).  Suppressed findings are still
reported — marked ``suppressed`` — but do not fail ``--strict``;
the comment is expected to sit next to prose explaining *why* the
exemption is sound.

Everything here is stdlib-only (``ast`` + ``fnmatch``): the linter
must run in the barest CI job, before any dependency is installed.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "Suppressions",
    "build_import_map",
    "resolve_call_name",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "match_path",
]

SEVERITIES = ("error", "warning")

#: ``# repro: allow(DET-001)`` / ``# repro: allow(DET-001, DUR-001)``
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_json(self) -> Dict[str, Any]:
        """The structured finding schema ``repro lint --json`` emits."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        """Compiler-style one-liner: ``path:line:col: RULE message``."""
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}{tag}"
        )


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------


class Suppressions:
    """Per-line ``# repro: allow(...)`` directives of one source file."""

    def __init__(self, source: str):
        self._by_line: Dict[int, set] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            ids = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            if ids:
                self._by_line[lineno] = ids

    def allows(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``line`` (same or previous
        line; ``*`` matches every rule)."""
        for candidate in (line, line - 1):
            ids = self._by_line.get(candidate)
            if ids and (rule_id in ids or "*" in ids):
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)


# ----------------------------------------------------------------------
# Import resolution (shared by the call-graph rules)
# ----------------------------------------------------------------------


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the qualified names their imports bind.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    monotonic as mono`` binds ``mono -> time.monotonic``.  Relative
    imports resolve to a leading-dot name (``from ..ioutil import
    atomic_open`` -> ``.ioutil.atomic_open``) which can never collide
    with the absolute stdlib names the rules ban.
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                names[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{module}.{alias.name}" if module else alias.name
    return names


def resolve_call_name(
    func: ast.expr, imports: Dict[str, str]
) -> Optional[str]:
    """Qualified dotted name of a call target, or ``None``.

    Walks ``a.b.c`` attribute chains down to a head :class:`ast.Name`
    and substitutes the head through the import map, so ``np.random
    .rand`` resolves to ``numpy.random.rand``.  Calls whose head is not
    a plain name (``self.rng.random()``) resolve to ``None`` — the
    rules only ban *module-level* entry points, and guessing at object
    attributes would produce false positives.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Path scoping
# ----------------------------------------------------------------------


def match_path(path: str, pattern: str) -> bool:
    """fnmatch with a root anchor so ``*/core/*.py`` also matches a
    path given relative to the package root (``core/queue.py``)."""
    posix = path.replace(os.sep, "/")
    return fnmatch(posix, pattern) or fnmatch("/" + posix.lstrip("/"), pattern)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


class Rule:
    """Base class of one lint invariant (subclasses override ``visit``).

    Class attributes define the contract:

    ``id``/``severity``/``description``/``hint``
        Stable identity and the fix guidance attached to findings.
    ``scope``
        fnmatch patterns a file must match for the rule to apply.
    ``allowlist``
        ``{pattern: reason}`` — files exempted *by design*, with the
        rationale that makes the exemption auditable.
    ``fixture_path``/``fixture_trigger``/``fixture_clean``
        The paired self-check snippets (see :mod:`.selfcheck`).
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""
    scope: Tuple[str, ...] = ("*",)
    allowlist: Dict[str, str] = {}
    fixture_path: str = "repro/fixture.py"
    fixture_trigger: str = ""
    fixture_clean: str = ""

    def applies_to(self, path: str) -> bool:
        if not any(match_path(path, pattern) for pattern in self.scope):
            return False
        return not any(
            match_path(path, pattern) for pattern in self.allowlist
        )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
        )

    def describe(self) -> Dict[str, Any]:
        """Registry row for ``--list-rules`` and the JSON payload."""
        return {
            "id": self.id,
            "severity": self.severity,
            "description": self.description,
            "hint": self.hint,
            "scope": list(self.scope),
            "allowlist": dict(self.allowlist),
        }


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def lint_source(
    source: str, path: str, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    Unparseable files yield a single ``PARSE`` finding instead of
    raising — a file the linter cannot read is itself a CI failure,
    not a crash.
    """
    applicable = [rule for rule in rules if rule.applies_to(path)]
    if not applicable:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                hint="repro lint only checks files the compiler accepts",
            )
        ]
    suppressions = Suppressions(source)
    imports = build_import_map(tree)
    findings: List[Finding] = []
    for rule in applicable:
        for finding in rule.visit(tree, path, imports):
            finding.suppressed = suppressions.allows(
                finding.rule, finding.line
            )
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(path: str, rules: Sequence[Rule]) -> List[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    Hidden directories and ``__pycache__`` are skipped; the sort makes
    the finding order (and therefore the CI artifact) deterministic.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    seen: Dict[str, None] = {}
    for name in files:
        seen.setdefault(name, None)
    return sorted(seen)


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule]
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted stably."""
    findings: List[Finding] = []
    for name in iter_python_files(paths):
        findings.extend(lint_file(name, rules))
    findings.sort(key=Finding.sort_key)
    return findings
