"""Rule framework for ``repro lint`` (the AST invariant checker).

The reproduction's correctness argument rests on invariants that no
unit test can watch globally: deterministic modules must not read the
wall clock, every persisted artifact must go through
:mod:`repro.ioutil`'s atomic writes, engines must be constructed
through the :func:`repro.core.build_engine` registry.  This module
provides the machinery that turns each invariant into a
:class:`Rule` — a scoped AST visitor producing structured
:class:`Finding` records — so violations fail CI instead of living as
prose in DESIGN.md.

Vocabulary
----------
:class:`Finding`
    One violation: rule id, severity, file/line/col, message, fix
    hint, and whether an inline suppression covers it.

:class:`Rule`
    One invariant.  A rule owns a path ``scope`` (fnmatch patterns the
    file must match), an ``allowlist`` mapping path patterns to the
    *reason* the file is exempt (reasons are part of the contract and
    surface in ``repro lint --list-rules``), and paired self-check
    fixtures — a snippet that must trigger the rule and one that must
    not — so a rule that silently stops firing fails the build too.

Suppressions
------------
A finding is suppressed by ``# repro: allow(RULE-ID)`` anywhere on the
construct it anchors to: the finding line, the line before it, or —
for findings on multi-line expressions and on ``def``/``class``
headers — any line of that span (a decorated ``def``'s span runs from
its first decorator through its signature; a multi-line call's span is
the whole call expression).  Several ids may be listed
(``allow(DET-001, DUR-001)``).  Suppressed findings are still
reported — marked ``suppressed`` — but do not fail ``--strict``;
the comment is expected to sit next to prose explaining *why* the
exemption is sound.

Everything here is stdlib-only (``ast`` + ``fnmatch``): the linter
must run in the barest CI job, before any dependency is installed.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "Suppressions",
    "build_import_map",
    "resolve_call_name",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "match_path",
]

SEVERITIES = ("error", "warning")

#: ``# repro: allow(DET-001)`` / ``# repro: allow(DET-001, DUR-001)``
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False
    #: line range an inline ``# repro: allow`` may sit on (defaults to
    #: the finding line) — internal, not part of the JSON schema
    span_start: Optional[int] = None
    span_end: Optional[int] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_json(self) -> Dict[str, Any]:
        """The structured finding schema ``repro lint --json`` emits."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        """Compiler-style one-liner: ``path:line:col: RULE message``."""
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}{tag}"
        )


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------


class Suppressions:
    """Per-line ``# repro: allow(...)`` directives of one source file."""

    def __init__(self, source: str):
        self._by_line: Dict[int, set] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            ids = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            if ids:
                self._by_line[lineno] = ids

    def allows(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``line`` (same or previous
        line; ``*`` matches every rule)."""
        return self.allows_span(rule_id, line, line)

    def allows_span(self, rule_id: str, start: int, end: int) -> bool:
        """Whether a directive sits anywhere on the construct spanning
        ``start``..``end`` (or the line before it)."""
        for candidate, ids in self._by_line.items():
            if start - 1 <= candidate <= end and (
                rule_id in ids or "*" in ids
            ):
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)


# ----------------------------------------------------------------------
# Import resolution (shared by the call-graph rules)
# ----------------------------------------------------------------------


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the qualified names their imports bind.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    monotonic as mono`` binds ``mono -> time.monotonic``.  Relative
    imports resolve to a leading-dot name (``from ..ioutil import
    atomic_open`` -> ``.ioutil.atomic_open``) which can never collide
    with the absolute stdlib names the rules ban.
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                names[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{module}.{alias.name}" if module else alias.name
    return names


def resolve_call_name(
    func: ast.expr, imports: Dict[str, str]
) -> Optional[str]:
    """Qualified dotted name of a call target, or ``None``.

    Walks ``a.b.c`` attribute chains down to a head :class:`ast.Name`
    and substitutes the head through the import map, so ``np.random
    .rand`` resolves to ``numpy.random.rand``.  Calls whose head is not
    a plain name (``self.rng.random()``) resolve to ``None`` — the
    rules only ban *module-level* entry points, and guessing at object
    attributes would produce false positives.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Path scoping
# ----------------------------------------------------------------------


def match_path(path: str, pattern: str) -> bool:
    """fnmatch with a root anchor so ``*/core/*.py`` also matches a
    path given relative to the package root (``core/queue.py``)."""
    posix = path.replace(os.sep, "/")
    return fnmatch(posix, pattern) or fnmatch("/" + posix.lstrip("/"), pattern)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


def _suppression_span(node: ast.AST, line: int) -> Tuple[int, int]:
    """Line range a ``# repro: allow`` may occupy for this node.

    ``def``/``class`` anchors span from the first decorator through the
    signature (the body's own lines are *not* included — a directive
    inside the body belongs to findings there); other nodes span their
    full source extent, so a directive on the closing line of a
    multi-line call still attaches.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        start = min(
            [line] + [deco.lineno for deco in node.decorator_list]
        )
        end = node.body[0].lineno - 1 if node.body else line
        return start, max(end, line)
    end = getattr(node, "end_lineno", None) or line
    return line, max(end, line)


class Rule:
    """Base class of one lint invariant (subclasses override ``visit``).

    Class attributes define the contract:

    ``id``/``severity``/``description``/``hint``
        Stable identity and the fix guidance attached to findings.
    ``scope``
        fnmatch patterns a file must match for the rule to apply.
    ``allowlist``
        ``{pattern: reason}`` — files exempted *by design*, with the
        rationale that makes the exemption auditable.
    ``fixture_path``/``fixture_trigger``/``fixture_clean``
        The paired self-check snippets (see :mod:`.selfcheck`).
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""
    scope: Tuple[str, ...] = ("*",)
    allowlist: Dict[str, str] = {}
    fixture_path: str = "repro/fixture.py"
    fixture_trigger: str = ""
    fixture_clean: str = ""
    #: rules that resolve symbols across modules set this; the runner
    #: then provides a shared :class:`.callgraph.ProjectContext`
    needs_project: bool = False

    def applies_to(self, path: str) -> bool:
        if not any(match_path(path, pattern) for pattern in self.scope):
            return False
        return not any(
            match_path(path, pattern) for pattern in self.allowlist
        )

    def visit(
        self,
        tree: ast.Module,
        path: str,
        imports: Dict[str, str],
        project: Optional[Any] = None,
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        start, end = _suppression_span(node, line)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
            span_start=start,
            span_end=end,
        )

    def describe(self) -> Dict[str, Any]:
        """Registry row for ``--list-rules`` and the JSON payload."""
        return {
            "id": self.id,
            "severity": self.severity,
            "description": self.description,
            "hint": self.hint,
            "scope": list(self.scope),
            "allowlist": dict(self.allowlist),
        }


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    project: Optional[Any] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    Unparseable files yield a single ``PARSE`` finding instead of
    raising — a file the linter cannot read is itself a CI failure,
    not a crash.  Rules that need cross-module resolution receive
    ``project`` (a :class:`.callgraph.ProjectContext`); when none is
    supplied a single-file context is built on the fly, so standalone
    snippets still get intra-module dataflow.
    """
    applicable = [rule for rule in rules if rule.applies_to(path)]
    if not applicable:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                hint="repro lint only checks files the compiler accepts",
            )
        ]
    if project is None and any(rule.needs_project for rule in applicable):
        from .callgraph import ProjectContext

        project = ProjectContext.from_sources({path: source})
    suppressions = Suppressions(source)
    imports = build_import_map(tree)
    findings: List[Finding] = []
    for rule in applicable:
        for finding in rule.visit(tree, path, imports, project=project):
            finding.suppressed = suppressions.allows_span(
                finding.rule,
                finding.span_start or finding.line,
                finding.span_end or finding.line,
            )
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: str,
    rules: Sequence[Rule],
    project: Optional[Any] = None,
) -> List[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules, project=project)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    Hidden directories and ``__pycache__`` are skipped; the sort makes
    the finding order (and therefore the CI artifact) deterministic.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    seen: Dict[str, None] = {}
    for name in files:
        seen.setdefault(name, None)
    return sorted(seen)


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule]
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted stably.

    When any selected rule needs cross-module resolution, one shared
    :class:`.callgraph.ProjectContext` is built over the whole file
    set first, so helper chains resolve across files.
    """
    files = iter_python_files(paths)
    project = None
    if any(rule.needs_project for rule in rules):
        from .callgraph import project_for_files

        project = project_for_files(files)
    findings: List[Finding] = []
    for name in files:
        findings.extend(lint_file(name, rules, project=project))
    findings.sort(key=Finding.sort_key)
    return findings
