"""The project-specific invariants ``repro lint`` enforces.

Each rule encodes one discipline a prior PR introduced and DESIGN.md
documents in prose; the linter makes it machine-checked:

========  ============================================================
DET-001   no wall-clock reads in deterministic modules (replay safety)
DET-002   no unseeded randomness anywhere (trajectory reproducibility)
DUR-001   no raw write-mode ``open`` — artifacts use ``atomic_open``
ENG-001   engines are constructed only through ``build_engine``
RES-001   no silent exception swallowing in recovery paths
RES-002   IO retry loops in the durability layer carry attempt budgets
OBS-001   no bare ``print()`` outside the CLI (obs layer owns output)
SUB-001   durable primitives are constructed only via the substrate
========  ============================================================

The dataflow rules (DET-003, DUR-002, CONC-001, SUB-002) live in
:mod:`.flowrules` — they run CFG/taint analysis instead of call-site
pattern matching — and are appended to the same :data:`RULES`
registry here.

Scopes and allowlists live on the rule classes so ``repro lint
--list-rules`` prints the full contract, exemption rationale included.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from .banned import (
    ENTROPY_EXACT,
    ENTROPY_PREFIXES,
    SEEDED_NUMPY_API,
    WALL_CLOCK_CALLS,
)
from .flowrules import FLOW_RULES
from .framework import Finding, Rule, resolve_call_name

__all__ = ["RULES", "RULES_BY_ID", "rule_ids", "select_rules"]


# ----------------------------------------------------------------------
# DET-001: no wall clock in deterministic modules
# ----------------------------------------------------------------------


class WallClockRule(Rule):
    """Deterministic modules must not read the wall clock.

    Crash-resume, journal replay and the sliced-mp recovery path all
    assume a run's trajectory is a pure function of (graph, algorithm,
    seed): any wall-clock read that feeds state makes replay diverge.
    """

    id = "DET-001"
    severity = "error"
    description = (
        "no wall-clock reads (time.time/monotonic/perf_counter, "
        "datetime.now) in deterministic modules"
    )
    hint = (
        "derive time from engine cycles/rounds; if the value is "
        "telemetry-only and never feeds state, suppress with "
        "'# repro: allow(DET-001)' and say why"
    )
    scope = (
        "*/core/*.py",
        "*/algorithms/*.py",
        "*/resilience/*.py",
        "*/obs/*.py",
    )
    allowlist = {
        "*/resilience/lease.py": (
            "lease heartbeats and staleness checks are operational "
            "liveness against real elapsed time; lease state is never "
            "part of the replayed trajectory"
        ),
        "*/obs/bench.py": (
            "the bench harness is the one sanctioned wall-clock "
            "consumer: it times complete engine runs from outside to "
            "report events/sec, and nothing it measures ever feeds "
            "back into engine state or the replayed trajectory"
        ),
    }
    fixture_path = "repro/core/fixture.py"
    fixture_trigger = (
        "import time\n"
        "\n"
        "def round_stamp():\n"
        "    return time.time()\n"
    )
    fixture_clean = (
        "def round_stamp(engine):\n"
        "    return engine.total_cycles\n"
    )

    _BANNED = WALL_CLOCK_CALLS

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, imports)
            if name in self._BANNED:
                yield self.finding(
                    path,
                    node,
                    f"wall-clock read {name}() in a deterministic module",
                )


# ----------------------------------------------------------------------
# DET-002: no unseeded randomness
# ----------------------------------------------------------------------


class UnseededRandomRule(Rule):
    """Every random draw must come from an explicitly seeded Generator.

    Graph generators, fault plans and adsorption's injection vector are
    all reproducible because they thread ``numpy.random.default_rng(
    seed)`` instances; stdlib ``random``, ``os.urandom`` and numpy's
    legacy global-state API would silently break bit-identity.
    """

    id = "DET-002"
    severity = "error"
    description = (
        "no unseeded randomness (random.*, os.urandom, legacy "
        "numpy.random.*, default_rng() without a seed)"
    )
    hint = (
        "thread a seeded generator: rng = numpy.random.default_rng(seed)"
    )
    scope = ("*",)
    allowlist = {
        "*/resilience/faults.py": (
            "fault injection owns the seeded RNG plumbing; its "
            "generators all derive from FaultPlan.seed"
        ),
    }
    fixture_path = "repro/graph/fixture.py"
    fixture_trigger = (
        "import numpy as np\n"
        "\n"
        "def jitter(n):\n"
        "    return np.random.rand(n)\n"
    )
    fixture_clean = (
        "import numpy as np\n"
        "\n"
        "def jitter(n, seed):\n"
        "    return np.random.default_rng(seed).random(n)\n"
    )

    #: constructors of the seeded Generator API — the sanctioned path
    _SEEDED_API = SEEDED_NUMPY_API
    _BANNED_EXACT = ENTROPY_EXACT
    _BANNED_PREFIXES = ENTROPY_PREFIXES

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, imports)
            if name is None:
                continue
            if name in self._BANNED_EXACT or name.startswith(
                self._BANNED_PREFIXES
            ):
                yield self.finding(
                    path, node, f"non-deterministic entropy source {name}()"
                )
            elif name.startswith("numpy.random."):
                tail = name.rsplit(".", 1)[1]
                if tail not in self._SEEDED_API:
                    yield self.finding(
                        path,
                        node,
                        f"legacy global-state RNG {name}() is unseeded "
                        f"shared state",
                    )
                elif tail == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        path,
                        node,
                        "default_rng() without a seed draws OS entropy",
                    )


# ----------------------------------------------------------------------
# DUR-001: all writes are atomic
# ----------------------------------------------------------------------


class RawWriteRule(Rule):
    """Persisted artifacts must go through ``repro.ioutil``.

    A bare ``open(path, "w")`` truncates in place: a crash between
    truncate and close leaves a torn file that checkpoint readers,
    trace viewers and the resume path would then trust.  The atomic
    helpers write a temp file, fsync, and ``os.replace``.
    """

    id = "DUR-001"
    severity = "error"
    description = (
        "no raw write-mode open()/Path.write_* — use "
        "repro.ioutil.atomic_open so readers never see torn files"
    )
    hint = (
        "use repro.ioutil.atomic_open(path, mode) / atomic_write_text "
        "/ atomic_write_bytes"
    )
    scope = ("*",)
    allowlist = {
        "*/ioutil.py": "the atomic-write implementation itself",
        "*/resilience/journal.py": (
            "the write-ahead journal appends records with its own "
            "fsynced commit discipline; atomic whole-file replacement "
            "would defeat the append-only format"
        ),
        "*/resilience/storagefaults.py": (
            "the chaos layer corrupts files on purpose: torn writes "
            "and bit rot require in-place r+b/ab access to the very "
            "artifacts the atomic helpers protect"
        ),
    }
    fixture_path = "repro/obs/fixture.py"
    fixture_trigger = (
        "def save(path, payload):\n"
        "    with open(path, \"w\") as handle:\n"
        "        handle.write(payload)\n"
    )
    fixture_clean = (
        "from repro.ioutil import atomic_open\n"
        "\n"
        "def save(path, payload):\n"
        "    with atomic_open(path) as handle:\n"
        "        handle.write(payload)\n"
    )

    _WRITE_MARKS = ("w", "a", "x", "+")

    def _mode_of(self, node: ast.Call, position: int):
        for keyword in node.keywords:
            if keyword.arg == "mode":
                return keyword.value
        if len(node.args) > position:
            return node.args[position]
        return None

    def _is_write_mode(self, mode) -> bool:
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(mark in mode.value for mark in self._WRITE_MARKS)
        )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and imports.get(
                func.id, func.id
            ) in ("open", "io.open"):
                mode = self._mode_of(node, position=1)
                if self._is_write_mode(mode):
                    yield self.finding(
                        path,
                        node,
                        f"non-atomic write open(..., {mode.value!r})",
                    )
            elif isinstance(func, ast.Attribute):
                if func.attr == "open":
                    mode = self._mode_of(node, position=0)
                    if self._is_write_mode(mode):
                        yield self.finding(
                            path,
                            node,
                            f"non-atomic write .open({mode.value!r})",
                        )
                elif func.attr in ("write_text", "write_bytes"):
                    yield self.finding(
                        path,
                        node,
                        f"non-atomic write .{func.attr}(...) truncates "
                        f"in place",
                    )


# ----------------------------------------------------------------------
# ENG-001: engines are built through the registry
# ----------------------------------------------------------------------


class EngineRegistryRule(Rule):
    """Engine construction goes through ``repro.core.build_engine``.

    The registry validates options strictly, gates resilience support,
    and returns the unified :class:`RunResult`; a direct constructor
    call grows a third copy of that logic and silently skips the
    checks (the exact per-engine ``if`` ladders PR 4 deleted).
    Calls to a class *defined in the same module* are exempt — that is
    where factories like ``build_sliced`` legitimately live.
    """

    id = "ENG-001"
    severity = "error"
    description = (
        "no direct engine-constructor calls outside core/engines.py — "
        "use build_engine(name, (graph, spec), options)"
    )
    hint = (
        "construct through repro.core.build_engine; register new "
        "engines with repro.core.engines.register_engine"
    )
    scope = ("*",)
    allowlist = {
        "*/core/engines.py": "the registry is the construction path",
        "*/tests/*": "tests exercise engine internals directly",
    }
    fixture_path = "repro/analysis/fixture.py"
    fixture_trigger = (
        "from repro.core.functional import FunctionalGraphPulse\n"
        "\n"
        "def run(graph, spec):\n"
        "    return FunctionalGraphPulse(graph, spec).run()\n"
    )
    fixture_clean = (
        "from repro.core import build_engine\n"
        "\n"
        "def run(graph, spec):\n"
        "    return build_engine(\"functional\", (graph, spec), {}).run()\n"
    )

    #: every class the build_engine registry constructs
    _ENGINE_CLASSES = frozenset(
        {
            "FunctionalGraphPulse",
            "GraphPulseAccelerator",
            "SlicedGraphPulse",
            "MultiprocessSlicedGraphPulse",
            "HostSlicedGraphPulse",
            "ParallelSlicedGraphPulse",
            "SynchronousDeltaEngine",
            "LigraEngine",
        }
    )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        local_classes = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                tail = func.id
            elif isinstance(func, ast.Attribute):
                tail = func.attr
            else:
                continue
            if tail in self._ENGINE_CLASSES and tail not in local_classes:
                yield self.finding(
                    path,
                    node,
                    f"direct engine construction {tail}(...) bypasses "
                    f"the build_engine registry",
                )


# ----------------------------------------------------------------------
# RES-001: recovery paths never swallow errors silently
# ----------------------------------------------------------------------


class SilentExceptRule(Rule):
    """Recovery code must not discard exceptions it cannot classify.

    A bare ``except:`` (which also traps KeyboardInterrupt/SystemExit)
    or an ``except Exception: pass`` in the resilience layer turns an
    unrecoverable fault into silent corruption — exactly the failure
    mode the typed :class:`repro.errors.ReproError` hierarchy exists
    to surface.
    """

    id = "RES-001"
    severity = "error"
    description = (
        "no bare 'except:' or silent 'except Exception: pass' in "
        "recovery paths"
    )
    hint = (
        "catch the specific error type, or record/re-raise it "
        "(contextlib.suppress(SpecificError) for deliberate ignores)"
    )
    scope = ("*/resilience/*.py", "*/core/mpsliced.py")
    allowlist: Dict[str, str] = {}
    fixture_path = "repro/resilience/fixture.py"
    fixture_trigger = (
        "def recover(step):\n"
        "    try:\n"
        "        step()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    fixture_clean = (
        "def recover(step, log):\n"
        "    try:\n"
        "        step()\n"
        "    except OSError as exc:\n"
        "        log(exc)\n"
        "        raise\n"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def _catches_broad(self, handler: ast.ExceptHandler) -> bool:
        kinds = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for kind in kinds:
            if isinstance(kind, ast.Name) and kind.id in self._BROAD:
                return True
            if isinstance(kind, ast.Attribute) and kind.attr in self._BROAD:
                return True
        return False

    def _is_silent(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or bare ... literal
            return False
        return True

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path,
                    node,
                    "bare 'except:' traps KeyboardInterrupt/SystemExit "
                    "and hides unrecoverable faults",
                )
            elif self._catches_broad(node) and self._is_silent(node):
                yield self.finding(
                    path,
                    node,
                    "'except Exception: pass' silently swallows errors "
                    "in a recovery path",
                )


# ----------------------------------------------------------------------
# RES-002: IO retry loops are bounded
# ----------------------------------------------------------------------


class UnboundedRetryRule(Rule):
    """IO retries in the durability layer must carry an attempt budget.

    A ``while True`` wrapped around an IO operation that catches
    ``OSError`` and loops again turns a persistent storage failure
    (a full disk, a dead device) into a silent hang: the engine stops
    making progress, the lease keeps refreshing, and nothing ever
    reaches the typed-error exit.  Retries use the bounded idiom —
    ``retry_transient`` or an explicit ``for attempt in range(n)``
    that re-raises at exhaustion.
    """

    id = "RES-002"
    severity = "error"
    description = (
        "no unbounded 'while True' IO retry loops in the durability "
        "layer — bound attempts and re-raise at exhaustion"
    )
    hint = (
        "use repro.resilience.storagefaults.retry_transient, or "
        "'for attempt in range(n)' with a final re-raise"
    )
    scope = ("*/resilience/*.py", "*/ioutil.py")
    allowlist: Dict[str, str] = {}
    fixture_path = "repro/resilience/retry_fixture.py"
    fixture_trigger = (
        "def persist(write):\n"
        "    while True:\n"
        "        try:\n"
        "            return write()\n"
        "        except OSError:\n"
        "            continue\n"
    )
    fixture_clean = (
        "def persist(write, attempts=5):\n"
        "    for attempt in range(attempts):\n"
        "        try:\n"
        "            return write()\n"
        "        except OSError:\n"
        "            if attempt == attempts - 1:\n"
        "                raise\n"
    )

    #: OSError and its notable subclasses/aliases — catching any of
    #: these around a looping retry is the hang-prone pattern
    _IO_ERRORS = frozenset(
        {
            "OSError",
            "IOError",
            "EnvironmentError",
            "BlockingIOError",
            "InterruptedError",
            "TimeoutError",
            "FileExistsError",
            "FileNotFoundError",
            "PermissionError",
            "ConnectionError",
            "BrokenPipeError",
        }
    )

    def _is_constant_true(self, test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _catches_io_error(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # bare except traps OSError too
        kinds = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for kind in kinds:
            if isinstance(kind, ast.Name) and kind.id in self._IO_ERRORS:
                return True
            if (
                isinstance(kind, ast.Attribute)
                and kind.attr in self._IO_ERRORS
            ):
                return True
        return False

    def _handler_escapes(self, handler: ast.ExceptHandler) -> bool:
        """A handler that raises/returns/breaks at its top level bounds
        the loop's failure path."""
        return any(
            isinstance(stmt, (ast.Raise, ast.Return, ast.Break))
            for stmt in handler.body
        )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.While):
                continue
            if not self._is_constant_true(node.test):
                continue
            for child in ast.walk(node):
                if not isinstance(child, ast.Try):
                    continue
                for handler in child.handlers:
                    if self._catches_io_error(
                        handler
                    ) and not self._handler_escapes(handler):
                        yield self.finding(
                            path,
                            node,
                            "unbounded 'while True' retry around an IO "
                            "operation never reaches the typed-error "
                            "exit on persistent failure",
                        )
                        break
                else:
                    continue
                break


# ----------------------------------------------------------------------
# OBS-001: diagnostics go through the obs layer, not print()
# ----------------------------------------------------------------------


class BarePrintRule(Rule):
    """Library code must not write to stdout with bare ``print()``.

    Engines and substrates run under ``--json`` (where stdout *is* the
    machine-readable payload), inside forked sliced-mp workers, and in
    CI smoke jobs that parse stdout; a stray ``print`` corrupts all
    three.  Progress and diagnostics belong to the observability layer
    (:mod:`repro.obs.metrics` heartbeats, trace probes) or, for
    human-facing command output, to the CLI.
    """

    id = "OBS-001"
    severity = "error"
    description = (
        "no bare print() outside the CLI — progress and diagnostics "
        "go through the obs/metrics layer"
    )
    hint = (
        "emit through repro.obs (metrics counters, ProgressReporter, "
        "trace probes) or return the text to the CLI, which owns stdout"
    )
    scope = ("*",)
    allowlist = {
        "*/cli.py": (
            "the CLI is the process's human-output boundary: its "
            "print calls are the product, and its --json mode already "
            "routes them away from stdout"
        ),
        "*/tests/*": "test diagnostics may print freely",
        "*/benchmarks/*": (
            "the figure scripts are standalone report generators "
            "whose printed tables are their output"
        ),
        "*/examples/*": "examples print to teach",
    }
    fixture_path = "repro/obs/print_fixture.py"
    fixture_trigger = (
        "def report(processed):\n"
        "    print(f\"{processed} events drained\")\n"
    )
    fixture_clean = (
        "from repro.obs import metrics\n"
        "\n"
        "def report(processed):\n"
        "    if metrics.ACTIVE is not None:\n"
        "        metrics.ACTIVE.counter(\"events_drained\").inc(processed)\n"
    )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, imports)
            if name in ("print", "builtins.print"):
                yield self.finding(
                    path,
                    node,
                    "bare print() writes to stdout from library code",
                )


# ----------------------------------------------------------------------
# SUB-001: durable primitives are constructed through the substrate
# ----------------------------------------------------------------------


class SubstrateConstructionRule(Rule):
    """Durable primitives are only constructed via a ``Substrate``.

    ``SliceLease``, ``SpillJournal`` and ``DurableCheckpointStore`` are
    the *fs backend's* concrete machinery; code that instantiates one
    directly is welded to the filesystem and silently bypasses backend
    selection (the conformance suite's interchangeability guarantee,
    and with it the memory backend's chaos coverage).  Consumers go
    through ``build_substrate(backend)`` and the store factories; only
    the substrate package itself (and the engine registry, which owns
    backend wiring) may touch the concrete constructors.  The read-only
    recovery statics (``SpillJournal.scan`` / ``replay`` / ``truncate``
    / ``compact_file``) stay legal everywhere — they are stateless
    byte-codec entry points, not ownership of a live log.
    """

    id = "SUB-001"
    severity = "error"
    description = (
        "no direct construction of SliceLease/SpillJournal/"
        "DurableCheckpointStore outside the substrate package — go "
        "through build_substrate()"
    )
    hint = (
        "substrate = repro.resilience.substrate.build_substrate(); "
        "then lease_store(root).acquire(...), "
        "spill_transport(path).create(...), checkpoint_store(run_dir)"
    )
    scope = ("*",)
    allowlist = {
        "*/resilience/substrate/*": (
            "the substrate package is the construction authority the "
            "rule exists to protect"
        ),
        "*/core/engines.py": (
            "the engine registry owns backend wiring and may bind "
            "concrete stores directly"
        ),
        "*/tests/*": "tests exercise the primitives directly",
    }
    fixture_path = "repro/resilience/substrate_fixture.py"
    fixture_trigger = (
        "from repro.resilience.journal import SpillJournal\n"
        "\n"
        "def start_log(path, num_slices):\n"
        "    return SpillJournal.create(path, num_slices)\n"
    )
    fixture_clean = (
        "from repro.resilience.substrate import build_substrate\n"
        "\n"
        "def start_log(path, num_slices):\n"
        "    transport = build_substrate().spill_transport(path)\n"
        "    return transport.create(num_slices)\n"
    )

    #: the concrete fs-backend primitives the substrate package owns
    _CLASSES = frozenset(
        {"SliceLease", "SpillJournal", "DurableCheckpointStore"}
    )
    #: classmethods that create or take ownership of a live artifact;
    #: the read-only statics (scan/replay/truncate/compact_file) are
    #: deliberately absent
    _CONSTRUCTORS = frozenset({"acquire", "create", "open_append"})

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[object] = None,
    ) -> Iterator[Finding]:
        # the defining modules construct their own classes (cls(...)
        # aside, e.g. alternate constructors calling each other by name)
        local_classes = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in self._CLASSES and func.id not in local_classes:
                    yield self.finding(
                        path,
                        node,
                        f"direct {func.id}(...) construction is welded to "
                        f"the fs backend; go through build_substrate()",
                    )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in self._CLASSES
                    and base.id not in local_classes
                    and func.attr in self._CONSTRUCTORS
                ):
                    yield self.finding(
                        path,
                        node,
                        f"{base.id}.{func.attr}(...) constructs a durable "
                        f"primitive outside the substrate package",
                    )


#: the registry, in stable reporting order — the syntactic set first,
#: then the dataflow set from :mod:`.flowrules`
RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    RawWriteRule(),
    EngineRegistryRule(),
    BarePrintRule(),
    SilentExceptRule(),
    UnboundedRetryRule(),
    SubstrateConstructionRule(),
) + FLOW_RULES

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}


def rule_ids() -> Tuple[str, ...]:
    return tuple(RULES_BY_ID)


def select_rules(
    select: Tuple[str, ...] = (), ignore: Tuple[str, ...] = ()
) -> Tuple[Rule, ...]:
    """Filter the registry by explicit include/exclude id lists.

    Unknown ids raise :class:`ValueError` naming the offender — a typo
    in a CI invocation must fail loudly, not lint nothing.
    """
    unknown = sorted((set(select) | set(ignore)) - set(RULES_BY_ID))
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known rules: {', '.join(RULES_BY_ID)}"
        )
    chosen = [
        rule
        for rule in RULES
        if (not select or rule.id in select) and rule.id not in ignore
    ]
    return tuple(chosen)
