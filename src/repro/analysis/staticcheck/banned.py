"""Shared banned-call vocabulary for the determinism rules.

The syntactic rules (DET-001/DET-002 in :mod:`.rules`) and the taint
rule (DET-003 in :mod:`.flowrules`) classify the *same* sources — a
wall-clock read is a wall-clock read whether it is flagged at the call
site or chased through a helper chain.  Keeping one table here means a
new banned entry point lands in both layers at once, and keeps the
import graph acyclic (``rules`` imports ``flowrules`` to assemble the
registry, so neither can own constants the other needs).
"""

from __future__ import annotations

import ast

__all__ = [
    "WALL_CLOCK_CALLS",
    "ENTROPY_EXACT",
    "ENTROPY_PREFIXES",
    "SEEDED_NUMPY_API",
    "is_entropy_source",
]

#: wall-clock entry points banned in deterministic modules (DET-001/003)
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: constructors of the seeded Generator API — the sanctioned path
SEEDED_NUMPY_API = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

ENTROPY_EXACT = frozenset({"os.urandom", "uuid.uuid4"})
ENTROPY_PREFIXES = ("random.", "secrets.")


def is_entropy_source(name: str, call: ast.Call) -> bool:
    """Whether a resolved call name draws OS/global-state entropy.

    Mirrors DET-002's classification: stdlib ``random``/``secrets``/
    ``os.urandom``/``uuid4``, numpy's legacy global-state API, and
    ``default_rng()`` called without a seed.
    """
    if name in ENTROPY_EXACT or name.startswith(ENTROPY_PREFIXES):
        return True
    if name.startswith("numpy.random."):
        tail = name.rsplit(".", 1)[1]
        if tail not in SEEDED_NUMPY_API:
            return True
        if tail == "default_rng" and not (call.args or call.keywords):
            return True
    return False
