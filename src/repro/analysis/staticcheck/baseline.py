"""Findings baseline — the ``repro lint --baseline`` ratchet.

A new strict rule usually surfaces pre-existing findings nobody can
sweep in the same change.  The ratchet lets it land anyway: write the
current findings to a baseline file once, then lint against it —
baselined findings are reported as informational while anything *new*
still fails ``--strict``.  Shrinking the baseline over time is the
ratchet's direction of travel; growing it requires a deliberate
``--update-baseline`` run that shows up in review.

Keys are ``rule|path|message`` (no line numbers), so unrelated edits
that shift a finding a few lines do not break the build; each key
carries a count, so adding a *second* identical violation in the same
file still fails.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from ...ioutil import atomic_write_text
from .framework import Finding

__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "finding_key",
    "read_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Stable identity of a finding across line drift."""
    path = finding.path.replace("\\", "/")
    return f"{finding.rule}|{path}|{finding.message}"


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Persist the unsuppressed findings as the new baseline; returns
    the number of distinct entries written."""
    entries: Dict[str, int] = {}
    for finding in findings:
        key = finding_key(finding)
        entries[key] = entries.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return len(entries)


def read_baseline(path: str) -> Dict[str, int]:
    """Load a baseline file; raises ``ValueError`` on malformed input
    (a corrupt baseline must fail the lint run, not blank-check it)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path} is not a repro lint baseline")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}; this build "
            f"reads version {BASELINE_VERSION}"
        )
    entries = payload["entries"]
    if not isinstance(entries, dict) or not all(
        isinstance(key, str) and isinstance(count, int) and count >= 0
        for key, count in entries.items()
    ):
        raise ValueError(f"{path} has malformed baseline entries")
    return dict(entries)


def apply_baseline(
    findings: Iterable[Finding], entries: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, baselined)`` against the baseline.

    Counts are consumed in finding order: a baseline entry with count
    2 absolves the first two matching findings and the third fails.
    """
    remaining = dict(entries)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
