"""Fixture-driven self-check: prove every rule can still fire.

A linter rule that silently stops matching is worse than no rule —
CI keeps passing while the invariant rots.  ``repro lint
--self-check`` closes that hole: every registered rule ships a
*trigger* fixture (a minimal snippet that must produce exactly its
finding), a *clean* fixture (the sanctioned idiom, which must produce
none), and a derived *suppressed* variant (the trigger with an inline
``# repro: allow(RULE-ID)`` appended at the finding site, which must
report the finding as suppressed).  The third variant is generated
mechanically from the first, so the suppression machinery itself is
exercised for every rule, not just the ones a test author remembered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .framework import Rule, lint_source
from .rules import RULES

__all__ = ["SelfCheckFailure", "run_selfcheck", "suppressed_variant"]


@dataclass
class SelfCheckFailure:
    """One broken fixture contract."""

    rule: str
    fixture: str  # "trigger" | "clean" | "suppressed"
    message: str

    def format(self) -> str:
        return f"{self.rule} [{self.fixture}] {self.message}"


def suppressed_variant(rule: Rule) -> str:
    """The trigger fixture with ``# repro: allow(id)`` at the hit line."""
    findings = lint_source(rule.fixture_trigger, rule.fixture_path, [rule])
    lines = rule.fixture_trigger.splitlines()
    for finding in findings:
        index = finding.line - 1
        if 0 <= index < len(lines) and "repro: allow" not in lines[index]:
            lines[index] += f"  # repro: allow({rule.id})"
    return "\n".join(lines) + "\n"


def _check_rule(rule: Rule) -> List[SelfCheckFailure]:
    failures: List[SelfCheckFailure] = []

    if not rule.fixture_trigger or not rule.fixture_clean:
        failures.append(
            SelfCheckFailure(
                rule.id, "trigger", "rule ships no paired fixtures"
            )
        )
        return failures
    if not rule.applies_to(rule.fixture_path):
        failures.append(
            SelfCheckFailure(
                rule.id,
                "trigger",
                f"fixture path {rule.fixture_path!r} is outside the "
                f"rule's own scope",
            )
        )
        return failures

    hits = lint_source(rule.fixture_trigger, rule.fixture_path, [rule])
    triggering = [f for f in hits if f.rule == rule.id and not f.suppressed]
    if not triggering:
        failures.append(
            SelfCheckFailure(
                rule.id, "trigger", "trigger fixture produced no finding"
            )
        )

    clean = lint_source(rule.fixture_clean, rule.fixture_path, [rule])
    if clean:
        failures.append(
            SelfCheckFailure(
                rule.id,
                "clean",
                f"clean fixture produced {len(clean)} finding(s): "
                f"{clean[0].message}",
            )
        )

    if triggering:
        variant = suppressed_variant(rule)
        after = lint_source(variant, rule.fixture_path, [rule])
        unsuppressed = [f for f in after if not f.suppressed]
        suppressed = [f for f in after if f.suppressed]
        if unsuppressed or not suppressed:
            failures.append(
                SelfCheckFailure(
                    rule.id,
                    "suppressed",
                    "inline '# repro: allow' did not suppress the "
                    "trigger finding",
                )
            )
    return failures


def run_selfcheck(
    rules: Sequence[Rule] = RULES,
) -> List[SelfCheckFailure]:
    """Check every rule's fixture contract; empty list means healthy."""
    failures: List[SelfCheckFailure] = []
    for rule in rules:
        failures.extend(_check_rule(rule))
    return failures
