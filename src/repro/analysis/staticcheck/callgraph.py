"""Project-wide symbol table and call graph for the dataflow rules.

The syntactic rules treat every file in isolation.  The dataflow rules
cannot: a wall-clock value laundered through ``helpers.stamp()`` is
only visible if the linter knows what ``helpers.stamp`` *does*, and
substrate escape analysis has to chase calls across modules.  This
module builds that project view:

:class:`ProjectContext`
    Parses every file once, names each module by its path (rooted at
    the rightmost ``repro`` component, so ``src/repro/core/queue.py``
    and a test fixture living at ``repro/core/queue.py`` get the same
    module name), resolves imports — including relative ones — and
    registers every function def under its qualified name.

Call resolution (:meth:`ProjectContext.resolve_call`) handles the
shapes that actually occur in this codebase: bare names (local or
``from x import y``), ``module.func`` attribute chains through the
import map, ``Class.method`` for classes defined or imported in the
module, and ``self.method`` via the enclosing class.  Anything else
(dynamic dispatch, attribute chains on objects) resolves to ``None``
and the rules fall back to conservative behaviour.

Taint summaries (:meth:`ProjectContext.taint_summaries`) give the
interprocedural story: for every function, whether its return value
carries source taint of its own and whether argument taint flows
through to the return — computed to a fixed point over the call graph
so a chain of helpers launders nothing.
"""

from __future__ import annotations

import ast
import os
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .cfg import CFG, FunctionNode, build_cfg, iter_function_defs
from .dataflow import EMPTY, TaintAnalysis, TaintPolicy, TaintState, Tags

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectContext",
    "TaintSummary",
    "module_name_for_path",
]

#: fixed-point rounds for interprocedural summaries; helper chains in
#: this codebase are 2-3 deep, so this is generous headroom
_SUMMARY_ROUNDS = 5


def module_name_for_path(path: str) -> str:
    """Dotted module name derived from a file path.

    Anchors at the rightmost path component named ``repro`` so source
    files (``src/repro/core/queue.py``), fixture paths
    (``repro/core/queue.py``) and absolute paths all normalise to the
    same name.  Paths without a ``repro`` component fall back to the
    bare stem — single-file fixtures still get a usable name.
    """
    posix = path.replace(os.sep, "/")
    parts = [part for part in posix.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if anchors:
        parts = parts[anchors[-1]:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "module"


class FunctionInfo(NamedTuple):
    """One registered function def."""

    qualname: str          # module.Class.method / module.func
    module: str            # dotted module name
    node: FunctionNode
    enclosing_class: Optional[str]


class TaintSummary(NamedTuple):
    """What a function's return value carries."""

    own_tags: Tags         # source taint originating inside the body
    params_flow: bool      # does argument taint reach the return value


class ModuleInfo:
    """One parsed module: tree, import map, locally bound top names."""

    def __init__(self, name: str, path: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.tree = tree
        self.imports = _resolve_imports(tree, name)
        #: names assigned at module level (mutable-global candidates)
        self.global_names: Set[str] = set()
        #: classes defined at module top level
        self.classes: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                self.classes.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.global_names.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                self.global_names.add(element.id)


def _resolve_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Import map with relative imports resolved against ``module``.

    ``from .helpers import stamp`` inside ``repro.core.queue`` binds
    ``stamp -> repro.core.helpers.stamp``; absolute imports behave like
    :func:`..framework.build_import_map`.
    """
    package_parts = module.split(".")[:-1]
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                names[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # one dot = current package, each extra dot strips one
                base_parts = package_parts[: len(package_parts)
                                           - (node.level - 1)]
                base = ".".join(base_parts + (
                    node.module.split(".") if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{base}.{alias.name}" if base else alias.name
    return names


class ProjectContext:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._cfgs: Dict[int, CFG] = {}
        self._summaries: Dict[str, Dict[str, TaintSummary]] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectContext":
        """Build from ``{path: source}`` (unparseable files skipped —
        they already produce a PARSE finding elsewhere)."""
        project = cls()
        for path, source in sources.items():
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            project.add_module(path, tree)
        return project

    @classmethod
    def from_paths(cls, files: Iterable[str]) -> "ProjectContext":
        sources: Dict[str, str] = {}
        for path in files:
            try:
                with open(path, encoding="utf-8") as handle:
                    sources[path] = handle.read()
            except OSError:
                continue
        return cls.from_sources(sources)

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for_path(path)
        info = ModuleInfo(name, path, tree)
        self.modules[name] = info
        self.modules_by_path[path] = info
        for local_qualname, node, enclosing in iter_function_defs(tree):
            qualname = f"{name}.{local_qualname}"
            self.functions[qualname] = FunctionInfo(
                qualname, name, node, enclosing)
        return info

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        info = self.modules_by_path.get(path)
        if info is not None:
            return info
        return self.modules.get(module_name_for_path(path))

    # -- graphs --------------------------------------------------------
    def cfg(self, node: FunctionNode) -> CFG:
        """CFG for a def, cached by node identity (the project owns the
        trees, so ids stay valid for the context's lifetime)."""
        cached = self._cfgs.get(id(node))
        if cached is None:
            cached = build_cfg(node)
            self._cfgs[id(node)] = cached
        return cached

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        return [fn for fn in self.functions.values()
                if fn.module == module]

    # -- call resolution -----------------------------------------------
    def resolve_call(
        self,
        call: ast.Call,
        module: ModuleInfo,
        enclosing_class: Optional[str] = None,
    ) -> Optional[str]:
        """Qualified name the call's callee resolves to, or ``None``.

        The returned name is a *symbol* name — it may or may not be a
        registered function (``repro.ioutil.atomic_open`` is; a call
        into an unparsed stdlib module is not).  Use
        :meth:`function_for` to get the def when one exists.
        """
        func = call.func
        if isinstance(func, ast.Name):
            imported = module.imports.get(func.id)
            if imported is not None:
                return imported
            local = f"{module.name}.{func.id}"
            if local in self.functions:
                return local
            if func.id in module.classes:
                return local
            return None
        parts: List[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head == "self" and enclosing_class is not None:
            return ".".join([module.name, enclosing_class] + parts)
        if head == "cls" and enclosing_class is not None:
            return ".".join([module.name, enclosing_class] + parts)
        imported = module.imports.get(head)
        if imported is not None:
            return ".".join([imported] + parts)
        if head in module.classes:
            return ".".join([module.name, head] + parts)
        local = f"{module.name}.{head}"
        if local in self.functions or any(
                name.startswith(local + ".") for name in self.functions):
            return ".".join([local] + parts)
        return None

    def function_for(self, qualname: Optional[str]
                     ) -> Optional[FunctionInfo]:
        if qualname is None:
            return None
        found = self.functions.get(qualname)
        if found is not None:
            return found
        # an imported name may be re-exported: repro.resilience.lease
        # .SliceLease.acquire registered under the defining module —
        # fall back on suffix match within the same tail
        tail = qualname.split(".")[-2:]
        if len(tail) == 2:
            suffix = "." + ".".join(tail)
            matches = [fn for name, fn in self.functions.items()
                       if name.endswith(suffix)]
            if len(matches) == 1:
                return matches[0]
        return None

    # -- interprocedural taint summaries -------------------------------
    def taint_summaries(
        self,
        label: str,
        source_tags: Callable[[ast.Call, ModuleInfo], Tags],
    ) -> Dict[str, TaintSummary]:
        """Fixed-point ``{qualname: TaintSummary}`` for the project.

        ``source_tags`` classifies direct taint sources (e.g. a
        ``time.time()`` call); everything else is derived.  Cached per
        ``label`` so repeated rule runs over the same context are free.
        """
        cached = self._summaries.get(label)
        if cached is not None:
            return cached
        summaries: Dict[str, TaintSummary] = {
            name: TaintSummary(EMPTY, False) for name in self.functions
        }
        for _ in range(_SUMMARY_ROUNDS):
            changed = False
            for name, fn in self.functions.items():
                module = self.modules.get(fn.module)
                if module is None:
                    continue
                summary = self._summarize(fn, module, summaries,
                                          source_tags)
                if summary != summaries[name]:
                    summaries[name] = summary
                    changed = True
            if not changed:
                break
        self._summaries[label] = summaries
        return summaries

    def _summarize(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        summaries: Dict[str, TaintSummary],
        source_tags: Callable[[ast.Call, ModuleInfo], Tags],
    ) -> TaintSummary:
        policy = _SummaryPolicy(self, module, fn.enclosing_class,
                                summaries, source_tags)
        TaintAnalysis(self.cfg(fn.node), fn.node, policy).run()
        own = frozenset(tag for tag in policy.return_tags
                        if tag[0] != "param")
        flows = any(tag[0] == "param" for tag in policy.return_tags)
        return TaintSummary(own, flows)

    def call_return_tags(
        self,
        call: ast.Call,
        arg_tags: Tags,
        module: ModuleInfo,
        enclosing_class: Optional[str],
        summaries: Dict[str, TaintSummary],
        source_tags: Callable[[ast.Call, ModuleInfo], Tags],
    ) -> Tags:
        """Shared call-effect used by summaries and the DET-003 rule:
        direct sources, then summary lookup, then conservative
        pass-through for unresolved calls."""
        direct = source_tags(call, module)
        if direct:
            return direct | arg_tags
        resolved = self.resolve_call(call, module, enclosing_class)
        target = self.function_for(resolved)
        if target is not None:
            summary = summaries.get(target.qualname)
            if summary is not None:
                tags = summary.own_tags
                if summary.params_flow:
                    tags = tags | arg_tags
                return tags
        if resolved is not None:
            # resolved to a symbol we did not parse (stdlib, class
            # constructor): assume plain pass-through
            return arg_tags
        return arg_tags


class _SummaryPolicy(TaintPolicy):
    """Taint policy that seeds parameters and records return taint."""

    def __init__(self, project, module, enclosing_class, summaries,
                 source_tags):
        self.project = project
        self.module = module
        self.enclosing_class = enclosing_class
        self.summaries = summaries
        self.source_tags = source_tags
        self.return_tags: Tags = EMPTY

    def initial_state(self, fn: ast.AST) -> TaintState:
        state = TaintState()
        args = fn.args
        names = [arg.arg for arg in
                 list(getattr(args, "posonlyargs", [])) + args.args
                 + args.kwonlyargs]
        for index, name in enumerate(names):
            if name in ("self", "cls") and index == 0:
                continue
            state.vars[name] = frozenset({("param", str(index))})
        return state

    def call_tags(self, node: ast.Call, arg_tags: Tags,
                  state: TaintState) -> Tags:
        return self.project.call_return_tags(
            node, arg_tags, self.module, self.enclosing_class,
            self.summaries, self.source_tags)

    def returned(self, node: ast.Return, tags: Tags,
                 state: TaintState) -> None:
        self.return_tags |= tags


# ----------------------------------------------------------------------
# Shared-context cache for repeated full-tree lints (tests, CLI)
# ----------------------------------------------------------------------

_PROJECT_CACHE: Dict[FrozenSet[Tuple[str, int, int]], ProjectContext] = {}
_PROJECT_CACHE_LIMIT = 4


def project_for_files(files: Sequence[str]) -> ProjectContext:
    """Build (or reuse) a :class:`ProjectContext` for a file list.

    Keyed by every file's ``(path, mtime_ns, size)`` so any edit misses
    the cache; bounded so test suites that lint many distinct temp
    trees do not accumulate contexts.
    """
    stamp: List[Tuple[str, int, int]] = []
    for path in files:
        try:
            meta = os.stat(path)
        except OSError:
            stamp.append((path, -1, -1))
            continue
        stamp.append((path, meta.st_mtime_ns, meta.st_size))
    key = frozenset(stamp)
    cached = _PROJECT_CACHE.get(key)
    if cached is None:
        cached = ProjectContext.from_paths(files)
        if len(_PROJECT_CACHE) >= _PROJECT_CACHE_LIMIT:
            _PROJECT_CACHE.pop(next(iter(_PROJECT_CACHE)))
        _PROJECT_CACHE[key] = cached
    return cached
