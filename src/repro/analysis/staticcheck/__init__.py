"""``repro.analysis.staticcheck`` — the AST invariant checker.

A self-contained (stdlib-``ast``-only) static-analysis pass suite that
turns the reproduction's determinism, durability and engine-registry
disciplines into machine-checked rules.  ``repro lint`` is the CLI
surface; see :mod:`.framework` for the rule machinery, :mod:`.rules`
for the five shipped invariants (DET-001, DET-002, DUR-001, ENG-001,
RES-001) and :mod:`.selfcheck` for the paired-fixture self-test that
proves every rule can still fire.

Typical use::

    from repro.analysis.staticcheck import RULES, lint_paths

    findings = lint_paths(["src/repro"], RULES)
    bad = [f for f in findings if not f.suppressed]
"""

from .framework import (
    Finding,
    Rule,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    match_path,
)
from .rules import RULES, RULES_BY_ID, rule_ids, select_rules
from .selfcheck import SelfCheckFailure, run_selfcheck

__all__ = [
    "Finding",
    "Rule",
    "Suppressions",
    "RULES",
    "RULES_BY_ID",
    "SelfCheckFailure",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "match_path",
    "rule_ids",
    "run_selfcheck",
    "select_rules",
]
