"""``repro.analysis.staticcheck`` — the AST invariant checker.

A self-contained (stdlib-``ast``-only) static-analysis pass suite that
turns the reproduction's determinism, durability and engine-registry
disciplines into machine-checked rules.  ``repro lint`` is the CLI
surface; see :mod:`.framework` for the rule machinery, :mod:`.rules`
for the syntactic invariants (DET-001/002, DUR-001, ENG-001, RES-001/
002, OBS-001, SUB-001), :mod:`.flowrules` for the dataflow invariants
(DET-003, DUR-002, CONC-001, SUB-002) built on the :mod:`.cfg` /
:mod:`.dataflow` / :mod:`.callgraph` engines, and :mod:`.selfcheck`
for the paired-fixture self-test that proves every rule can still
fire.

Typical use::

    from repro.analysis.staticcheck import RULES, lint_paths

    findings = lint_paths(["src/repro"], RULES)
    bad = [f for f in findings if not f.suppressed]
"""

from .callgraph import ProjectContext, project_for_files
from .cfg import CFG, Block, build_cfg, iter_function_defs
from .framework import (
    Finding,
    Rule,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    match_path,
)
from .rules import RULES, RULES_BY_ID, rule_ids, select_rules
from .selfcheck import SelfCheckFailure, run_selfcheck

__all__ = [
    "Block",
    "CFG",
    "Finding",
    "ProjectContext",
    "Rule",
    "Suppressions",
    "RULES",
    "RULES_BY_ID",
    "SelfCheckFailure",
    "build_cfg",
    "iter_function_defs",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "match_path",
    "project_for_files",
    "rule_ids",
    "run_selfcheck",
    "select_rules",
]
