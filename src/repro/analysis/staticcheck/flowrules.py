"""The dataflow-powered rules: DET-003, DUR-002, CONC-001, SUB-002.

Where :mod:`.rules` pattern-matches individual call sites, these rules
run the :mod:`.cfg`/:mod:`.dataflow` engines and the
:mod:`.callgraph` project view, so they see *flows*:

========  ============================================================
DET-003   wall-clock/entropy values must not flow into committed state
          in deterministic modules — even laundered through helper
          functions (taint analysis + interprocedural summaries)
DUR-002   durable publish sequences keep their order on every path
          (journal→shard→cursor in sliced-hosts; fsync before
          os.replace) and no early exit abandons a partial publish
CONC-001  worker replies in sliced-mp are fence-compared (epoch,
          attempt) before being applied, and worker-executed functions
          never mutate module-level state
SUB-002   substrate code never reaches raw file IO except through
          repro.ioutil / retry_transient — checked transitively over
          the call graph
========  ============================================================

Each rule plugs into the same :class:`..framework.Rule` machinery as
the syntactic set: scoped paths, auditable allowlists, inline
``# repro: allow`` suppression, and paired self-check fixtures.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .banned import WALL_CLOCK_CALLS, is_entropy_source
from .callgraph import FunctionInfo, ModuleInfo, ProjectContext
from .cfg import build_cfg, iter_function_defs
from .dataflow import (
    EMPTY,
    ProtocolAnalysis,
    ProtocolSpec,
    TaintAnalysis,
    TaintPolicy,
    TaintState,
    Tags,
    expr_names,
)
from .framework import Finding, Rule, match_path, resolve_call_name

__all__ = [
    "FLOW_RULES",
    "TaintedStateRule",
    "PublishOrderRule",
    "WorkerFenceRule",
    "SubstrateEscapeRule",
]


# ----------------------------------------------------------------------
# DET-003: taint — no wall-clock/entropy values in committed state
# ----------------------------------------------------------------------


def _det003_sources(call: ast.Call, module: ModuleInfo) -> Tags:
    """Direct taint sources: the DET-001/DET-002 banned entry points."""
    name = resolve_call_name(call.func, module.imports)
    if name is None:
        return EMPTY
    if name in WALL_CLOCK_CALLS:
        return frozenset({("wall", name)})
    if is_entropy_source(name, call):
        return frozenset({("entropy", name)})
    return EMPTY


class _Det003Policy(TaintPolicy):
    """Record attribute/subscript stores of wall/entropy-tainted values."""

    def __init__(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        enclosing_class: Optional[str],
        summaries,
    ):
        self.project = project
        self.module = module
        self.enclosing_class = enclosing_class
        self.summaries = summaries
        self.sinks: List[Tuple[ast.stmt, ast.expr, Tags]] = []
        self._seen: Set[int] = set()

    def call_tags(self, node: ast.Call, arg_tags: Tags,
                  state: TaintState) -> Tags:
        return self.project.call_return_tags(
            node, arg_tags, self.module, self.enclosing_class,
            self.summaries, _det003_sources)

    def store(self, target: ast.expr, tags: Tags, state: TaintState,
              stmt: ast.stmt) -> None:
        bad = frozenset(t for t in tags if t[0] in ("wall", "entropy"))
        if bad and id(stmt) not in self._seen:
            self._seen.add(id(stmt))
            self.sinks.append((stmt, target, bad))


class TaintedStateRule(Rule):
    """Wall-clock/entropy taint must not reach committed state.

    DET-001/002 flag the banned calls themselves; this rule follows the
    *values* — through assignments, tuple unpacks, arithmetic, helper
    calls and returns (interprocedural summaries) — and fires only when
    one lands in an attribute or subscript store, i.e. state that
    outlives the expression.  That catches the laundering the syntactic
    rules cannot (``self.stamp = helpers.now_stamp()``) while staying
    quiet about telemetry-only locals handed to probe calls.
    """

    id = "DET-003"
    severity = "error"
    needs_project = True
    description = (
        "no wall-clock/entropy-derived values flowing into committed "
        "state in deterministic modules (taint analysis, follows "
        "helper calls across modules)"
    )
    hint = (
        "derive the value from engine rounds/cycles or a seeded "
        "generator; if the stored value is genuinely operational "
        "(never replayed), suppress at the store with "
        "'# repro: allow(DET-003)' and say why"
    )
    scope = (
        "*/core/*.py",
        "*/algorithms/*.py",
        "*/resilience/*.py",
        "*/obs/*.py",
    )
    allowlist = {
        "*/resilience/lease.py": (
            "lease heartbeats and staleness checks are operational "
            "liveness against real elapsed time; lease state is never "
            "part of the replayed trajectory"
        ),
        "*/obs/bench.py": (
            "the bench harness stores wall-clock timings by design: "
            "its artifacts report events/sec and never feed engine "
            "state"
        ),
    }
    fixture_path = "repro/core/taint_fixture.py"
    fixture_trigger = (
        "import time\n"
        "\n"
        "def round_stamp():\n"
        "    return time.time()\n"
        "\n"
        "class Engine:\n"
        "    def finish(self):\n"
        "        self.last_round_stamp = round_stamp()\n"
    )
    fixture_clean = (
        "def round_stamp(engine):\n"
        "    return engine.total_cycles\n"
        "\n"
        "class Engine:\n"
        "    total_cycles = 0\n"
        "\n"
        "    def finish(self):\n"
        "        self.last_round_stamp = round_stamp(self)\n"
    )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[ProjectContext] = None,
    ) -> Iterator[Finding]:
        if project is None:
            return
        module = project.module_for_path(path)
        if module is None:
            return
        summaries = project.taint_summaries("det003", _det003_sources)
        seen: Set[Tuple[int, int]] = set()
        for fn in project.functions_in_module(module.name):
            policy = _Det003Policy(project, module, fn.enclosing_class,
                                   summaries)
            TaintAnalysis(project.cfg(fn.node), fn.node, policy).run()
            for stmt, target, tags in policy.sinks:
                key = (stmt.lineno, stmt.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                kind, source = sorted(tags)[0]
                what = ("wall-clock read" if kind == "wall"
                        else "entropy source")
                yield self.finding(
                    path,
                    stmt,
                    f"value derived from {what} {source}() flows into "
                    f"committed state {ast.unparse(target)}",
                )


# ----------------------------------------------------------------------
# DUR-002: durable publish sequences keep their order on every path
# ----------------------------------------------------------------------

#: sliced-hosts publish stages, by callee name tail
_HOSTS_STAGES = {
    "commit": "journal",
    "_publish_shard": "shard",
    "_publish_cursor": "cursor",
}


def _hosts_classify(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return _HOSTS_STAGES.get(func.attr)
    if isinstance(func, ast.Name):
        return _HOSTS_STAGES.get(func.id)
    return None


def _atomic_classify(imports: Dict[str, str]):
    def classify(call: ast.Call) -> Optional[str]:
        name = resolve_call_name(call.func, imports)
        if name == "os.fsync":
            return "fsync"
        if name == "os.replace":
            return "replace"
        return None

    return classify


class PublishOrderRule(Rule):
    """Durable publish protocols hold along *every* control-flow path.

    Two protocols are verified per function, via the protocol-order
    dataflow engine:

    * ``hosts-publish`` (``core/hostsliced.py`` only): journal commit
      before shard write before cursor update.  A later stage already
      published when an earlier one fires is an inversion; a path
      leaving the function with a sequence started but no cursor is an
      abandoned partial publish.  Recovery branches that re-publish
      only the *tail* of the sequence (cursor alone, or shard+cursor
      redo) are legal — the cursor completes a sequence wherever it
      appears.
    * ``atomic-publish`` (everywhere): ``os.replace`` must see an
      ``os.fsync`` on every path leading to it, or the rename can
      publish a file whose bytes are still in the page cache.
    """

    id = "DUR-002"
    severity = "error"
    description = (
        "durable publish sequences keep their order on every path "
        "(journal->shard->cursor in sliced-hosts; fsync before "
        "os.replace) and no early exit abandons a partial publish"
    )
    hint = (
        "publish in protocol order and complete the sequence on every "
        "non-crash path; if a branch legitimately ends mid-sequence, "
        "suppress at the def with '# repro: allow(DUR-002)' and "
        "explain the recovery invariant that makes it safe"
    )
    scope = ("*",)
    allowlist: Dict[str, str] = {}
    fixture_path = "repro/core/hostsliced.py"
    fixture_trigger = (
        "class Host:\n"
        "    def publish_step(self, writer, step, state, totals, done):\n"
        "        writer.commit(step + 1)\n"
        "        self._publish_cursor(step + 1, done)\n"
        "        self._publish_shard(state, step, totals)\n"
    )
    fixture_clean = (
        "class Host:\n"
        "    def publish_step(self, writer, step, state, totals, done):\n"
        "        writer.commit(step + 1)\n"
        "        self._publish_shard(state, step, totals)\n"
        "        self._publish_cursor(step + 1, done)\n"
    )

    def _specs(self, path: str, imports: Dict[str, str]
               ) -> List[ProtocolSpec]:
        specs: List[ProtocolSpec] = []
        if match_path(path, "*/core/hostsliced.py"):
            specs.append(
                ProtocolSpec(
                    "hosts-publish",
                    ("journal", "shard", "cursor"),
                    _hosts_classify,
                    check_escape=True,
                )
            )
        specs.append(
            ProtocolSpec(
                "atomic-publish",
                ("fsync", "replace"),
                _atomic_classify(imports),
                check_order=False,
                requires={"replace": ("fsync",)},
            )
        )
        return specs

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[ProjectContext] = None,
    ) -> Iterator[Finding]:
        specs = self._specs(path, imports)
        for _name, fn, _cls in iter_function_defs(tree):
            cfg = None
            for spec in specs:
                if not any(
                    spec.classify(node) is not None
                    for node in ast.walk(fn)
                    if isinstance(node, ast.Call)
                ):
                    continue
                if cfg is None:
                    cfg = (project.cfg(fn) if project is not None
                           else build_cfg(fn))
                for kind, node, detail in ProtocolAnalysis(
                        cfg, fn, spec).run():
                    yield self.finding(
                        path, node, f"[{spec.name}] {detail}")


# ----------------------------------------------------------------------
# CONC-001: worker replies are fence-compared before being applied
# ----------------------------------------------------------------------

#: receive entry points that produce worker replies.  Bare ``.get`` is
#: deliberately absent: it is every mapping lookup, not just Queue.get
_RECV_TAILS = frozenset({"recv", "recv_bytes", "get_nowait"})
_FENCE_MARKERS = ("epoch", "attempt")


class _FencePolicy(TaintPolicy):
    """Taint worker replies at recv; a comparison against fence
    identifiers sanitizes; unfenced stores are sinks."""

    def __init__(self) -> None:
        self.sinks: List[Tuple[ast.stmt, ast.expr]] = []
        self._seen: Set[int] = set()

    @staticmethod
    def _is_recv(node: ast.Call) -> bool:
        func = node.func
        return (isinstance(func, ast.Attribute)
                and func.attr in _RECV_TAILS)

    def call_tags(self, node: ast.Call, arg_tags: Tags,
                  state: TaintState) -> Tags:
        if self._is_recv(node):
            return frozenset({("recv", node.func.attr)})
        return arg_tags

    def reset_on_call(self, node: ast.Call) -> bool:
        # each new message needs its own fence comparison
        return self._is_recv(node)

    def sanitize(self, test: ast.expr, state: TaintState) -> TaintState:
        has_compare = any(
            isinstance(node, ast.Compare) for node in ast.walk(test))
        if not has_compare:
            return state
        names = expr_names(test)
        tainted = any(
            any(tag[0] == "recv" for tag in state.get(name))
            for name in names
        )
        fence = any(
            any(marker in name for marker in _FENCE_MARKERS)
            and not state.get(name)
            for name in names
        )
        if tainted and fence:
            state = state.copy()
            state.flags = state.flags | frozenset({"fenced"})
        return state

    def store(self, target: ast.expr, tags: Tags, state: TaintState,
              stmt: ast.stmt) -> None:
        if any(tag[0] == "recv" for tag in tags) and \
                "fenced" not in state.flags:
            if id(stmt) not in self._seen:
                self._seen.add(id(stmt))
                self.sinks.append((stmt, target))


def _root_name(expr: ast.expr) -> Optional[str]:
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


class WorkerFenceRule(Rule):
    """sliced-mp worker replies are fenced; workers touch no globals.

    Two hazards, both invisible to call-site pattern matching:

    * A reply read off a worker connection and applied to shared state
      without an (epoch, attempt) comparison first — the exact
      stale-reply race the fencing protocol exists to stop.  Tracked
      as taint from ``.recv()`` with a comparison-against-fence-
      identifiers sanitizer.
    * A function executed inside a worker process (``Process(target=
      ...)`` and its same-module callees) writing module-level mutable
      state: worker memory is per-process, so the write is silently
      invisible to the supervisor — or worse, visible only under fork.
    """

    id = "CONC-001"
    severity = "error"
    description = (
        "worker replies in sliced-mp must pass an (epoch, attempt) "
        "fence comparison before being applied, and worker-executed "
        "functions must not mutate module-level state"
    )
    hint = (
        "compare the reply's (epoch, attempt, ...) against the "
        "handle's before applying it; keep worker state in locals or "
        "explicit message passing.  If the state is worker-private "
        "scratch, suppress at the store with '# repro: allow(CONC-001)'"
        " and say why"
    )
    scope = ("*/core/mpsliced.py",)
    allowlist: Dict[str, str] = {}
    fixture_path = "repro/core/mpsliced.py"
    fixture_trigger = (
        "def apply_reply(conn, handle, state):\n"
        "    message = conn.recv()\n"
        "    kind, epoch, reply_attempt, vertices, shard = message\n"
        "    state[vertices] = shard\n"
    )
    fixture_clean = (
        "def apply_reply(conn, handle, state, attempt):\n"
        "    message = conn.recv()\n"
        "    kind, epoch, reply_attempt, vertices, shard = message\n"
        "    if (epoch, reply_attempt) != (handle.epoch, attempt):\n"
        "        raise RuntimeError(\"stale worker reply\")\n"
        "    state[vertices] = shard\n"
    )

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[ProjectContext] = None,
    ) -> Iterator[Finding]:
        yield from self._fence_findings(tree, path, project)
        yield from self._worker_global_findings(tree, path)

    # -- recv fencing --------------------------------------------------
    def _fence_findings(self, tree, path, project) -> Iterator[Finding]:
        for _name, fn, _cls in iter_function_defs(tree):
            if not any(
                isinstance(node, ast.Call) and _FencePolicy._is_recv(node)
                for node in ast.walk(fn)
            ):
                continue
            policy = _FencePolicy()
            cfg = (project.cfg(fn) if project is not None
                   else build_cfg(fn))
            TaintAnalysis(cfg, fn, policy).run()
            for stmt, target in policy.sinks:
                yield self.finding(
                    path,
                    stmt,
                    f"worker reply applied to {ast.unparse(target)} "
                    f"without an (epoch, attempt) fence comparison",
                )

    # -- worker-executed globals ---------------------------------------
    def _worker_global_findings(self, tree, path) -> Iterator[Finding]:
        module_globals: Set[str] = set()
        top_functions: Dict[str, ast.AST] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                top_functions[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        module_globals.add(target.id)

        worker_roots: List[str] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            tail = (func.attr if isinstance(func, ast.Attribute)
                    else getattr(func, "id", None))
            if tail != "Process":
                continue
            for keyword in node.keywords:
                if keyword.arg == "target":
                    value = keyword.value
                    name = (value.id if isinstance(value, ast.Name)
                            else getattr(value, "attr", None))
                    if name in top_functions:
                        worker_roots.append(name)

        # same-module closure of the worker entry points
        reachable: Set[str] = set()
        frontier = list(worker_roots)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for node in ast.walk(top_functions[name]):
                if isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Name):
                    callee = node.func.id
                    if callee in top_functions and callee not in reachable:
                        frontier.append(callee)

        for name in sorted(reachable):
            fn = top_functions[name]
            declared_global: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, ast.Name) and \
                                target.id in declared_global:
                            yield self.finding(
                                path,
                                node,
                                f"worker-executed {name}() mutates "
                                f"module global {target.id!r} — worker "
                                f"memory is per-process and never "
                                f"synchronized",
                            )
                        elif isinstance(target, (ast.Attribute,
                                                 ast.Subscript)):
                            root = _root_name(target)
                            if root in module_globals:
                                yield self.finding(
                                    path,
                                    node,
                                    f"worker-executed {name}() writes "
                                    f"module-level state {root!r} — "
                                    f"invisible to the supervisor "
                                    f"process",
                                )


# ----------------------------------------------------------------------
# SUB-002: substrate code reaches file IO only through sanctioned paths
# ----------------------------------------------------------------------

#: dotted names that ARE raw file IO wherever they appear
_RAW_IO_CALLS = frozenset(
    {
        "open",
        "io.open",
        "os.open",
        "os.fdopen",
        "tempfile.mkstemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
    }
)
#: method tails that are raw IO when the receiver is unresolved
#: (Path.read_bytes and friends); bare ``.open`` is deliberately
#: absent — ``store.open()`` style factories would misfire
_RAW_IO_TAILS = frozenset(
    {"read_bytes", "read_text", "write_bytes", "write_text"}
)
#: modules whose entry points are the sanctioned IO boundary: the
#: atomic/shimmed helpers, the fsynced journal codecs, the bounded
#: retry wrapper, and the fs-backend primitives they protect
_SANCTIONED_MODULES = (
    "repro.ioutil",
    "repro.resilience.journal",
    "repro.resilience.storagefaults",
    "repro.resilience.lease",
    "repro.resilience.durable",
)


def _sanctioned_name(name: str) -> bool:
    return any(
        name == module or name.startswith(module + ".")
        for module in _SANCTIONED_MODULES
    )


def _classify_call(
    call: ast.Call,
    module: ModuleInfo,
    project: ProjectContext,
    enclosing_class: Optional[str],
) -> Tuple[str, Optional[FunctionInfo], Optional[str]]:
    """-> (kind, target, describe) with kind in
    {sanctioned, raw, project, opaque}."""
    resolved = project.resolve_call(call, module, enclosing_class)
    if resolved is not None and _sanctioned_name(resolved):
        return ("sanctioned", None, resolved)
    dotted = resolve_call_name(call.func, module.imports)
    if dotted in _RAW_IO_CALLS:
        return ("raw", None, dotted)
    if resolved is None:
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in _RAW_IO_TAILS:
            return ("raw", None, f"*.{call.func.attr}")
        if dotted in _RAW_IO_TAILS:
            return ("raw", None, dotted)
        return ("opaque", None, dotted)
    target = project.function_for(resolved)
    if target is not None and not _sanctioned_name(target.qualname):
        return ("project", target, resolved)
    return ("opaque", None, resolved)


def _collect_calls(
    root: ast.AST,
    module: ModuleInfo,
    project: ProjectContext,
    enclosing_class: Optional[str],
    out: List[Tuple[ast.Call, str, Optional[FunctionInfo], Optional[str]]],
) -> None:
    """Classify calls under ``root``, pruning sanctioned subtrees (a
    lambda handed to ``retry_transient`` is inside the boundary) and
    nested def/class bodies (analyzed as their own functions)."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        if isinstance(child, ast.Call):
            kind, target, describe = _classify_call(
                child, module, project, enclosing_class)
            out.append((child, kind, target, describe))
            if kind == "sanctioned":
                continue
        _collect_calls(child, module, project, enclosing_class, out)


class SubstrateEscapeRule(Rule):
    """Substrate code must not reach raw file IO, even transitively.

    The substrate interfaces exist so every byte touching a durable
    medium passes the fault shim (``ioutil``), the fsync discipline
    (journal/lease/durable codecs) and the bounded-retry wrapper.  A
    helper inside ``resilience/substrate/`` that calls ``open()`` —
    or calls a module that does — silently reopens the unshimmed
    path: storage chaos stops covering it and torn-write protection
    is gone.  The check walks the project call graph from every
    substrate function; sanctioned boundary modules terminate the
    walk.
    """

    id = "SUB-002"
    severity = "error"
    needs_project = True
    description = (
        "no raw file IO reachable from substrate code (transitive "
        "call-graph check) — all bytes go through repro.ioutil, the "
        "journal/lease/durable codecs, or retry_transient"
    )
    hint = (
        "route reads/writes through repro.ioutil (read_bytes, "
        "atomic_open) or the sanctioned codec modules; wrap transient-"
        "failure-prone operations in retry_transient"
    )
    scope = ("*/resilience/substrate/*.py",)
    allowlist: Dict[str, str] = {}
    fixture_path = "repro/resilience/substrate/escape_fixture.py"
    fixture_trigger = (
        "def load_manifest(path):\n"
        "    with open(path, \"rb\") as handle:\n"
        "        return handle.read()\n"
    )
    fixture_clean = (
        "from repro.ioutil import read_bytes\n"
        "\n"
        "def load_manifest(path):\n"
        "    return read_bytes(path)\n"
    )
    #: transitive search depth — substrate call chains are 2-3 deep
    _MAX_DEPTH = 6

    def visit(
        self, tree: ast.Module, path: str, imports: Dict[str, str],
        project: Optional[ProjectContext] = None,
    ) -> Iterator[Finding]:
        if project is None:
            return
        module = project.module_for_path(path)
        if module is None:
            return
        reach_memo: Dict[str, Optional[List[str]]] = {}
        seen: Set[Tuple[int, int]] = set()
        for fn in project.functions_in_module(module.name):
            calls: List[Tuple[ast.Call, str, Optional[FunctionInfo],
                              Optional[str]]] = []
            _collect_calls(fn.node, module, project, fn.enclosing_class,
                           calls)
            for call, kind, target, describe in calls:
                key = (call.lineno, call.col_offset)
                if key in seen:
                    continue
                if kind == "raw":
                    seen.add(key)
                    yield self.finding(
                        path,
                        call,
                        f"raw file IO {describe}(...) in substrate "
                        f"code bypasses the fault shim and atomic-"
                        f"write discipline",
                    )
                elif kind == "project":
                    chain = self._reaches_raw(target, project,
                                              reach_memo, depth=0)
                    if chain is not None:
                        seen.add(key)
                        yield self.finding(
                            path,
                            call,
                            "raw file IO reachable from substrate "
                            "code: " + " -> ".join(
                                [target.qualname] + chain),
                        )

    def _reaches_raw(
        self,
        fn: FunctionInfo,
        project: ProjectContext,
        memo: Dict[str, Optional[List[str]]],
        depth: int,
    ) -> Optional[List[str]]:
        if fn.qualname in memo:
            return memo[fn.qualname]
        if depth > self._MAX_DEPTH:
            return None
        memo[fn.qualname] = None  # cycle guard: assume clean while open
        module = project.modules.get(fn.module)
        if module is None:
            return None
        calls: List[Tuple[ast.Call, str, Optional[FunctionInfo],
                          Optional[str]]] = []
        _collect_calls(fn.node, module, project, fn.enclosing_class,
                       calls)
        result: Optional[List[str]] = None
        for call, kind, target, describe in calls:
            if kind == "raw":
                result = [f"{describe}(...) at "
                          f"{module.name}:{call.lineno}"]
                break
            if kind == "project" and target is not None:
                chain = self._reaches_raw(target, project, memo,
                                          depth + 1)
                if chain is not None:
                    result = [target.qualname] + chain
                    break
        memo[fn.qualname] = result
        return result


#: the dataflow rules, in stable reporting order (appended after the
#: syntactic set in ``rules.RULES``)
FLOW_RULES: Tuple[Rule, ...] = (
    TaintedStateRule(),
    PublishOrderRule(),
    WorkerFenceRule(),
    SubstrateEscapeRule(),
)
